//! Offline stand-in for `serde_json`: JSON text over the vendored
//! `serde::Value` tree.
//!
//! One deliberate extension beyond strict JSON: the writer emits the
//! literals `NaN`, `inf`, and `-inf` for non-finite floats (simulation
//! statistics legitimately contain ±∞ from empty `min`/`max` accumulators)
//! and the parser accepts them back, so every serializable state
//! round-trips exactly.

#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Result alias matching the real crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to human-readable, indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a value out of JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(
                out,
                items.iter(),
                indent,
                depth,
                ('[', ']'),
                |out, item, depth| write_value(out, item, indent, depth),
            );
        }
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                indent,
                depth,
                ('{', '}'),
                |out, (k, v), depth| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, indent, depth);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "inf" } else { "-inf" });
    } else {
        // `{:?}` is Rust's shortest round-trip float rendering.
        let text = format!("{x:?}");
        out.push_str(&text);
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::F64(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("inf") {
                return Ok(Value::F64(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits are UTF-8");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn special_floats_round_trip() {
        for x in [f64::INFINITY, f64::NEG_INFINITY, 1.5e300, -0.0, 1e-9] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
        let text = to_string(&f64::NAN).unwrap();
        assert!(from_str::<f64>(&text).unwrap().is_nan());
    }

    #[test]
    fn collections_round_trip() {
        let xs = vec![1u64, 2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), xs);
        let nested: Vec<Vec<f64>> = vec![vec![1.0], vec![], vec![2.0, 3.0]];
        let text = to_string_pretty(&nested).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&text).unwrap(), nested);
    }

    #[test]
    fn large_u64_survives() {
        let n = u64::MAX - 3;
        assert_eq!(from_str::<u64>(&to_string(&n).unwrap()).unwrap(), n);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("nope").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
