//! Offline stand-in for `serde`: serialization through a JSON-like
//! [`Value`] tree.
//!
//! The real serde decouples data structures from formats through a visitor
//! API; this workspace only ever serializes to and from JSON text, so the
//! stub collapses the design to one intermediate representation: a type
//! implements [`Serialize`] by rendering itself as a [`Value`], and
//! [`Deserialize`] by rebuilding itself from one. The `serde_json` sibling
//! crate handles `Value` ⇄ text. The derive macros (re-exported from
//! `serde_derive`) generate both impls for structs and enums.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree: the universal intermediate representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None` and unit structs).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (always `< 0`; non-negatives normalize to `U64`).
    I64(i64),
    /// A float (including the non-standard `NaN`/`inf` literals).
    F64(f64),
    /// A string (also the encoding of unit enum variants).
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map. Field order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an [`Value::Object`].
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Look up an optional field of an [`Value::Object`]: `Ok(None)` when
    /// the object exists but lacks the field (the `#[serde(default)]`
    /// case), `Err` when `self` is not an object at all.
    pub fn field_opt(&self, name: &str) -> Result<Option<&Value>, Error> {
        match self {
            Value::Object(fields) => Ok(fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// View as an array.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// View as a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error carrying `message`.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    /// The `Value` encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match *value {
                    Value::U64(n) => n,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match *value {
                    Value::U64(n) => <$t>::try_from(n).map_err(|_| {
                        Error::custom(format!("{n} out of range for {}", stringify!($t)))
                    }),
                    Value::I64(n) => <$t>::try_from(n).map_err(|_| {
                        Error::custom(format!("{n} out of range for {}", stringify!($t)))
                    }),
                    ref other => Err(Error::custom(format!(
                        "expected integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array()?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
        Ok(<[T; N]>::try_from(parsed?).expect("length checked above"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array()?;
                const LEN: usize = [$($i),+].len();
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got array of {}", LEN, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".into())
        );
        assert_eq!(Option::<u8>::from_value(&None::<u8>.to_value()), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Some(3u8).to_value()), Ok(Some(3)));
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()), Ok(xs));
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()), Ok(arr));
        let pair = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(Value::Null.field("x").is_err());
    }

    #[test]
    fn field_opt_distinguishes_absent_from_non_object() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.field_opt("a"), Ok(Some(&Value::U64(1))));
        assert_eq!(obj.field_opt("b"), Ok(None));
        assert!(Value::Null.field_opt("a").is_err());
    }
}
