//! Pin the derive's `#[serde(default)]` support: missing object keys
//! deserialize as `Default::default()` at container level and at field
//! level, while present keys still parse normally — this is what keeps
//! old serialized reports readable after a struct grows new fields.

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
struct Grown {
    old_field: u64,
    new_field: u64,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Mixed {
    required: u64,
    #[serde(default)]
    optional: u64,
}

fn obj(fields: &[(&str, u64)]) -> Value {
    Value::Object(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), Value::U64(*v)))
            .collect(),
    )
}

#[test]
fn container_default_fills_missing_fields() {
    let grown = Grown::from_value(&obj(&[("old_field", 7)])).unwrap();
    assert_eq!(
        grown,
        Grown {
            old_field: 7,
            new_field: 0
        }
    );
}

#[test]
fn container_default_still_reads_present_fields() {
    let full = Grown {
        old_field: 1,
        new_field: 2,
    };
    assert_eq!(Grown::from_value(&full.to_value()).unwrap(), full);
}

#[test]
fn field_default_is_per_field() {
    let mixed = Mixed::from_value(&obj(&[("required", 3)])).unwrap();
    assert_eq!(
        mixed,
        Mixed {
            required: 3,
            optional: 0
        }
    );
    // The non-default field is still required.
    assert!(Mixed::from_value(&obj(&[("optional", 3)])).is_err());
}

#[test]
fn default_does_not_mask_type_errors() {
    // A present-but-wrong-type value must error, not fall back.
    let bad = Value::Object(vec![
        ("old_field".to_string(), Value::Str("seven".into())),
        ("new_field".to_string(), Value::U64(1)),
    ]);
    assert!(Grown::from_value(&bad).is_err());
    // And a non-object can never deserialize, default or not.
    assert!(Grown::from_value(&Value::Null).is_err());
}
