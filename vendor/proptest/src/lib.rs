//! Offline stand-in for `proptest`: deterministic property testing.
//!
//! Implements the slice of the proptest API this workspace uses — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! ranges and tuples as strategies, [`collection::vec`], [`any`], and the
//! `prop_assert*` macros. Differences from the real crate, by design:
//!
//! * **Deterministic**: case `i` of a test derives its RNG from a fixed
//!   base seed and `i`, so failures reproduce exactly on every run.
//! * **No shrinking**: a failing case reports its values via the assertion
//!   message (include enough context in `prop_assert!` format strings).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The case was rejected (e.g. by a precondition). Not counted as a
    /// failure; kept for API compatibility.
    Reject(String),
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection carrying `message`.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator. Every seed is valid.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; the tiny modulo bias is
        // irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Generate a value, then generate from the strategy it maps to.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { strategy: self, f }
    }

    /// Keep only values satisfying `pred` (re-drawing up to a bound).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            strategy: self,
            reason,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.strategy.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    strategy: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.strategy.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({}) rejected 10000 consecutive candidates",
            self.reason
        )
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- ranges ----------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---- any -------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- collections -----------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- runner ----------------------------------------------------------------

/// Run `cases` deterministic cases of `property`, panicking on the first
/// failure. Used by the expansion of [`proptest!`].
pub fn run_cases(
    config: ProptestConfig,
    test_name: &str,
    property: impl Fn(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Fixed base seed: failures reproduce on every run and every machine.
    let base = 0xB0F1_57E5_7C45_E5EEu64 ^ (test_name.len() as u64).rotate_left(17);
    for case in 0..config.cases {
        let mut rng = TestRng::new(base.wrapping_add(u64::from(case).wrapping_mul(0x9E37)));
        match property(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{test_name}: case {case}/{} failed: {message}",
                    config.cases
                )
            }
        }
    }
}

/// Define property tests. Mirrors the real crate's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..100, ys in proptest::collection::vec(0u32..9, 0..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                let __proptest_outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __proptest_outcome
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Assert a condition inside a property, with an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, ::std::format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&x));
            let y = (1u32..=3).generate(&mut rng);
            assert!((1..=3).contains(&y));
            let z = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&z));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new(99);
            (0..20).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(99);
            (0..20).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(7);
        let even = (0u64..100).prop_map(|x| x * 2);
        assert_eq!(even.generate(&mut rng) % 2, 0);
        let pair = (1u32..5).prop_flat_map(|n| (Just(n), 0u32..n));
        for _ in 0..100 {
            let (n, below) = pair.generate(&mut rng);
            assert!(below < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_wires_everything(
            x in 0u64..50,
            ys in crate::collection::vec(1u32..4, 0..6),
        ) {
            prop_assert!(x < 50, "x = {x}");
            prop_assert!(ys.len() < 6);
            for y in ys {
                prop_assert!((1..4).contains(&y));
            }
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        run_cases(ProptestConfig::with_cases(8), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
