//! Derive macros for the vendored `serde` stand-in.
//!
//! Generates [`Serialize`]/[`Deserialize`] impls over the `serde::Value`
//! tree for the shapes this workspace actually uses: structs with named
//! fields, tuple structs, unit structs, and enums whose variants are unit,
//! tuple, or struct-like. Parsing is done directly on the token stream
//! (no `syn`/`quote` — the build must work offline), which constrains the
//! macro to non-generic types; deriving on a generic type is a compile
//! error rather than a silent misbehavior. The only `#[serde(...)]`
//! helper understood is `default` (container- or field-level, named
//! structs); any other serde attribute is a compile error rather than a
//! silently ignored behavior change.
//!
//! Encoding:
//! * named struct → object of fields, in declaration order;
//! * tuple struct → array of fields;
//! * unit struct → `null`;
//! * unit enum variant → the variant name as a string;
//! * tuple/struct enum variant → one-key object `{ "Variant": payload }`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]` on the field: deserialize a missing key as
    /// `Default::default()` instead of erroring.
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
    /// Container-level `#[serde(default)]`: every named field defaults.
    default_all: bool,
}

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

/// Is this attribute body (the bracketed group after `#`) exactly
/// `[serde(default)]`?
fn is_serde_default(group: &proc_macro::Group) -> Result<bool, String> {
    let mut it = group.stream().into_iter();
    match (it.next(), it.next(), it.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)), None)
            if name.to_string() == "serde" =>
        {
            let mut inner = args.stream().into_iter();
            match (inner.next(), inner.next()) {
                (Some(TokenTree::Ident(arg)), None) if arg.to_string() == "default" => Ok(true),
                _ => Err(format!(
                    "serde stand-in supports only `#[serde(default)]`, got `#{group}`"
                )),
            }
        }
        _ => Ok(false),
    }
}

/// Consume leading attributes; report whether `#[serde(default)]` was
/// among them. Unsupported `#[serde(...)]` forms are an error rather
/// than a silently ignored behavior change.
fn take_attrs(iter: &mut Iter) -> Result<bool, String> {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.peek() {
            has_default |= is_serde_default(g)?;
            iter.next();
        }
    }
    Ok(has_default)
}

fn skip_vis(iter: &mut Iter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Consume tokens until a `,` at angle-bracket depth zero (the end of a
/// field type or a discriminant expression). The comma itself is consumed.
fn skip_past_top_level_comma(iter: &mut Iter) {
    let mut depth = 0i32;
    for tree in iter.by_ref() {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = take_attrs(&mut iter)?;
        skip_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(Field {
                name: id.to_string(),
                default,
            }),
            None => return Ok(fields),
            Some(other) => return Err(format!("expected field name, got `{other}`")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        skip_past_top_level_comma(&mut iter);
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tree in stream {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if take_attrs(&mut iter)? {
            return Err("`#[serde(default)]` is not supported on enum variants".to_string());
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(variants),
            Some(other) => return Err(format!("expected variant name, got `{other}`")),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                iter.next();
                Shape::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                iter.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                iter.next();
            }
            Some(_) => skip_past_top_level_comma(&mut iter),
            None => return Ok(variants),
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    let default_all = take_attrs(&mut iter)?;
    skip_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in cannot derive for generic type `{name}`"
            ));
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            None => Kind::Struct(Shape::Unit),
            Some(other) => return Err(format!("unsupported struct body at `{other}`")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    if default_all && !matches!(kind, Kind::Struct(Shape::Named(_))) {
        return Err(format!(
            "container-level `#[serde(default)]` on `{name}` requires a struct with named fields"
        ));
    }
    Ok(Input {
        name,
        kind,
        default_all,
    })
}

fn error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("valid error tokens")
}

// ---- Serialize -------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Array(::std::vec![{items}]))])",
                                binds = binds.join(", "),
                                items = items.join(", "),
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Object(::std::vec![{entries}]))])",
                                entries = entries.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
            fn to_value(&self) -> ::serde::Value {{ {body} }}\
        }}"
    )
}

// ---- Deserialize -----------------------------------------------------------

fn gen_named_constructor(path: &str, fields: &[Field], source: &str, default_all: bool) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            if default_all || f.default {
                format!(
                    "{name}: match {source}.field_opt({name:?})? {{\
                        ::std::option::Option::Some(v) => \
                            ::serde::Deserialize::from_value(v)?,\
                        ::std::option::Option::None => ::std::default::Default::default(),\
                     }}"
                )
            } else {
                format!("{name}: ::serde::Deserialize::from_value({source}.field({name:?})?)?")
            }
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_tuple_constructor(path: &str, n: usize, arr: &str) -> String {
    let inits: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{arr}[{i}])?"))
        .collect();
    format!("{path}({})", inits.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            format!(
                "::std::result::Result::Ok({})",
                gen_named_constructor(name, fields, "value", input.default_all)
            )
        }
        Kind::Struct(Shape::Tuple(n)) => {
            format!(
                "let arr = value.as_array()?;\
                 if arr.len() != {n} {{\
                    return ::std::result::Result::Err(::serde::Error::custom(\
                        ::std::format!(\"expected array of {n} for {name}, got {{}}\", arr.len())));\
                 }}\
                 ::std::result::Result::Ok({})",
                gen_tuple_constructor(name, *n, "arr")
            )
        }
        Kind::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn})",
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(n) => Some(format!(
                            "{vn:?} => {{\
                                let arr = payload.as_array()?;\
                                if arr.len() != {n} {{\
                                    return ::std::result::Result::Err(::serde::Error::custom(\
                                        \"wrong payload arity for variant {vn}\"));\
                                }}\
                                ::std::result::Result::Ok({ctor})\
                             }}",
                            ctor = gen_tuple_constructor(&format!("{name}::{vn}"), *n, "arr"),
                        )),
                        Shape::Named(fields) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({ctor})",
                            ctor = gen_named_constructor(
                                &format!("{name}::{vn}"),
                                fields,
                                "payload",
                                false
                            ),
                        )),
                    }
                })
                .collect();
            format!(
                "match value {{\
                    ::serde::Value::Str(s) => match s.as_str() {{\
                        {unit_arms}\
                        other => ::std::result::Result::Err(::serde::Error::custom(\
                            ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\
                    }},\
                    ::serde::Value::Object(entries) if entries.len() == 1 => {{\
                        let (variant, payload) = &entries[0];\
                        match variant.as_str() {{\
                            {payload_arms}\
                            other => ::std::result::Result::Err(::serde::Error::custom(\
                                ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\
                        }}\
                    }}\
                    other => ::std::result::Result::Err(::serde::Error::custom(\
                        ::std::format!(\"cannot read {name} from {{}}\", other.kind()))),\
                }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                payload_arms = if payload_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", payload_arms.join(", "))
                },
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
            fn from_value(value: &::serde::Value) \
                -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\
        }}"
    )
}

/// Derive `serde::Serialize` (Value-tree encoding). The `serde` helper
/// attribute is registered so `#[serde(default)]` (a Deserialize-side
/// concern) is accepted on types that also derive Serialize.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .expect("generated code parses"),
        Err(message) => error(&message),
    }
}

/// Derive `serde::Deserialize` (Value-tree decoding). Supports
/// `#[serde(default)]` at container level (all named fields) and field
/// level (that field): a missing key deserializes as
/// `Default::default()` instead of erroring, which keeps older
/// serialized reports readable after a struct grows.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .expect("generated code parses"),
        Err(message) => error(&message),
    }
}
