//! Offline stand-in for `criterion`: a small wall-clock benchmark harness.
//!
//! Supports the subset of the criterion API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups with throughput
//! annotations, `iter` and `iter_batched`). Each benchmark is warmed up,
//! then sampled `sample_size` times; the mean and minimum per-iteration
//! times are printed to stdout. No statistics beyond that — the goal is
//! honest relative numbers, offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time for one measurement sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// The benchmark harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.to_string(), self.sample_size, None, f);
    }
}

/// Throughput annotation: per-iteration work, reported as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(
            &format!("{}/{}", self.name, id.text),
            self.criterion.sample_size,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Benchmark a function within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            self.throughput,
            f,
        );
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the stand-in treats
/// every variant as one-setup-per-iteration.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// Exactly one input per batch.
    PerIteration,
}

/// Measures the routine handed to it; one per benchmark invocation.
pub struct Bencher {
    /// Number of timed iterations to run when measuring.
    iters: u64,
    /// Accumulated routine time for the current sample.
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Measure `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_once(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: find an iteration count whose sample fits the budget.
    let mut iters: u64 = 1;
    let warmup_start = Instant::now();
    loop {
        let took = run_once(&mut f, iters);
        if took >= SAMPLE_BUDGET || warmup_start.elapsed() >= WARMUP_BUDGET {
            if took < SAMPLE_BUDGET && took > Duration::ZERO {
                let scale = SAMPLE_BUDGET.as_nanos() / took.as_nanos().max(1);
                iters = iters.saturating_mul(scale.clamp(1, 1 << 20) as u64).max(1);
            }
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut total = Duration::ZERO;
    let mut best_per_iter = f64::INFINITY;
    let mut total_iters: u128 = 0;
    for _ in 0..sample_size {
        let took = run_once(&mut f, iters);
        total += took;
        total_iters += u128::from(iters);
        let per_iter = took.as_nanos() as f64 / iters as f64;
        if per_iter < best_per_iter {
            best_per_iter = per_iter;
        }
    }
    let mean_ns = total.as_nanos() as f64 / total_iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(", {:.3} Melem/s", n as f64 / mean_ns * 1e3)
        }
        Throughput::Bytes(n) => format!(", {:.1} MiB/s", n as f64 / mean_ns * 1e9 / 1048576.0),
    });
    println!(
        "bench {name:<44} mean {mean_ns:>12.1} ns/iter  min {best_per_iter:>12.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// Define a named group of benchmark functions, with optional config:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(20);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut calls = 0u64;
        let mut bencher = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 100);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut bencher = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        bencher.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 10);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).text, "f/8");
        assert_eq!(BenchmarkId::from_parameter(128).text, "128");
    }
}
