//! Offline stand-in for `parking_lot`: a non-poisoning mutex facade over
//! `std::sync::Mutex`. Only the surface this workspace uses.

#![warn(missing_docs)]

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock` never
/// returns a poison error: a panic while holding the lock simply leaves
/// the data as-is for the next holder (parking_lot semantics).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }
}
