//! Offline stand-in for `crossbeam`: MPMC channels built on `std::sync`
//! primitives. Only the surface this workspace uses: an unbounded channel
//! (sweep fan-out work queues) and a bounded channel whose `send` blocks
//! at capacity (worker-pool backpressure in `crates/service`).

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item arrives or the last sender leaves
        /// (wakes blocked `recv` calls).
        ready: Condvar,
        /// Signalled when an item is taken or the last receiver leaves
        /// (wakes `send` calls blocked on a full bounded channel).
        space: Condvar,
        /// `None` = unbounded; `Some(cap)` = at most `cap` queued items.
        cap: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable: clones compete for
    /// items (work-queue semantics).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`]: either the bounded channel
    /// is at capacity right now, or every receiver is gone. The item is
    /// handed back in both cases.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full; the item was not enqueued.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    fn new_pair<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Create an unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_pair(None)
    }

    /// Create a bounded channel holding at most `cap` items: `send`
    /// blocks while the channel is full, which is what gives a worker
    /// pool fed through it backpressure. `cap` must be at least 1
    /// (rendezvous channels are not part of this stub's surface).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel capacity must be >= 1");
        new_pair(Some(cap))
    }

    impl<T> Sender<T> {
        /// Push one item. On a bounded channel this blocks while the
        /// channel is at capacity; on an unbounded channel it returns
        /// immediately. Fails with [`SendError`] (returning the item)
        /// once every receiver has been dropped.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                match self.shared.cap {
                    Some(cap) if state.items.len() >= cap => {
                        state = self
                            .shared
                            .space
                            .wait(state)
                            .unwrap_or_else(|p| p.into_inner());
                    }
                    _ => break,
                }
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Push one item without blocking: if the bounded channel is at
        /// capacity the item comes straight back as
        /// [`TrySendError::Full`], which is what lets a server shed load
        /// with an explicit busy signal instead of stalling the caller.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if let Some(cap) = self.shared.cap {
                if state.items.len() >= cap {
                    return Err(TrySendError::Full(item));
                }
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            state.senders += 1;
            drop(state);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            state.receivers += 1;
            drop(state);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            state.receivers -= 1;
            let disconnected = state.receivers == 0;
            drop(state);
            if disconnected {
                // Wake senders blocked on a full bounded channel so they
                // can observe the disconnect instead of sleeping forever.
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pop one item, blocking while the channel is empty and senders
        /// remain. Returns `Err(RecvError)` once empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Number of items currently queued (a snapshot; racy by nature).
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .items
                .len()
        }

        /// True when no items are currently queued (snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn fan_out_drains_every_item() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                scope.spawn(move || {
                    while let Ok(i) = rx.recv() {
                        total.fetch_add(i, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.into_inner(), (0..100).sum());
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_preserves_fifo_order() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.send(3).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_send_blocks_at_capacity_until_recv() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(0).unwrap();
        let sent = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let sent = &sent;
            scope.spawn(move || {
                // Blocks: the channel already holds one item.
                tx.send(1).unwrap();
                sent.store(1, Ordering::SeqCst);
                tx.send(2).unwrap();
                sent.store(2, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(sent.load(Ordering::SeqCst), 0, "send returned while full");
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        });
        assert_eq!(sent.into_inner(), 2);
    }

    #[test]
    fn bounded_send_fails_when_receivers_gone() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.send(7).unwrap();
        // A sender blocked on a full channel must wake up and fail when
        // the last receiver disappears, not sleep forever.
        std::thread::scope(|scope| {
            let tx = &tx;
            scope.spawn(move || {
                assert_eq!(tx.send(8), Err(channel::SendError(8)));
            });
            std::thread::sleep(Duration::from_millis(50));
            drop(rx);
        });
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_capacity_rejected() {
        let _ = channel::bounded::<u8>(0);
    }

    #[test]
    fn try_send_fails_fast_when_full_or_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }
}
