//! Offline stand-in for `crossbeam`: an unbounded MPMC channel built on
//! `std::sync` primitives. Only the surface this workspace uses.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable: clones
    /// compete for items (work-queue semantics).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Push one item. Never blocks; fails only if all receivers dropped
        /// (not tracked here — receivers drain at their own pace, so this
        /// stub always succeeds).
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            state.senders += 1;
            drop(state);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pop one item, blocking while the channel is empty and senders
        /// remain. Returns `Err(RecvError)` once empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_drains_every_item() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                scope.spawn(move || {
                    while let Ok(i) = rx.recv() {
                        total.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.into_inner(), (0..100).sum());
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
