//! Meta-crate for the `backfill-sim` workspace: re-exports the public facade.
pub use backfill_sim::*;
