//! Should a supercomputer center multiply user wall-clock estimates?
//!
//! A recurring operational question the paper addresses (Section 5.1):
//! Perkovic & Keleher suggested deliberately inflating user estimates to
//! create backfill slack. This example sweeps the inflation factor R for a
//! site's scheduler configuration and reports whether the average bounded
//! slowdown actually improves — and who pays for it (worst-case
//! turnaround).
//!
//! ```text
//! cargo run --release --example estimate_advice [-- jobs]
//! ```

use backfill_sim::prelude::*;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);
    let factors = [1.0, 1.5, 2.0, 3.0, 4.0, 8.0];
    let criteria = CategoryCriteria::default();

    for (site, kind) in [
        ("conservative site", SchedulerKind::Conservative),
        ("EASY site", SchedulerKind::Easy),
    ] {
        let mut table = Table::new(
            format!("Systematic overestimation sweep — {site} (FCFS, CTC-like, rho 0.9)"),
            &["R", "avg slowdown", "avg wait (min)", "worst TA (h)"],
        );
        let mut best = (1.0, f64::INFINITY);
        for &r in &factors {
            let scenario = Scenario {
                source: TraceSource::Ctc { jobs, seed: 42 },
                estimate: EstimateModel::systematic(r),
                estimate_seed: 1,
                load: Some(0.9),
            };
            let schedule = simulate(&scenario.materialize(), kind, Policy::Fcfs);
            schedule.validate().expect("audit");
            let stats = schedule.stats(&criteria);
            let slowdown = stats.overall.avg_slowdown();
            if slowdown < best.1 {
                best = (r, slowdown);
            }
            table.row(vec![
                format!("{r}"),
                fnum(slowdown),
                fnum(stats.overall.avg_wait() / 60.0),
                fnum(stats.overall.worst_turnaround() / 3600.0),
            ]);
        }
        println!("{}", table.render());
        println!(
            "=> best factor for the {site}: R = {} (slowdown {:.1})\n",
            best.0,
            fnum_f(best.1)
        );
    }
    println!(
        "The paper's caveat (Section 5.2) applies: uniform inflation is not\n\
         the same as real, heterogeneous user inaccuracy — rerun this sweep\n\
         with EstimateModel::User to see the difference."
    );
}

fn fnum_f(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}
