//! Tune the selective-backfilling threshold — the paper's future-work
//! proposal (Section 6), made operational.
//!
//! Selective backfilling grants a job a start-time guarantee only once its
//! expansion factor crosses a threshold τ. τ = 1 degenerates to
//! conservative (everyone reserved on arrival), τ = ∞ to a free-for-all.
//! The sweet spot trades a little average slowdown for a large cut in the
//! worst case. This example sweeps τ under realistic noisy estimates and
//! prints the trade-off frontier.
//!
//! ```text
//! cargo run --release --example selective_tuning [-- jobs]
//! ```

use backfill_sim::prelude::*;
use std::num::NonZeroUsize;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);
    let thresholds = [1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, f64::INFINITY];
    let criteria = CategoryCriteria::default();

    let scenario = Scenario {
        source: TraceSource::Ctc { jobs, seed: 42 },
        estimate: EstimateModel::User(UserModelParams {
            exact_frac: 0.2,
            max_factor: 16.0,
            round_values: true,
            max_estimate: Some(SimSpan::from_hours(18)),
        }),
        estimate_seed: 1,
        load: Some(0.9),
    };

    let mut configs: Vec<RunConfig> = vec![
        RunConfig {
            scenario,
            kind: SchedulerKind::Conservative,
            policy: Policy::Fcfs,
        },
        RunConfig {
            scenario,
            kind: SchedulerKind::Easy,
            policy: Policy::Fcfs,
        },
    ];
    for &tau in &thresholds {
        configs.push(RunConfig {
            scenario,
            kind: SchedulerKind::Selective { threshold: tau },
            policy: Policy::Fcfs,
        });
    }
    let results = run_all(&configs, None::<NonZeroUsize>);

    let mut table = Table::new(
        format!("Selective backfilling frontier — CTC-like, {jobs} jobs, noisy estimates"),
        &["scheme", "avg slowdown", "P99 wait (h)", "worst TA (h)"],
    );
    let mut best: Option<(String, f64, f64)> = None;
    for r in &results {
        r.schedule.validate().expect("audit");
        let stats = r.schedule.stats(&criteria);
        let mut waits = Quantiles::new();
        for o in &r.schedule.outcomes {
            waits.push(o.wait().as_secs_f64());
        }
        let p99 = waits.quantile(0.99).unwrap_or(0.0) / 3600.0;
        let label = format!("{}/{}", r.config.kind.label(), r.config.policy);
        let slowdown = stats.overall.avg_slowdown();
        let worst = stats.overall.worst_turnaround() / 3600.0;
        if matches!(r.config.kind, SchedulerKind::Selective { .. }) {
            // Pick the threshold with the best (slowdown × worst-case) product.
            let score = slowdown * worst;
            if best.as_ref().is_none_or(|(_, _, s)| score < *s) {
                best = Some((label.clone(), slowdown, score));
            }
        }
        table.row(vec![label, fnum(slowdown), fnum(p99), fnum(worst)]);
    }
    println!("{}", table.render());
    if let Some((label, slowdown, _)) = best {
        println!(
            "=> recommended configuration: {label} (avg slowdown {slowdown:.1}); it keeps\n\
               conservative-like worst-case protection while approaching EASY's averages —\n\
               exactly the balance the paper's conclusion anticipates."
        );
    }
}
