//! Replay a real Standard Workload Format log through the simulator.
//!
//! Point it at any SWF file from the Parallel Workloads Archive (e.g. the
//! actual CTC or SDSC logs the paper used) and it reruns the paper's main
//! comparison on the real data:
//!
//! ```text
//! cargo run --release --example replay_swf -- path/to/CTC-SP2-1996-3.1-cln.swf
//! ```
//!
//! Without an argument it demonstrates the full round trip on itself: it
//! generates a synthetic trace, serializes it to SWF in a temp file, parses
//! it back, verifies the round trip was lossless, and replays it.

use backfill_sim::prelude::*;
use workload::swf;

fn main() {
    let arg = std::env::args().nth(1);
    let (text, name) = match &arg {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            (text, path.clone())
        }
        None => {
            println!("no SWF file given; demonstrating on a generated trace\n");
            let trace = Scenario::high_load(TraceSource::Ctc {
                jobs: 3_000,
                seed: 9,
            })
            .materialize();
            let text = swf::write_trace(&trace);
            let dir = std::env::temp_dir().join("backfill-sim-demo.swf");
            std::fs::write(&dir, &text).expect("write temp SWF");
            println!("wrote {} ({} bytes)", dir.display(), text.len());
            // Prove the round trip is lossless.
            let reparsed = swf::parse_trace(&text, trace.name(), None).expect("parse");
            assert_eq!(
                reparsed.trace.jobs(),
                trace.jobs(),
                "SWF round trip lost data"
            );
            (text, dir.display().to_string())
        }
    };

    let parsed = swf::parse_trace(&text, &name, None).unwrap_or_else(|e| {
        eprintln!("cannot parse {name}: {e}");
        std::process::exit(1);
    });
    println!(
        "parsed {}: {} usable jobs on {} processors ({} records dropped: \
         {} bad runtime, {} bad width, {} too wide, {} bad submit)",
        name,
        parsed.trace.len(),
        parsed.trace.nodes(),
        parsed.dropped.total(),
        parsed.dropped.bad_runtime,
        parsed.dropped.bad_width,
        parsed.dropped.too_wide,
        parsed.dropped.bad_submit,
    );
    println!("offered load: {:.3}\n", parsed.trace.offered_load());

    let criteria = CategoryCriteria::default();
    let dist = criteria.distribution(&parsed.trace);
    println!(
        "category mix: SN {:.1}%  SW {:.1}%  LN {:.1}%  LW {:.1}%\n",
        dist[0] * 100.0,
        dist[1] * 100.0,
        dist[2] * 100.0,
        dist[3] * 100.0
    );

    let mut table = Table::new(
        "Replay — conservative vs EASY on this log (its own estimates)",
        &[
            "scheme",
            "avg slowdown",
            "avg wait (min)",
            "worst TA (h)",
            "utilization",
        ],
    );
    for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
        for policy in Policy::PAPER {
            let schedule = simulate(&parsed.trace, kind, policy);
            schedule.validate().expect("audit");
            let stats = schedule.stats(&criteria);
            table.row(vec![
                format!("{}/{}", kind.label(), policy),
                fnum(stats.overall.avg_slowdown()),
                fnum(stats.overall.avg_wait() / 60.0),
                fnum(stats.overall.worst_turnaround() / 3600.0),
                format!("{:.3}", stats.utilization),
            ]);
        }
    }
    println!("{}", table.render());
}
