//! Watch selective preemption rescue a starving wide job — the scenario
//! that motivates the authors' companion strategy (their reference [6]).
//!
//! A 6-wide hog with a huge wall-clock claim monopolizes the machine while
//! small jobs keep backfilling around it; an 8-wide job starves under pure
//! EASY. With selective preemption, the moment the wide job's expansion
//! factor crosses the threshold, the hog is suspended, the wide job runs,
//! and the hog resumes afterwards. The Gantt charts make the difference
//! visible.
//!
//! ```text
//! cargo run --release --example starvation_rescue
//! ```

use backfill_sim::prelude::*;
use metrics::viz;

fn build_trace() -> Trace {
    let mut jobs = vec![
        // The hog: claims 14 h, will actually use them.
        Job {
            id: JobId(0),
            arrival: SimTime::ZERO,
            runtime: SimSpan::from_hours(14),
            estimate: SimSpan::from_hours(14),
            width: 6,
        },
        // The victim-to-be: needs the whole machine for 1 h.
        Job {
            id: JobId(0),
            arrival: SimTime::new(60),
            runtime: SimSpan::HOUR,
            estimate: SimSpan::HOUR,
            width: 8,
        },
    ];
    // A stream of 2-wide half-hour jobs that gleefully backfill beside the
    // hog forever under EASY (they fit the spare 2 processors).
    for i in 0..26 {
        jobs.push(Job {
            id: JobId(0),
            arrival: SimTime::new(120 + i * 600),
            runtime: SimSpan::from_mins(30),
            estimate: SimSpan::from_mins(30),
            width: 2,
        });
    }
    Trace::new("starvation", 8, jobs).expect("valid trace")
}

fn report(label: &str, schedule: &Schedule) {
    schedule.validate().expect("audit");
    let wide = schedule
        .outcomes
        .iter()
        .find(|o| o.job.width == 8)
        .expect("the wide job");
    let suspended = schedule
        .outcomes
        .iter()
        .filter(|o| o.was_preempted())
        .count();
    println!(
        "== {label}: wide job waited {} (slowdown {:.1}); {} job(s) suspended",
        wide.wait(),
        wide.bounded_slowdown(),
        suspended
    );
    println!("{}", viz::gantt(&schedule.outcomes, 90));
}

fn main() {
    let trace = build_trace();

    let easy = simulate(&trace, SchedulerKind::Easy, Policy::Fcfs);
    report("EASY (no preemption)", &easy);

    let rescued = simulate(
        &trace,
        SchedulerKind::Preemptive { threshold: 2.0 },
        Policy::Fcfs,
    );
    report("EASY + selective preemption (threshold 2)", &rescued);

    let wide_easy = easy
        .outcomes
        .iter()
        .find(|o| o.job.width == 8)
        .unwrap()
        .wait();
    let wide_pre = rescued
        .outcomes
        .iter()
        .find(|o| o.job.width == 8)
        .unwrap()
        .wait();
    println!(
        "=> preemption cut the wide job's wait from {wide_easy} to {wide_pre};\n\
           the suspended hog finished later but still within bounds — the\n\
           trade the companion paper tunes with its threshold."
    );
}
