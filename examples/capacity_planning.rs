//! Capacity planning: how hot can the machine run before user experience
//! collapses, under each scheduling strategy?
//!
//! Sweeps the offered load on an SDSC-like (128-node) machine and prints
//! the average bounded slowdown per strategy, locating the "knee" — the
//! load beyond which slowdown grows super-linearly. The paper's Section 3
//! observation ("trends are pronounced under high load") is visible as the
//! strategies separating as ρ grows.
//!
//! ```text
//! cargo run --release --example capacity_planning [-- jobs]
//! ```

use backfill_sim::prelude::*;
use std::num::NonZeroUsize;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8_000);
    let loads = [0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0];
    let kinds = [
        ("Cons/FCFS", SchedulerKind::Conservative, Policy::Fcfs),
        ("EASY/FCFS", SchedulerKind::Easy, Policy::Fcfs),
        ("EASY/SJF", SchedulerKind::Easy, Policy::Sjf),
        ("EASY/XF", SchedulerKind::Easy, Policy::XFactor),
    ];

    let mut configs = Vec::new();
    for &rho in &loads {
        for &(_, kind, policy) in &kinds {
            configs.push(RunConfig {
                scenario: Scenario {
                    source: TraceSource::Sdsc { jobs, seed: 7 },
                    estimate: EstimateModel::Exact,
                    estimate_seed: 1,
                    load: Some(rho),
                },
                kind,
                policy,
            });
        }
    }
    let results = run_all(&configs, None::<NonZeroUsize>);
    let criteria = CategoryCriteria::default();

    let mut table = Table::new(
        format!("Average bounded slowdown vs offered load — SDSC-like, {jobs} jobs"),
        &["load", "Cons/FCFS", "EASY/FCFS", "EASY/SJF", "EASY/XF"],
    );
    let mut knee: Option<f64> = None;
    let mut prev_easy_xf: Option<f64> = None;
    for (li, &rho) in loads.iter().enumerate() {
        let mut row = vec![format!("{rho:.2}")];
        for (ki, _) in kinds.iter().enumerate() {
            let stats = results[li * kinds.len() + ki].schedule.stats(&criteria);
            let s = stats.overall.avg_slowdown();
            row.push(fnum(s));
            if ki == 3 {
                if let Some(prev) = prev_easy_xf {
                    if knee.is_none() && s > prev * 2.0 {
                        knee = Some(rho);
                    }
                }
                prev_easy_xf = Some(s);
            }
        }
        table.row(row);
    }
    println!("{}", table.render());
    match knee {
        Some(rho) => println!(
            "=> even under EASY/XF, slowdown more than doubles stepping into rho = {rho}: \
             plan capacity below that."
        ),
        None => println!("=> no knee in the sweep range; the machine absorbs this trace shape."),
    }
}
