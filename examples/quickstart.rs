//! Quickstart: simulate one synthetic workload under EASY backfilling and
//! print the paper's metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use backfill_sim::prelude::*;

fn main() {
    // 1. A CTC-like synthetic workload: 5 000 jobs, deterministic from the
    //    seed, rescaled to the paper's high-load condition (rho = 0.9).
    let scenario = Scenario::high_load(TraceSource::Ctc {
        jobs: 5_000,
        seed: 42,
    });
    let trace = scenario.materialize();
    println!(
        "workload: {} jobs on {} processors, offered load {:.2}",
        trace.len(),
        trace.nodes(),
        trace.offered_load()
    );

    // 2. Simulate EASY backfilling with FCFS queue priority.
    let schedule = simulate(&trace, SchedulerKind::Easy, Policy::Fcfs);

    // 3. Audit the schedule independently of the scheduler's bookkeeping.
    schedule
        .validate()
        .expect("schedule violates machine capacity");

    // 4. Report the paper's metrics, overall and per job category.
    let stats = schedule.stats(&CategoryCriteria::default());
    println!("\nscheduler: {}", schedule.scheduler);
    println!("utilization: {:.3}", stats.utilization);
    println!(
        "overall: avg bounded slowdown {:.2}, avg turnaround {:.0} s, worst turnaround {:.0} s",
        stats.overall.avg_slowdown(),
        stats.overall.avg_turnaround(),
        stats.overall.worst_turnaround()
    );
    println!("\nper category (the paper's SN/SW/LN/LW lens):");
    for cat in Category::ALL {
        let m = stats.category(cat);
        println!(
            "  {cat}: {:5} jobs, avg slowdown {:8.2}, avg wait {:8.0} s",
            m.count(),
            m.avg_slowdown(),
            m.avg_wait()
        );
    }
}
