//! The paper's central comparison, as a library user would run it:
//! conservative vs EASY vs selective backfilling under the three queue
//! priorities, on one workload, with per-category breakdown.
//!
//! ```text
//! cargo run --release --example compare_strategies [-- jobs [seed]]
//! ```

use backfill_sim::prelude::*;
use std::num::NonZeroUsize;

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let scenario = Scenario::high_load(TraceSource::Ctc { jobs, seed });
    let criteria = CategoryCriteria::default();

    let mut configs = Vec::new();
    for kind in [
        SchedulerKind::NoBackfill,
        SchedulerKind::Conservative,
        SchedulerKind::Easy,
        SchedulerKind::Selective { threshold: 2.0 },
    ] {
        for policy in Policy::PAPER {
            configs.push(RunConfig {
                scenario,
                kind,
                policy,
            });
        }
    }

    // One call fans the 12 simulations across all cores; results come back
    // in input order regardless of completion order.
    let results = run_all(&configs, NonZeroUsize::new(0).or(None));

    let mut table = Table::new(
        format!("Backfilling strategies on a {jobs}-job CTC-like workload (seed {seed})"),
        &["scheme", "slowdown", "SN", "SW", "LN", "LW", "worst TA (h)"],
    );
    for r in &results {
        r.schedule.validate().expect("audit");
        let stats = r.schedule.stats(&criteria);
        let mut row = vec![
            format!("{}/{}", r.config.kind.label(), r.config.policy),
            fnum(stats.overall.avg_slowdown()),
        ];
        for cat in Category::ALL {
            row.push(fnum(stats.category(cat).avg_slowdown()));
        }
        row.push(fnum(stats.overall.worst_turnaround() / 3600.0));
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "Reading guide: LN rows favour EASY (fewer blocking reservations);\n\
         SW rows favour conservative (guaranteed start times); worst-case\n\
         turnaround shows EASY's starvation risk — the paper's Section 4 story."
    );
}
