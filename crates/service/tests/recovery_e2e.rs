//! Crash-recovery end-to-end: a daemon started with `--cache-journal`
//! must replay its cache after a restart and serve previously computed
//! sweeps byte-identically from cache — including after a torn write.

use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
use sched::Policy;
use service::{Client, Server, ServiceConfig};
use std::io::Write;
use std::path::PathBuf;

/// Temp journal path removed on drop, so failed runs don't leak files.
struct TempJournal(PathBuf);

impl TempJournal {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "bfsim-recovery-{}-{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        TempJournal(path)
    }
}

impl Drop for TempJournal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn sweep() -> Vec<RunConfig> {
    let scenario = Scenario::high_load(TraceSource::Ctc { jobs: 100, seed: 9 });
    [Policy::Fcfs, Policy::Sjf, Policy::XFactor, Policy::Ljf]
        .into_iter()
        .map(|policy| RunConfig {
            scenario,
            kind: SchedulerKind::Easy,
            policy,
        })
        .collect()
}

fn journaled_config(journal: &TempJournal) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_cap: 8,
        journal: Some(journal.0.clone()),
        ..ServiceConfig::default()
    }
}

#[test]
fn restarted_daemon_replays_the_journal_and_serves_from_cache() {
    let journal = TempJournal::new("replay");
    let configs = sweep();

    // First life: compute the sweep, journaling every insert.
    let handle = Server::start("127.0.0.1:0", journaled_config(&journal)).expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut first = Vec::new();
    for config in &configs {
        let reply = client.submit(config).expect("submit");
        assert!(!reply.cached, "first life must simulate");
        first.push(serde_json::to_string(&reply.report).unwrap());
    }
    let health = client.health().expect("health");
    let j = health.journal.expect("journal must be reported");
    assert_eq!(j.replayed, 0);
    assert_eq!(j.appended, configs.len() as u64);
    assert!(!j.truncated);
    client.shutdown().expect("shutdown");
    handle.join();

    // Second life, same journal: every config is a cache hit with the
    // identical canonical result JSON — no recomputation.
    let handle = Server::start("127.0.0.1:0", journaled_config(&journal)).expect("restart");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let health = client.health().expect("health");
    let j = health.journal.expect("journal must be reported");
    assert_eq!(j.replayed, configs.len() as u64);
    assert!(!j.truncated);
    assert_eq!(health.cache_entries, configs.len() as u64);
    for (config, fresh) in configs.iter().zip(&first) {
        let reply = client.submit(config).expect("resubmit");
        assert!(
            reply.cached,
            "{}: must hit the replayed cache",
            config.label()
        );
        assert_eq!(
            &serde_json::to_string(&reply.report).unwrap(),
            fresh,
            "{}: replayed report must be byte-identical",
            config.label()
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_hits, configs.len() as u64);
    assert_eq!(stats.cache_misses, 0);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn torn_tail_is_dropped_but_earlier_entries_survive_the_restart() {
    let journal = TempJournal::new("torn");
    let configs = sweep();

    let handle = Server::start("127.0.0.1:0", journaled_config(&journal)).expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for config in &configs {
        client.submit(config).expect("submit");
    }
    client.shutdown().expect("shutdown");
    handle.join();

    // Simulate a crash mid-append: chop the final record in half and
    // leave unfinished garbage behind it.
    let text = std::fs::read_to_string(&journal.0).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), configs.len());
    let keep = lines[..lines.len() - 1].join("\n");
    let torn = format!(
        "{keep}\n{}",
        &lines[lines.len() - 1][..lines[lines.len() - 1].len() / 2]
    );
    let mut file = std::fs::File::create(&journal.0).expect("rewrite journal");
    file.write_all(torn.as_bytes()).expect("write torn tail");
    drop(file);

    // Restart: the torn record is truncated away, the rest replays.
    let handle = Server::start("127.0.0.1:0", journaled_config(&journal)).expect("restart");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let health = client.health().expect("health");
    let j = health.journal.expect("journal must be reported");
    assert_eq!(j.replayed, (configs.len() - 1) as u64);
    assert!(j.truncated, "the torn tail must be reported");
    assert_eq!(health.cache_entries, (configs.len() - 1) as u64);

    // Surviving entries hit; the lost one recomputes and re-journals.
    for (i, config) in configs.iter().enumerate() {
        let reply = client.submit(config).expect("resubmit");
        assert_eq!(
            reply.cached,
            i < configs.len() - 1,
            "{}: wrong cache provenance after torn-tail recovery",
            config.label()
        );
    }
    client.shutdown().expect("shutdown");
    handle.join();

    // Third life: the recomputed entry was re-journaled cleanly, so now
    // everything replays.
    let handle = Server::start("127.0.0.1:0", journaled_config(&journal)).expect("third start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let health = client.health().expect("health");
    let j = health.journal.expect("journal must be reported");
    assert_eq!(j.replayed, configs.len() as u64);
    assert!(!j.truncated);
    client.shutdown().expect("shutdown");
    handle.join();
}
