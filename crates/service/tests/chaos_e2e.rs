//! Chaos end-to-end test: 8 concurrent resilient clients drive a batch
//! through a daemon armed with a deterministic fault plan (worker
//! panics, dropped connections, corrupted frames, slow workers) and
//! must collectively receive exactly one correct response per config,
//! byte-identical to a fault-free direct run.
//!
//! Also pins the individual hardening behaviors: overload shedding
//! (`Busy`), oversized-frame rejection, and the server-side idle read
//! timeout.

use backfill_sim::{run_all, RunConfig, Scenario, SchedulerKind, TraceSource};
use sched::Policy;
use service::{
    Client, ClientError, ClientOptions, FaultPlan, ResilientClient, Response, RetryPolicy,
    RunReport, Server, ServiceConfig,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Duration;

/// 16 distinct configs: 2 trace seeds x 2 schedulers x 4 policies.
fn chaos_batch() -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for seed in [3, 4] {
        let scenario = Scenario::high_load(TraceSource::Ctc { jobs: 120, seed });
        for kind in [SchedulerKind::Easy, SchedulerKind::Conservative] {
            for policy in [Policy::Fcfs, Policy::Sjf, Policy::XFactor, Policy::Ljf] {
                configs.push(RunConfig {
                    scenario,
                    kind,
                    policy,
                });
            }
        }
    }
    configs
}

#[test]
fn chaos_plan_loses_no_responses_and_preserves_results() {
    // ≥1 worker panic, ≥1 dropped connection, ≥1 slow worker (plus a
    // corrupted frame) — the issue's minimum chaos menu. The injected
    // worker panic prints through the default panic hook; that stderr
    // noise is expected in this test's output.
    let plan = FaultPlan::parse("seed=7;panic@1;drop@4;corrupt@6;delay@9=120ms;drop@12")
        .expect("plan parses");
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 4,
            queue_cap: 32, // nothing shed: this test isolates the fault plan
            fault_plan: Some(plan.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let configs = chaos_batch();

    // 8 concurrent clients, 2 configs each, distinct retry seeds so
    // their backoff schedules never synchronize.
    let replies: Mutex<BTreeMap<u64, String>> = Mutex::new(BTreeMap::new());
    let barrier = Barrier::new(8);
    std::thread::scope(|scope| {
        for (worker, chunk) in configs.chunks(2).enumerate() {
            let (addr, barrier, replies) = (&addr, &barrier, &replies);
            scope.spawn(move || {
                let mut client = ResilientClient::new(
                    addr.as_str(),
                    ClientOptions {
                        deadline: Some(Duration::from_secs(10)),
                        retry: RetryPolicy {
                            max_retries: 8,
                            base: Duration::from_millis(5),
                            cap: Duration::from_millis(100),
                            seed: worker as u64,
                        },
                    },
                );
                barrier.wait(); // maximize request overlap
                for config in chunk {
                    let reply = client.submit(config).expect("chaos submit must succeed");
                    assert_eq!(reply.config_hash, config.content_hash());
                    let json = serde_json::to_string(&reply.report).unwrap();
                    let prev = replies.lock().unwrap().insert(reply.config_hash, json);
                    assert!(prev.is_none(), "duplicate response for one config");
                }
            });
        }
    });

    // Exactly one response per submitted config, byte-identical to a
    // fault-free direct run of the same batch.
    let replies = replies.into_inner().unwrap();
    assert_eq!(replies.len(), configs.len());
    let direct = run_all(&configs, std::num::NonZeroUsize::new(4));
    for (config, result) in configs.iter().zip(&direct) {
        let expected =
            serde_json::to_string(&RunReport::from_schedule(config, &result.schedule)).unwrap();
        assert_eq!(
            replies.get(&config.content_hash()),
            Some(&expected),
            "{}: chaos-run report differs from fault-free run",
            config.label()
        );
    }

    // The faults demonstrably fired, and the daemon accounted for them.
    let mut probe = Client::connect(addr.as_str()).expect("connect probe");
    let health = probe.health().expect("health");
    assert!(health.ready && !health.draining);
    assert!(
        health.worker_panics >= 1,
        "the panic@1 rule must have killed a worker"
    );
    assert_eq!(
        health.fault_plan.as_deref(),
        Some(plan.to_string().as_str()),
        "health must advertise the armed plan"
    );
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.cache_entries, configs.len() as u64);
    assert!(
        stats.submitted > configs.len() as u64,
        "faulted submits must have been resubmitted (submitted={})",
        stats.submitted
    );
    assert!(stats.failed >= 1, "the worker panic must count as failed");
    // Each of the 4 loss-inducing rules (panic, 2 drops, corrupt)
    // forced at least one client retry.
    let retries = obs::metrics::global().counter("client.retries").get();
    assert!(retries >= 4, "expected >= 4 client retries, saw {retries}");

    probe.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn full_queue_sheds_with_busy_instead_of_blocking() {
    // 1 worker pinned by a 300 ms injected delay on every index + a
    // 1-slot queue: of 6 simultaneous submits, at most 2 can be
    // admitted before the first completes — the rest must be refused
    // with Busy immediately, not block the accept path.
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            queue_cap: 1,
            fault_plan: Some(FaultPlan::parse("delay@0..100=300ms").unwrap()),
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr();

    let configs: Vec<RunConfig> = (0..6)
        .map(|seed| RunConfig {
            scenario: Scenario::high_load(TraceSource::Ctc {
                jobs: 60,
                seed: 100 + seed,
            }),
            kind: SchedulerKind::Easy,
            policy: Policy::Fcfs,
        })
        .collect();
    let completed = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let barrier = Barrier::new(configs.len());
    std::thread::scope(|scope| {
        for config in &configs {
            let (barrier, completed, shed) = (&barrier, &completed, &shed);
            scope.spawn(move || {
                // Raw clients on purpose: Busy must surface, not be
                // absorbed by retries.
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                match client.submit(config) {
                    Ok(_) => {
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(ClientError::Busy) => {
                        shed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(other) => panic!("expected success or Busy, got {other}"),
                }
            });
        }
    });
    let done = completed.load(Ordering::SeqCst);
    let busy = shed.load(Ordering::SeqCst);
    assert_eq!(done + busy, configs.len());
    assert!(
        busy >= 1,
        "a 1+1 capacity daemon must shed part of a 6-burst"
    );

    let mut probe = Client::connect(addr).expect("connect probe");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.shed, busy as u64);
    assert_eq!(stats.completed, done as u64);
    // Shed submits still count as submitted, never as failed.
    assert_eq!(stats.submitted, configs.len() as u64);
    assert_eq!(stats.failed, 0);
    probe.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn oversized_request_frame_is_rejected_with_a_structured_error() {
    use std::io::{BufRead, BufReader, Write};
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            queue_cap: 1,
            max_frame: 2048,
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr();

    let stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // A 64 KiB line against a 2 KiB limit: the server must answer a
    // structured, non-retryable error without buffering the payload.
    let mut big = vec![b'x'; 64 * 1024];
    big.push(b'\n');
    writer.write_all(&big).unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("server must answer an oversized frame within the deadline");
    match serde_json::from_str::<Response>(line.trim_end()).unwrap() {
        Response::Error {
            message, retryable, ..
        } => {
            assert!(
                message.contains("exceeds") && message.contains("2048"),
                "error must name the limit: {message}"
            );
            assert!(!retryable, "resending the same oversized frame cannot help");
        }
        other => panic!("expected Error, got {other:?}"),
    }

    // The connection survived in line-sync: a well-formed request on
    // the same socket still works.
    writer.write_all(b"\"Stats\"\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).expect("stats after oversized");
    assert!(matches!(
        serde_json::from_str::<Response>(line.trim_end()).unwrap(),
        Response::Stats(_)
    ));

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn idle_connection_is_reaped_by_the_read_timeout() {
    use std::io::Read;
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            queue_cap: 1,
            read_timeout: Some(Duration::from_millis(100)),
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr();

    // Connect and send nothing: the server's read deadline must close
    // the connection (we observe EOF), keeping idle sockets from
    // pinning handler threads forever.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    let n = stream
        .read(&mut buf)
        .expect("read must resolve once the server reaps the connection");
    assert_eq!(n, 0, "expected EOF from the reaped connection");

    // The daemon itself is unaffected.
    let mut client = Client::connect(addr).expect("connect");
    client.stats().expect("stats after reap");
    client.shutdown().expect("shutdown");
    handle.join();
}
