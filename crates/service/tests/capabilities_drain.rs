//! The coordinator handshake verbs: `capabilities` sizing and `drain`
//! (refuse new submits, stay alive for introspection).

use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
use sched::Policy;
use service::{Client, ClientError, Server, ServiceConfig, PROTO_VERSION};

fn config() -> RunConfig {
    RunConfig {
        scenario: Scenario::high_load(TraceSource::Ctc { jobs: 90, seed: 7 }),
        kind: SchedulerKind::Easy,
        policy: Policy::Sjf,
    }
}

#[test]
fn capabilities_reports_sizing_and_protocol() {
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            queue_cap: 5,
            ..ServiceConfig::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let caps = client.capabilities().expect("capabilities");
    assert_eq!(caps.proto, PROTO_VERSION);
    assert_eq!(caps.workers, 2);
    assert_eq!(caps.queue_cap, 5);
    assert!(caps.max_frame > 0);
    assert_eq!(caps.cache_entries, 0, "nothing memoized yet");
    assert!(!caps.journaled, "no journal configured");
    assert!(!caps.draining);

    client.submit(&config()).expect("submit");
    let caps = client.capabilities().expect("capabilities after submit");
    assert_eq!(caps.cache_entries, 1, "the run was memoized");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn drain_refuses_submits_but_keeps_answering_introspection() {
    let handle = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    client.submit(&config()).expect("submit before drain");
    client.drain().expect("drain acks");

    // New submits are refused...
    match client.submit(&config()) {
        Err(ClientError::ShuttingDown) => {}
        other => panic!("drained daemon answered a submit with {other:?}"),
    }
    // ...but the daemon is alive: every introspection verb still works,
    // and unlike Shutdown the accept loop keeps accepting connections.
    let caps = client.capabilities().expect("capabilities while drained");
    assert!(caps.draining, "capabilities must advertise the drain");
    let health = client.health().expect("health while drained");
    assert!(!health.ready, "a drained daemon is not ready");
    assert!(
        !health.draining,
        "drain is not shutdown: the accept loop is still running"
    );
    client.stats().expect("stats while drained");
    client.metrics().expect("metrics while drained");
    let mut second = Client::connect(handle.addr()).expect("fresh connection while drained");
    second.health().expect("health on a fresh connection");

    client.shutdown().expect("shutdown after drain");
    handle.join();
}
