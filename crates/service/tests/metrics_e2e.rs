//! Metrics-verb and stats-invariant coverage for the daemon.
//!
//! Two properties pinned here:
//!
//! 1. `Request::Metrics` answers with one canonical-JSON registry
//!    snapshot covering the service shell (submit counters, pool,
//!    cache) *and* the sim core (profile-index counters flushed per
//!    completed run).
//! 2. The `Stats` snapshot never violates the accounting invariant
//!    `submitted >= completed + failed + in_flight` while submits are
//!    racing the probe — the regression the worker-pool decrement
//!    reorder and the documented snapshot read order exist to prevent.

use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
use sched::Policy;
use service::{Client, Server, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

fn config(seed: u64) -> RunConfig {
    RunConfig {
        scenario: Scenario::high_load(TraceSource::Ctc { jobs: 120, seed }),
        kind: SchedulerKind::Conservative,
        policy: Policy::Sjf,
    }
}

#[test]
fn metrics_verb_answers_one_canonical_snapshot() {
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            queue_cap: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    // One fresh run and one cache replay, so every counter family has
    // something to show.
    client.submit(&config(3)).expect("fresh run");
    client.submit(&config(3)).expect("cache hit");

    let json = client.metrics().expect("metrics verb");
    // Canonical form: no whitespace, sorted top-level sections.
    assert!(!json.contains(' '), "canonical JSON has no whitespace");
    assert!(json.starts_with(r#"{"counters":{"#));

    // Service shell counters.
    for key in [
        r#""service.submitted":2"#,
        r#""service.completed":2"#,
        r#""service.cache.hits":1"#,
        r#""service.cache.misses":1"#,
        r#""sim.runs":1"#,
    ] {
        assert!(json.contains(key), "metrics missing {key}:\n{json}");
    }
    // Sim-core counters flushed from the completed run's profile stats.
    for name in [
        "sim.profile.find_anchor_calls",
        "sim.profile.reserves",
        "sim.queue.inserts",
        "sim.profile.fits_cache.hits",
    ] {
        assert!(json.contains(name), "metrics missing {name}:\n{json}");
    }
    // Pool instrumentation: latency histogram and refreshed gauges.
    assert!(json.contains(r#""service.pool.run_wall_ms""#));
    assert!(json.contains(r#""service.pool.queue_depth":0"#));
    assert!(json.contains(r#""service.pool.in_flight":0"#));
    assert!(json.contains(r#""service.draining":0"#));

    // Identical registry state must render byte-identically.
    let again = client.metrics().expect("metrics verb twice");
    assert_eq!(json, again, "canonical snapshot must be reproducible");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn stats_invariant_holds_under_concurrent_submits() {
    // Queue capacity covers all 8 concurrent submits: this test expects
    // every one to complete, so none may be shed as Busy.
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            queue_cap: 8,
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr();

    let configs: Vec<RunConfig> = (0..8).map(config).collect();
    let done = AtomicBool::new(false);
    // Submitters + the stats probe + the completion waiter.
    let barrier = Barrier::new(configs.len() + 2);

    std::thread::scope(|scope| {
        for cfg in &configs {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                client.submit(cfg).expect("submit");
            });
        }

        // The probe hammers Stats while the batch races through the
        // pool; any snapshot where a task is double-counted (completed
        // while still in-flight) fails here.
        let done = &done;
        let barrier = &barrier;
        let probe = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connect probe");
            barrier.wait();
            let mut observed = 0u64;
            while !done.load(Ordering::SeqCst) {
                let s = client.stats().expect("stats");
                assert!(
                    s.submitted >= s.completed + s.failed + s.in_flight,
                    "accounting violated: submitted={} completed={} failed={} in_flight={}",
                    s.submitted,
                    s.completed,
                    s.failed,
                    s.in_flight
                );
                observed += 1;
            }
            observed
        });

        // Scoped threads join when the scope ends; flip the flag once
        // all submitters are done by joining them implicitly via a
        // final in-scope checkpoint client.
        scope.spawn(|| {
            // Wait until every config is accounted for as completed.
            let mut client = Client::connect(addr).expect("connect waiter");
            barrier.wait();
            loop {
                let s = client.stats().expect("stats");
                if s.completed + s.failed >= configs.len() as u64 {
                    break;
                }
                std::thread::yield_now();
            }
            done.store(true, Ordering::SeqCst);
        });

        let polls = probe.join().unwrap();
        assert!(polls > 0, "probe never observed a snapshot");
    });

    let mut client = Client::connect(addr).expect("connect");
    let final_stats = client.stats().expect("stats");
    assert_eq!(final_stats.completed, configs.len() as u64);
    assert_eq!(final_stats.in_flight, 0);
    client.shutdown().expect("shutdown");
    handle.join();
}
