//! End-to-end daemon test: concurrent submits over real TCP, cache
//! replay, fault isolation, and graceful drain — the issue's acceptance
//! scenario.

use backfill_sim::{run_all, RunConfig, Scenario, SchedulerKind, TraceSource};
use sched::Policy;
use service::{Client, ClientError, Response, RunReport, Server, ServiceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// The concurrent batch: 2 schedulers x 4 policies over one scenario.
fn batch() -> Vec<RunConfig> {
    let scenario = Scenario::high_load(TraceSource::Ctc { jobs: 140, seed: 7 });
    let mut configs = Vec::new();
    for kind in [SchedulerKind::Easy, SchedulerKind::Conservative] {
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::XFactor, Policy::Ljf] {
            configs.push(RunConfig {
                scenario,
                kind,
                policy,
            });
        }
    }
    configs
}

fn poisoned() -> RunConfig {
    RunConfig {
        scenario: Scenario {
            source: TraceSource::Ctc { jobs: 50, seed: 1 },
            estimate: workload::EstimateModel::Exact,
            estimate_seed: 1,
            load: Some(-1.0), // trips scale_to_load's positivity assert
        },
        kind: SchedulerKind::Easy,
        policy: Policy::Fcfs,
    }
}

/// Submit every config from its own client thread; returns replies in
/// config order.
fn submit_concurrently(
    addr: std::net::SocketAddr,
    configs: &[RunConfig],
) -> Vec<service::RunReply> {
    let barrier = Barrier::new(configs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|config| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait(); // maximize request overlap
                    client.submit(config).expect("submit")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn daemon_serves_concurrent_batch_then_replays_from_cache() {
    // Queue capacity covers the whole batch: this test asserts every
    // concurrent submit completes, so nothing may be shed as Busy.
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 4,
            queue_cap: 8,
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr();
    let configs = batch();

    // (a) Concurrent first pass: every response must equal the report
    // computed from a direct in-process run of the same config.
    let first = submit_concurrently(addr, &configs);
    let direct = run_all(&configs, std::num::NonZeroUsize::new(4));
    for ((config, reply), result) in configs.iter().zip(&first).zip(&direct) {
        assert!(
            !reply.cached,
            "{}: first pass must simulate",
            config.label()
        );
        assert_eq!(reply.config_hash, config.content_hash());
        let expected = RunReport::from_schedule(config, &result.schedule);
        assert_eq!(
            serde_json::to_string(&reply.report).unwrap(),
            serde_json::to_string(&expected).unwrap(),
            "{}: daemon report differs from direct run",
            config.label()
        );
    }

    // (b) Resubmitting the whole batch is served entirely from cache,
    // byte-identical, and the hit counters prove it.
    let mut probe = Client::connect(addr).expect("connect");
    let before = probe.stats().expect("stats");
    assert_eq!(before.cache_hits, 0);
    assert_eq!(before.cache_misses, configs.len() as u64);
    assert_eq!(before.cache_entries, configs.len() as u64);
    assert_eq!(before.completed, configs.len() as u64);

    let second = submit_concurrently(addr, &configs);
    for (reply, fresh) in second.iter().zip(&first) {
        assert!(reply.cached, "second pass must hit the cache");
        assert_eq!(
            serde_json::to_string(&reply.report).unwrap(),
            serde_json::to_string(&fresh.report).unwrap(),
            "cached report must be byte-identical to the fresh one"
        );
    }
    let after = probe.stats().expect("stats");
    assert_eq!(after.cache_hits, configs.len() as u64);
    assert_eq!(after.cache_misses, configs.len() as u64);
    assert_eq!(after.submitted, 2 * configs.len() as u64);

    // Shut down so the daemon thread exits.
    probe.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn poisoned_scenario_gets_error_and_daemon_survives() {
    // The worker's catch_unwind still lets the default hook print the
    // panic to stderr; that noise is expected in this test's output.
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            queue_cap: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    let bad = poisoned();
    match client.submit(&bad) {
        Err(ClientError::Service {
            message,
            config_hash,
            retryable,
        }) => {
            assert!(
                message.contains("target load must be positive"),
                "unexpected message: {message}"
            );
            assert_eq!(config_hash, bad.content_hash());
            assert!(
                !retryable,
                "a deterministic cell failure must not invite retries"
            );
        }
        other => panic!("poisoned submit must fail at request level, got {other:?}"),
    }

    // The same connection and daemon still serve healthy work.
    let good = batch()[0];
    let reply = client.submit(&good).expect("daemon must survive the panic");
    assert!(!reply.cached);
    assert_eq!(reply.report.jobs, 140);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn malformed_request_line_is_rejected_not_fatal() {
    use std::io::{BufRead, BufReader, Write};
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            queue_cap: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr();

    let stream = std::net::TcpStream::connect(addr).unwrap();
    // Deadline-bounded read: a hung daemon fails with a clear timeout
    // instead of hanging the test run.
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(b"this is not json\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("daemon must answer a malformed line within the deadline");
    match serde_json::from_str::<Response>(line.trim_end()).unwrap() {
        Response::Error {
            message,
            config_hash,
            retryable,
        } => {
            assert!(message.contains("malformed request"), "{message}");
            assert_eq!(config_hash, 0);
            assert!(!retryable, "a malformed frame will not parse next time");
        }
        other => panic!("expected Error, got {other:?}"),
    }

    // Daemon is still fine afterwards.
    let mut client = Client::connect(addr).expect("connect");
    client.stats().expect("stats after malformed line");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_without_losing_responses() {
    // 1 worker + tiny queue: most of the batch is queued (or shed as
    // Busy, now that the queue refuses instead of blocking) when the
    // shutdown lands mid-flight. Every submitter must still get a
    // definitive answer — a report, Busy, or ShuttingDown — and every
    // accepted request must produce its report.
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            queue_cap: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    let addr = handle.addr();
    let configs = batch();

    let answered = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let barrier = Barrier::new(configs.len() + 1);
    std::thread::scope(|scope| {
        for config in &configs {
            let barrier = &barrier;
            let (answered, completed, rejected, shed) = (&answered, &completed, &rejected, &shed);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                match client.submit(config) {
                    Ok(reply) => {
                        assert_eq!(reply.config_hash, config.content_hash());
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(ClientError::ShuttingDown) => {
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(ClientError::Busy) => {
                        shed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(other) => panic!("lost response: {other}"),
                }
                answered.fetch_add(1, Ordering::SeqCst);
            });
        }
        barrier.wait();
        // Let some submits land, then pull the plug from a separate
        // connection while others are still queued or simulating.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut killer = Client::connect(addr).expect("connect");
        killer.shutdown().expect("shutdown ack");
    });
    handle.join(); // daemon only exits once the drain gate opens

    assert_eq!(
        answered.load(Ordering::SeqCst),
        configs.len(),
        "every submitter must get exactly one response"
    );
    let done = completed.load(Ordering::SeqCst);
    let refused = rejected.load(Ordering::SeqCst);
    let busy = shed.load(Ordering::SeqCst);
    assert_eq!(done + refused + busy, configs.len());

    // After join the daemon is gone: the port no longer accepts.
    assert!(
        std::net::TcpStream::connect(addr).is_err(),
        "daemon must have stopped listening after drain"
    );
}
