//! Retry-budget semantics of [`ResilientClient`] against real sockets:
//! the budget is honored exactly, the terminal error is preserved
//! inside `Exhausted`, and non-retryable failures bypass the budget.

use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
use sched::Policy;
use service::{ClientError, ClientOptions, ResilientClient, RetryPolicy, Server, ServiceConfig};
use std::time::Duration;

/// A 127.0.0.1 port with nothing listening: bind, read the port, drop
/// the listener. Connections are then refused (not black-holed).
fn dead_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    addr.to_string()
}

fn fast_retry(max_retries: u32) -> ClientOptions {
    ClientOptions {
        deadline: Some(Duration::from_millis(500)),
        retry: RetryPolicy {
            max_retries,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            seed: 1,
        },
    }
}

#[test]
fn budget_exhaustion_preserves_the_terminal_error_and_attempt_count() {
    let mut client = ResilientClient::new(dead_addr(), fast_retry(3));
    match client.stats() {
        Err(ClientError::Exhausted { attempts, last }) => {
            // max_retries = 3 means exactly 4 attempts: 1 + 3 retries.
            assert_eq!(attempts, 4);
            assert!(
                matches!(*last, ClientError::Io(ref e)
                    if e.kind() == std::io::ErrorKind::ConnectionRefused),
                "terminal error must be the refused connect, got {last}"
            );
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
}

#[test]
fn zero_retries_fails_on_the_first_error_without_wrapping() {
    let mut client = ResilientClient::new(dead_addr(), fast_retry(0));
    match client.stats() {
        Err(ClientError::Exhausted { attempts, .. }) => {
            assert_eq!(attempts, 1, "max_retries=0 must mean exactly one attempt");
        }
        other => panic!("expected Exhausted after the single attempt, got {other:?}"),
    }
}

#[test]
fn non_retryable_service_errors_bypass_the_retry_budget() {
    let handle = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            queue_cap: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("start daemon");
    // A deterministic cell failure: negative load trips the positivity
    // assert inside the worker every time, so retrying cannot help and
    // the error must come back directly, not wrapped in Exhausted.
    // (The worker's catch_unwind lets the default hook print the panic;
    // that stderr noise is expected here.)
    let poisoned = RunConfig {
        scenario: Scenario {
            source: TraceSource::Ctc { jobs: 40, seed: 1 },
            estimate: workload::EstimateModel::Exact,
            estimate_seed: 1,
            load: Some(-1.0),
        },
        kind: SchedulerKind::Easy,
        policy: Policy::Fcfs,
    };
    let mut client = ResilientClient::new(handle.addr().to_string(), fast_retry(5));
    match client.submit(&poisoned) {
        Err(ClientError::Service {
            retryable, message, ..
        }) => {
            assert!(!retryable, "deterministic failure must not be retryable");
            assert!(
                message.contains("target load must be positive"),
                "{message}"
            );
        }
        other => panic!("expected a direct Service error, got {other:?}"),
    }
    // Exactly one submit reached the daemon: the budget was not spent.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.failed, 1);

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn retries_recover_once_the_daemon_appears() {
    // Start with a dead address, then bring a daemon up at that exact
    // port while the client is mid-backoff: a later retry must connect
    // and succeed, proving reconnection after transport failures.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);

    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        Server::start(addr, ServiceConfig::default()).expect("late daemon start")
    });

    let mut client = ResilientClient::new(
        addr.to_string(),
        ClientOptions {
            deadline: Some(Duration::from_secs(5)),
            retry: RetryPolicy {
                max_retries: 50,
                base: Duration::from_millis(20),
                cap: Duration::from_millis(50),
                seed: 2,
            },
        },
    );
    client
        .stats()
        .expect("a retry after the daemon came up must succeed");

    let handle = starter.join().expect("starter thread");
    client.shutdown().expect("shutdown");
    handle.join();
}
