//! Supervisor e2e against the real `bfsimd` binary: a SIGKILLed child
//! is respawned (and answers the handshake again), a child that cannot
//! even start crash-loops into its breaker, and `stop` tears the fleet
//! down cleanly.

#![cfg(unix)]

use service::{
    BreakerPolicy, ChildStatus, Client, ClientOptions, ResilientClient, RetryPolicy, SupervisorSpec,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

fn bfsimd() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_bfsimd"))
}

/// Reserve a free port by binding and dropping.
fn free_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("addr").to_string()
}

/// Fast restart schedule so the tests finish in milliseconds.
fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(5),
        cap: Duration::from_millis(40),
        ..RetryPolicy::default()
    }
}

/// Poll `addr` until a capabilities handshake succeeds.
fn wait_ready(addr: &str, what: &str) {
    let opts = ClientOptions {
        deadline: Some(Duration::from_millis(500)),
        retry: RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if ResilientClient::new(addr, opts).capabilities().is_ok() {
            return;
        }
        assert!(Instant::now() < deadline, "{what}: {addr} never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkilled_child_is_respawned_and_answers_again() {
    let addr = free_addr();
    let spec = SupervisorSpec {
        bfsimd: bfsimd(),
        addrs: vec![addr.clone()],
        args: Vec::new(),
        retry: quick_retry(),
        breaker: BreakerPolicy {
            max_restarts: 5,
            stable_uptime: Duration::from_millis(200),
        },
    };
    let supervisor = service::Supervisor::spawn(spec).expect("spawn fleet");
    wait_ready(&addr, "first spawn");
    let first_pid = supervisor.children()[0]
        .pid
        .expect("running child has a pid");

    // Murder the child the way a crashing host would: no drain, no exit
    // handler. The supervisor must reap it and bring a fresh one up.
    unsafe {
        kill(first_pid as i32, 9);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let view = &supervisor.children()[0];
        if view.status == ChildStatus::Running && view.pid.is_some_and(|pid| pid != first_pid) {
            break;
        }
        assert!(Instant::now() < deadline, "child was never respawned");
        std::thread::sleep(Duration::from_millis(20));
    }
    wait_ready(&addr, "respawn");
    let view = &supervisor.children()[0];
    assert!(
        view.restarts >= 2,
        "the first spawn and the respawn both count: {view:?}"
    );

    // Drain the replacement politely before stopping the supervisor so
    // nothing lingers on the reserved port.
    Client::connect(&addr)
        .and_then(|mut c| c.shutdown())
        .expect("shutdown respawned child");
    supervisor.stop();
    let report = supervisor.join();
    assert_eq!(report.children[0].status, ChildStatus::Stopped);
}

#[test]
fn crash_looping_child_trips_the_breaker_and_the_fleet_gives_up() {
    let addr = free_addr();
    let spec = SupervisorSpec {
        bfsimd: bfsimd(),
        addrs: vec![addr],
        // An unknown flag makes bfsimd exit 2 instantly on every spawn:
        // the canonical crash loop.
        args: vec!["--definitely-not-a-flag".to_string()],
        retry: quick_retry(),
        breaker: BreakerPolicy {
            max_restarts: 3,
            stable_uptime: Duration::from_millis(200),
        },
    };
    let supervisor = service::Supervisor::spawn(spec).expect("spawn fleet");
    // With every child broken the monitor exits on its own — no stop().
    let report = supervisor.join();
    let child = &report.children[0];
    assert_eq!(child.status, ChildStatus::Broken, "{child:?}");
    assert_eq!(
        child.restarts,
        3 + 1,
        "the breaker allows max_restarts consecutive short-lived restarts \
         after the initial spawn, then opens"
    );
}
