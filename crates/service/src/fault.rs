//! Deterministic fault injection for the simulation service.
//!
//! A [`FaultPlan`] describes which faults to inject at which **submit
//! indices** — the 0-based order in which the daemon accepts `Submit`
//! requests (other verbs never consume a submit index). Two fault
//! kinds live in their own index spaces instead: `connect` counts
//! accepted TCP connections and `handshake` counts `Capabilities`
//! requests, so coordinator-side recovery (startup handshakes,
//! reprobe loops) is chaos-testable deterministically without
//! perturbing submit indices. Because the plan is pure data evaluated
//! against an index (probabilistic rules hash the plan seed with the
//! index, they never draw from shared mutable RNG state), a chaos
//! scenario is reproducible byte-for-byte: the same plan injects the
//! same fault set in every run, regardless of thread interleaving.
//!
//! # Spec grammar
//!
//! A plan is parsed from a compact spec string (CLI `--fault-plan`,
//! env `BFSIM_FAULT_PLAN`):
//!
//! ```text
//! spec      := directive ( ';' directive )*
//! directive := 'seed=' u64
//!            | ('panic' | 'drop' | 'corrupt' | 'connect' | 'handshake') '@' sel
//!            | 'delay' '@' sel '=' u64 ['ms']
//! sel       := index | start '..' end | 'p' float      (end exclusive)
//! ```
//!
//! Example: `seed=7;panic@2;drop@5;delay@9=150ms;corrupt@p0.05` panics
//! the worker executing submit #2, drops the connection carrying submit
//! #5's response, delays submit #9 by 150 ms inside its worker, and
//! corrupts ~5% of response frames (chosen deterministically from the
//! seed).
//!
//! # Fault kinds and where they bite
//!
//! | kind        | injection point                             | client sees            |
//! |-------------|---------------------------------------------|------------------------|
//! | `panic`     | worker thread, before the simulation runs   | retryable server error |
//! | `delay`     | worker thread, before the simulation runs   | slow response / timeout|
//! | `drop`      | connection handler, instead of the response | EOF / connection reset |
//! | `corrupt`   | connection handler, mangled response frame  | corrupt-frame error    |
//! | `connect`   | accept path, before any frame is read       | EOF / connection reset |
//! | `handshake` | `Capabilities` request                      | non-retryable error    |
//!
//! `panic` and `delay` act inside a worker, so they only apply to cache
//! misses (a hit never reaches the pool); `drop` and `corrupt` act on
//! the wire and apply to hits and misses alike. `connect` is indexed by
//! accepted-connection order and `handshake` by `Capabilities`-request
//! order — each has its own counter, so e.g. `connect@0;handshake@1..3`
//! kills the first connection and refuses the second and third
//! handshakes while leaving submit faults untouched.

use backfill_sim::canon::fnv1a_64;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which submit indices a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selector {
    /// Exactly this submit index.
    Index(u64),
    /// The half-open index range `[start, end)`.
    Range(u64, u64),
    /// Each index independently with this probability, decided by a
    /// deterministic hash of `(plan seed, rule position, index)`.
    Prob(f64),
}

impl Selector {
    /// Does this selector fire at `index`? `seed` and `salt` (the rule's
    /// position in the plan) only matter for probabilistic rules, which
    /// must be deterministic yet independent across rules.
    fn matches(&self, seed: u64, salt: u64, index: u64) -> bool {
        match *self {
            Selector::Index(i) => index == i,
            Selector::Range(start, end) => index >= start && index < end,
            Selector::Prob(p) => {
                let mut bytes = [0u8; 24];
                bytes[..8].copy_from_slice(&seed.to_le_bytes());
                bytes[8..16].copy_from_slice(&salt.to_le_bytes());
                bytes[16..].copy_from_slice(&index.to_le_bytes());
                let draw = fnv1a_64(&bytes) as f64 / u64::MAX as f64;
                draw < p
            }
        }
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Selector::Index(i) => write!(f, "{i}"),
            Selector::Range(a, b) => write!(f, "{a}..{b}"),
            Selector::Prob(p) => write!(f, "p{p}"),
        }
    }
}

/// What a fault rule injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Panic the worker thread executing the request (the pool survives;
    /// the requester gets a retryable error).
    Panic,
    /// Drop the TCP connection instead of writing the response.
    Drop,
    /// Write a deliberately undecodable response frame.
    Corrupt,
    /// Sleep this long in the worker before simulating (a slow worker).
    Delay(Duration),
    /// Close an accepted connection before reading anything (indexed by
    /// accepted-connection order, not submit order).
    ConnectDrop,
    /// Answer a `Capabilities` request with a non-retryable error
    /// (indexed by `Capabilities`-request order, not submit order).
    HandshakeRefuse,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Drop => write!(f, "drop"),
            FaultKind::Corrupt => write!(f, "corrupt"),
            FaultKind::Delay(_) => write!(f, "delay"),
            FaultKind::ConnectDrop => write!(f, "connect"),
            FaultKind::HandshakeRefuse => write!(f, "handshake"),
        }
    }
}

/// One directive of a plan: inject `kind` at the indices `sel` selects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Which submit indices it applies to.
    pub sel: Selector,
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Delay(d) => write!(f, "delay@{}={}ms", self.sel, d.as_millis()),
            kind => write!(f, "{kind}@{}", self.sel),
        }
    }
}

/// A seedable, deterministic chaos scenario: a seed plus fault rules.
///
/// Parse one with [`FaultPlan::parse`] and hand it to the server via
/// `ServiceConfig::fault_plan`; [`FaultPlan::actions`] answers "what
/// happens to submit #i" as a pure function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed feeding probabilistic selectors (exact-index rules ignore it).
    pub seed: u64,
    /// The fault directives, in spec order.
    pub rules: Vec<FaultRule>,
}

/// The faults that apply to one submit request, merged across rules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultActions {
    /// Panic the executing worker.
    pub panic: bool,
    /// Drop the connection instead of responding.
    pub drop: bool,
    /// Corrupt the response frame.
    pub corrupt: bool,
    /// Sleep in the worker before simulating (longest rule wins).
    pub delay: Option<Duration>,
}

impl FaultActions {
    /// True when no fault applies.
    pub fn is_none(&self) -> bool {
        *self == FaultActions::default()
    }
}

impl FaultPlan {
    /// Parse a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for raw in spec.split([';', ',']) {
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(seed) = part.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed {seed:?} (need a u64)"))?;
                continue;
            }
            let (kind_str, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("bad directive {part:?} (expected kind@selector)"))?;
            let (sel_str, kind) = match kind_str.trim() {
                "panic" => (rest, FaultKind::Panic),
                "drop" => (rest, FaultKind::Drop),
                "corrupt" => (rest, FaultKind::Corrupt),
                "connect" => (rest, FaultKind::ConnectDrop),
                "handshake" => (rest, FaultKind::HandshakeRefuse),
                "delay" => {
                    let (sel, ms) = rest.split_once('=').ok_or_else(|| {
                        format!("delay directive {part:?} needs '=MILLIS' after the selector")
                    })?;
                    let ms: u64 = ms
                        .trim()
                        .trim_end_matches("ms")
                        .parse()
                        .map_err(|_| format!("bad delay millis in {part:?}"))?;
                    (sel, FaultKind::Delay(Duration::from_millis(ms)))
                }
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} \
                         (panic | drop | corrupt | delay | connect | handshake)"
                    ))
                }
            };
            let sel = Self::parse_selector(sel_str.trim())?;
            plan.rules.push(FaultRule { kind, sel });
        }
        Ok(plan)
    }

    fn parse_selector(s: &str) -> Result<Selector, String> {
        if let Some(p) = s.strip_prefix('p') {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("bad probability {s:?} (pFLOAT)"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} out of [0, 1]"));
            }
            return Ok(Selector::Prob(p));
        }
        if let Some((a, b)) = s.split_once("..") {
            let start: u64 = a.parse().map_err(|_| format!("bad range start {a:?}"))?;
            let end: u64 = b.parse().map_err(|_| format!("bad range end {b:?}"))?;
            if end <= start {
                return Err(format!("empty range {s:?} (end must exceed start)"));
            }
            return Ok(Selector::Range(start, end));
        }
        s.parse()
            .map(Selector::Index)
            .map_err(|_| format!("bad selector {s:?} (index | start..end | pFLOAT)"))
    }

    /// The merged fault actions for submit `index`. Pure: equal
    /// `(plan, index)` always answer the same actions. Connection- and
    /// handshake-scoped rules never contribute here — they live in
    /// their own index spaces ([`FaultPlan::connect_drops`],
    /// [`FaultPlan::handshake_refuses`]).
    pub fn actions(&self, index: u64) -> FaultActions {
        let mut actions = FaultActions::default();
        for (salt, rule) in self.rules.iter().enumerate() {
            if !rule.sel.matches(self.seed, salt as u64, index) {
                continue;
            }
            match rule.kind {
                FaultKind::Panic => actions.panic = true,
                FaultKind::Drop => actions.drop = true,
                FaultKind::Corrupt => actions.corrupt = true,
                FaultKind::Delay(d) => {
                    actions.delay = Some(actions.delay.map_or(d, |prev| prev.max(d)))
                }
                FaultKind::ConnectDrop | FaultKind::HandshakeRefuse => {}
            }
        }
        actions
    }

    /// Should the `index`-th accepted connection be dropped at accept?
    /// Pure, like [`FaultPlan::actions`].
    pub fn connect_drops(&self, index: u64) -> bool {
        self.rules.iter().enumerate().any(|(salt, rule)| {
            rule.kind == FaultKind::ConnectDrop && rule.sel.matches(self.seed, salt as u64, index)
        })
    }

    /// Should the `index`-th `Capabilities` request be refused?
    pub fn handshake_refuses(&self, index: u64) -> bool {
        self.rules.iter().enumerate().any(|(salt, rule)| {
            rule.kind == FaultKind::HandshakeRefuse
                && rule.sel.matches(self.seed, salt as u64, index)
        })
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for rule in &self.rules {
            write!(f, ";{rule}")?;
        }
        Ok(())
    }
}

/// Shared per-daemon injection state: the plan plus one atomic counter
/// per index space — submits, accepted connections, and `Capabilities`
/// handshakes each count independently.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    next_index: AtomicU64,
    next_connect: AtomicU64,
    next_handshake: AtomicU64,
}

impl FaultInjector {
    /// Wrap a plan for use by a server.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            next_index: AtomicU64::new(0),
            next_connect: AtomicU64::new(0),
            next_handshake: AtomicU64::new(0),
        }
    }

    /// Claim the next submit index and answer its fault actions.
    pub fn next(&self) -> (u64, FaultActions) {
        let index = self.next_index.fetch_add(1, Ordering::SeqCst);
        (index, self.plan.actions(index))
    }

    /// Claim the next accepted-connection index; true = drop it.
    pub fn next_connect(&self) -> (u64, bool) {
        let index = self.next_connect.fetch_add(1, Ordering::SeqCst);
        (index, self.plan.connect_drops(index))
    }

    /// Claim the next `Capabilities`-request index; true = refuse it.
    pub fn next_handshake(&self) -> (u64, bool) {
        let index = self.next_handshake.fetch_add(1, Ordering::SeqCst);
        (index, self.plan.handshake_refuses(index))
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Submit indices assigned so far.
    pub fn assigned(&self) -> u64 {
        self.next_index.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec_and_round_trips_through_display() {
        let spec = "seed=7;panic@2;drop@5..8;delay@9=150ms;corrupt@p0.05";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(
            plan.rules[0],
            FaultRule {
                kind: FaultKind::Panic,
                sel: Selector::Index(2)
            }
        );
        assert_eq!(
            plan.rules[1],
            FaultRule {
                kind: FaultKind::Drop,
                sel: Selector::Range(5, 8)
            }
        );
        assert_eq!(
            plan.rules[2],
            FaultRule {
                kind: FaultKind::Delay(Duration::from_millis(150)),
                sel: Selector::Index(9)
            }
        );
        assert_eq!(
            plan.rules[3],
            FaultRule {
                kind: FaultKind::Corrupt,
                sel: Selector::Prob(0.05)
            }
        );
        // Display renders an equivalent spec; reparsing yields the same plan.
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "panic",           // no selector
            "explode@3",       // unknown kind
            "delay@3",         // missing millis
            "delay@3=fastms",  // unparseable millis
            "panic@p1.5",      // probability out of range
            "drop@5..5",       // empty range
            "seed=notanumber", // bad seed
            "panic@x",         // bad index
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn empty_and_whitespace_specs_inject_nothing() {
        for spec in ["", "  ", ";;", "seed=3"] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert!(plan.is_empty());
            assert!(plan.actions(0).is_none());
        }
    }

    #[test]
    fn exact_index_and_range_selectors_fire_where_specified() {
        let plan = FaultPlan::parse("panic@2;drop@4..6").unwrap();
        assert!(plan.actions(2).panic);
        assert!(!plan.actions(3).panic);
        assert!(!plan.actions(3).drop);
        assert!(plan.actions(4).drop && plan.actions(5).drop);
        assert!(!plan.actions(6).drop, "range end is exclusive");
    }

    #[test]
    fn merged_actions_combine_rules_and_keep_longest_delay() {
        let plan = FaultPlan::parse("panic@3;corrupt@3;delay@3=50;delay@0..10=20ms").unwrap();
        let a = plan.actions(3);
        assert!(a.panic && a.corrupt && !a.drop);
        assert_eq!(a.delay, Some(Duration::from_millis(50)));
        assert_eq!(plan.actions(4).delay, Some(Duration::from_millis(20)));
    }

    #[test]
    fn probabilistic_rules_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::parse("seed=1;panic@p0.3").unwrap();
        let b = FaultPlan::parse("seed=1;panic@p0.3").unwrap();
        let c = FaultPlan::parse("seed=2;panic@p0.3").unwrap();
        let fire = |plan: &FaultPlan| -> Vec<u64> {
            (0..200).filter(|&i| plan.actions(i).panic).collect()
        };
        assert_eq!(fire(&a), fire(&b), "same seed must fire identically");
        assert_ne!(fire(&a), fire(&c), "different seeds must differ");
        let hits = fire(&a).len();
        assert!(
            (30..90).contains(&hits),
            "p=0.3 over 200 indices fired {hits} times"
        );
    }

    #[test]
    fn injector_assigns_consecutive_indices() {
        let injector = FaultInjector::new(FaultPlan::parse("panic@1").unwrap());
        let (i0, a0) = injector.next();
        let (i1, a1) = injector.next();
        assert_eq!((i0, i1), (0, 1));
        assert!(!a0.panic && a1.panic);
        assert_eq!(injector.assigned(), 2);
    }

    #[test]
    fn connect_and_handshake_rules_parse_and_round_trip() {
        let plan = FaultPlan::parse("connect@0;handshake@1..3").unwrap();
        assert!(plan.connect_drops(0));
        assert!(!plan.connect_drops(1));
        assert!(!plan.handshake_refuses(0));
        assert!(plan.handshake_refuses(1) && plan.handshake_refuses(2));
        assert!(!plan.handshake_refuses(3), "range end is exclusive");
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn connection_scoped_rules_never_leak_into_submit_actions() {
        let plan = FaultPlan::parse("connect@0..100;handshake@0..100").unwrap();
        for i in 0..100 {
            assert!(plan.actions(i).is_none(), "submit {i} must see no fault");
        }
    }

    #[test]
    fn injector_counts_each_index_space_independently() {
        let injector = FaultInjector::new(FaultPlan::parse("connect@1;handshake@0").unwrap());
        // Submit indices advance without touching the other counters.
        let _ = injector.next();
        let _ = injector.next();
        assert_eq!(injector.next_connect(), (0, false));
        assert_eq!(injector.next_connect(), (1, true));
        assert_eq!(injector.next_handshake(), (0, true));
        assert_eq!(injector.next_handshake(), (1, false));
    }
}
