//! Bounded worker pool with backpressure, load shedding, and per-task
//! fault isolation.
//!
//! Tasks flow through a **bounded** crossbeam channel. The server sheds
//! load with [`WorkerPool::try_submit`]: when `queue_cap` tasks are
//! already waiting the task comes straight back as
//! [`SubmitError::Full`], and the caller answers `Busy` instead of
//! stalling its connection handler. The blocking [`WorkerPool::submit`]
//! remains for callers that prefer backpressure over shedding.
//!
//! Two fault boundaries protect the pool:
//!
//! * `backfill_sim::run_cell` catches panics **inside** a simulation, so
//!   a poisoned scenario produces an error result for its requester;
//! * the worker loop itself wraps each task in `catch_unwind`, so a
//!   panic **outside** the simulation (an injected worker fault, or a
//!   real bug in the pool path) kills neither the worker thread nor the
//!   daemon. The task's reply is deliberately *not* sent — the requester
//!   observes a crashed worker, exactly as if the thread had died — and
//!   `worker_panics` counts the event.

use crate::fault::FaultActions;
use crate::tracecache::TraceCache;
use backfill_sim::{run_cell_observed_on, run_cell_on, CellError, RunConfig, Schedule, SimOptions};
use crossbeam::channel::{self, Sender, TrySendError};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of work: a config plus the channel its result goes back on.
pub struct Task {
    /// The scenario to simulate.
    pub config: RunConfig,
    /// Where the worker sends the outcome (the submitting handler blocks
    /// on the paired receiver).
    pub reply: mpsc::Sender<TaskResult>,
    /// Injected faults to apply while executing this task (delay, then
    /// panic, both ahead of the simulation). `FaultActions::default()`
    /// for normal operation; only `panic` and `delay` are interpreted
    /// here — the wire-level kinds belong to the connection handler.
    pub fault: FaultActions,
    /// Distributed-trace parent for this task's spans, when the submit
    /// carried one. The worker records `pool.wait` (queue time) and
    /// `pool.run` (simulation) spans under it and runs the simulation
    /// with per-phase profiling.
    pub trace: Option<obs::SpanContext>,
    /// When the connection handler accepted the task; the `pool.wait`
    /// span is the gap between this and worker pickup.
    pub accepted: Instant,
}

/// What a worker produced for one task.
pub struct TaskResult {
    /// The schedule, or the isolated panic.
    pub outcome: Result<Schedule, CellError>,
    /// Time the worker spent simulating (excludes queue wait).
    pub run_wall: Duration,
    /// Per-phase simulator timings, collected only for traced tasks; the
    /// handler flushes them into the daemon's registry histograms.
    pub phases: Option<Box<obs::PhaseAcc>>,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

/// Why [`WorkerPool::try_submit`] handed a task back.
pub enum SubmitError {
    /// The queue is at capacity; shed the request (the task is returned
    /// so the caller can report which config was refused).
    Full(Task),
    /// The pool has shut down.
    Closed(Task),
}

// Task holds a reply channel (not Debug), so render the variant alone.
impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "SubmitError::Full(..)"),
            SubmitError::Closed(_) => write!(f, "SubmitError::Closed(..)"),
        }
    }
}

/// A fixed-size pool of simulation workers fed by a bounded queue.
pub struct WorkerPool {
    tx: Mutex<Option<Sender<Task>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    queued: Arc<AtomicUsize>,
    in_flight: Arc<AtomicUsize>,
    panics: Arc<AtomicUsize>,
    traces: Arc<TraceCache>,
}

impl WorkerPool {
    /// Spawn `workers` threads behind a queue of at most `queue_cap`
    /// waiting tasks, sharing a default-capacity [`TraceCache`]. Both
    /// sizes must be at least 1.
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        Self::with_trace_cache(workers, queue_cap, Arc::new(TraceCache::new()))
    }

    /// Like [`Self::new`], sharing the caller's trace cache — the daemon
    /// hands in the cache whose counters it has bound to its registry.
    pub fn with_trace_cache(workers: usize, queue_cap: usize, traces: Arc<TraceCache>) -> Self {
        assert!(workers >= 1, "pool needs at least one worker");
        let (tx, rx) = channel::bounded::<Task>(queue_cap);
        let queued = Arc::new(AtomicUsize::new(0));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let panics = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let queued = queued.clone();
                let in_flight = in_flight.clone();
                let panics = panics.clone();
                let traces = traces.clone();
                std::thread::spawn(move || {
                    while let Ok(task) = rx.recv() {
                        queued.fetch_sub(1, Ordering::SeqCst);
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        // The outer catch_unwind is the pool's own crash
                        // boundary: injected worker panics (and any real
                        // bug outside the simulation boundary) land here,
                        // not on the thread.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            // The queue-wait span closes at pickup, before
                            // any injected fault stretches the timeline.
                            if let Some(ctx) = task.trace {
                                let wait_us = task.accepted.elapsed().as_micros() as u64;
                                obs::span::record_raw(obs::SpanRecord {
                                    trace_id: ctx.trace_id,
                                    span_id: obs::span::next_span_id(),
                                    parent_id: ctx.span_id,
                                    name: "pool.wait".into(),
                                    start_us: obs::span::now_micros().saturating_sub(wait_us),
                                    dur_us: wait_us,
                                });
                            }
                            if let Some(delay) = task.fault.delay {
                                std::thread::sleep(delay);
                            }
                            if task.fault.panic {
                                panic!("injected worker panic (fault plan)");
                            }
                            let started = Instant::now();
                            let run_span = task.trace.map(|ctx| obs::Span::child(ctx, "pool.run"));
                            // Traced tasks run with per-phase profiling;
                            // the sampled phase spans parent under the
                            // pool.run span. Untraced tasks keep the plain
                            // (zero-overhead) path.
                            let phase_acc = task.trace.map(|_| {
                                let acc =
                                    std::rc::Rc::new(std::cell::RefCell::new(obs::PhaseAcc::new()));
                                if let Some(ctx) = run_span.as_ref().and_then(|s| s.ctx()) {
                                    acc.borrow_mut().set_ctx(ctx);
                                }
                                acc
                            });
                            // Trace sharing: tasks over the same scenario
                            // reuse one materialized trace. Both halves —
                            // materialization and simulation — keep
                            // run_cell's per-task fault isolation.
                            let outcome = match traces.get_or_materialize(&task.config.scenario) {
                                Ok(trace) => match &phase_acc {
                                    Some(acc) => run_cell_observed_on(
                                        &task.config,
                                        &trace,
                                        SimOptions::with_phases(acc.clone()),
                                    ),
                                    None => run_cell_on(&task.config, &trace),
                                },
                                Err(panic) => Err(CellError {
                                    config: task.config,
                                    panic,
                                }),
                            };
                            drop(run_span); // records the span's end
                            obs::span::flush_thread();
                            let phases = phase_acc
                                .and_then(|acc| std::rc::Rc::try_unwrap(acc).ok())
                                .map(|cell| Box::new(cell.into_inner()));
                            TaskResult {
                                outcome,
                                run_wall: started.elapsed(),
                                phases,
                            }
                        }));
                        // Stop counting the task as in-flight BEFORE the
                        // reply becomes observable: the handler bumps
                        // `completed` as soon as it receives the result,
                        // and decrementing afterwards would open a window
                        // where the task is counted both completed and
                        // in-flight (submitted ≥ completed + in_flight
                        // would read as violated).
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        match result {
                            // The requester may have vanished (connection
                            // dropped); the result is then discarded.
                            Ok(result) => {
                                let _ = task.reply.send(result);
                            }
                            // Crashed worker: drop the reply sender
                            // without sending, so the requester's recv
                            // fails — indistinguishable from the thread
                            // dying, but the pool stays at full strength.
                            Err(_) => {
                                panics.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            queued,
            in_flight,
            panics,
            traces,
        }
    }

    /// The scenario-keyed trace cache shared by the workers.
    pub fn trace_cache(&self) -> &TraceCache {
        &self.traces
    }

    /// Queue a task, blocking while the queue is at capacity
    /// (backpressure). Fails once [`Self::shutdown`] has run.
    pub fn submit(&self, task: Task) -> Result<(), PoolClosed> {
        // Clone the sender out of the lock so a blocked send doesn't
        // serialize every other submitter behind this one.
        let tx = match self.tx.lock().as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(PoolClosed),
        };
        self.queued.fetch_add(1, Ordering::SeqCst);
        match tx.send(task) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                Err(PoolClosed)
            }
        }
    }

    /// Queue a task without blocking: a full queue hands the task back
    /// as [`SubmitError::Full`] so the caller can shed the request with
    /// an explicit busy signal instead of stalling.
    // Returning the whole Task in the error IS the API: the caller gets
    // its request back on a shed instead of losing it, so boxing to
    // shrink the Err variant would just trade size for an allocation on
    // the overload path.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, task: Task) -> Result<(), SubmitError> {
        let tx = match self.tx.lock().as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(SubmitError::Closed(task)),
        };
        self.queued.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(task) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(task)) => {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                Err(SubmitError::Full(task))
            }
            Err(TrySendError::Disconnected(task)) => {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                Err(SubmitError::Closed(task))
            }
        }
    }

    /// Tasks accepted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// Tasks currently being simulated.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Tasks whose worker panicked outside the simulation boundary
    /// (injected faults and pool-path bugs); their replies were never
    /// sent.
    pub fn worker_panics(&self) -> usize {
        self.panics.load(Ordering::SeqCst)
    }

    /// Close the queue and wait for the workers to finish everything
    /// already accepted. After this, [`Self::submit`] fails fast; tasks
    /// that were queued before the close still run and still reply.
    pub fn shutdown(&self) {
        drop(self.tx.lock().take());
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfill_sim::{Scenario, SchedulerKind, TraceSource};
    use sched::Policy;

    fn config(seed: u64, load: f64) -> RunConfig {
        RunConfig {
            scenario: Scenario {
                source: TraceSource::Ctc { jobs: 80, seed },
                estimate: workload::EstimateModel::Exact,
                estimate_seed: 1,
                load: Some(load),
            },
            kind: SchedulerKind::Easy,
            policy: Policy::Fcfs,
        }
    }

    fn task(config: RunConfig, reply: mpsc::Sender<TaskResult>) -> Task {
        Task {
            config,
            reply,
            fault: FaultActions::default(),
            trace: None,
            accepted: Instant::now(),
        }
    }

    #[test]
    fn executes_and_replies() {
        let pool = WorkerPool::new(2, 4);
        let (reply, results) = mpsc::channel();
        for seed in 0..6u64 {
            pool.submit(task(config(seed, 0.9), reply.clone())).unwrap();
        }
        drop(reply);
        let mut seen = 0;
        while let Ok(result) = results.recv() {
            assert!(result.outcome.is_ok());
            seen += 1;
        }
        assert_eq!(seen, 6);
        pool.shutdown();
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.worker_panics(), 0);
    }

    #[test]
    fn tasks_over_one_scenario_share_a_trace() {
        let pool = WorkerPool::new(2, 8);
        let (reply, results) = mpsc::channel();
        // Six tasks, two distinct scenarios: the cache must materialize
        // exactly two traces, everything else hits.
        for i in 0..6u64 {
            pool.submit(task(config(i % 2, 0.9), reply.clone()))
                .unwrap();
        }
        drop(reply);
        while results.recv().is_ok() {}
        let (hits, misses, entries, evictions) = pool.trace_cache().stats();
        assert_eq!(hits + misses, 6);
        assert_eq!(entries, 2);
        assert_eq!(evictions, 0);
        // Workers may race the first materialization of each scenario,
        // so misses can exceed 2 — but never the task count, and with
        // two scenarios at least four lookups land after a publish
        // barrier in the common unraced run.
        assert!(misses >= 2, "two scenarios need two materializations");
    }

    #[test]
    fn poisoned_task_is_isolated() {
        let pool = WorkerPool::new(1, 2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // expected panic below
        let (reply, results) = mpsc::channel();
        pool.submit(task(config(1, -1.0), reply.clone())).unwrap(); // negative load panics in scale_to_load
        pool.submit(task(config(2, 0.9), reply)).unwrap();
        let first = results.recv().unwrap();
        let second = results.recv().unwrap();
        std::panic::set_hook(hook);
        let err = first.outcome.expect_err("poisoned task must fail");
        assert!(err.panic.contains("target load must be positive"));
        assert!(second.outcome.is_ok(), "healthy task after a poisoned one");
        // The panic was inside run_cell's boundary, not the worker's.
        assert_eq!(pool.worker_panics(), 0);
    }

    #[test]
    fn injected_worker_panic_drops_reply_but_pool_survives() {
        let pool = WorkerPool::new(1, 2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // expected panic below
        let (crash_reply, crash_results) = mpsc::channel();
        pool.submit(Task {
            config: config(1, 0.9),
            reply: crash_reply,
            fault: FaultActions {
                panic: true,
                ..FaultActions::default()
            },
            trace: None,
            accepted: Instant::now(),
        })
        .unwrap();
        // The crashed task's reply channel closes without a result.
        assert!(
            crash_results.recv().is_err(),
            "crashed worker must not reply"
        );
        // The same (sole) worker thread still serves the next task.
        let (reply, results) = mpsc::channel();
        pool.submit(task(config(2, 0.9), reply)).unwrap();
        let healthy = results.recv().unwrap();
        std::panic::set_hook(hook);
        assert!(healthy.outcome.is_ok());
        assert_eq!(pool.worker_panics(), 1);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn injected_delay_slows_the_task() {
        let pool = WorkerPool::new(1, 1);
        let (reply, results) = mpsc::channel();
        let started = Instant::now();
        pool.submit(Task {
            config: config(1, 0.9),
            reply,
            fault: FaultActions {
                delay: Some(Duration::from_millis(80)),
                ..FaultActions::default()
            },
            trace: None,
            accepted: Instant::now(),
        })
        .unwrap();
        assert!(results.recv().unwrap().outcome.is_ok());
        assert!(
            started.elapsed() >= Duration::from_millis(80),
            "delay fault must slow the worker"
        );
    }

    #[test]
    fn submit_fails_after_shutdown() {
        let pool = WorkerPool::new(1, 1);
        pool.shutdown();
        let (reply, _results) = mpsc::channel();
        let refused = pool.submit(task(config(1, 0.9), reply.clone()));
        assert_eq!(refused, Err(PoolClosed));
        assert!(matches!(
            pool.try_submit(task(config(1, 0.9), reply)),
            Err(SubmitError::Closed(_))
        ));
    }

    #[test]
    fn try_submit_sheds_when_queue_is_full() {
        // One worker pinned by a delayed task, capacity-1 queue: the
        // first try_submit fills the queue, the second must shed.
        let pool = WorkerPool::new(1, 1);
        let (reply, results) = mpsc::channel();
        pool.submit(Task {
            config: config(0, 0.9),
            reply: reply.clone(),
            fault: FaultActions {
                delay: Some(Duration::from_millis(150)),
                ..FaultActions::default()
            },
            trace: None,
            accepted: Instant::now(),
        })
        .unwrap();
        // Wait until the worker holds the delayed task, leaving the
        // queue empty; then fill it and overflow it.
        while pool.in_flight() == 0 {
            std::thread::yield_now();
        }
        pool.try_submit(task(config(1, 0.9), reply.clone()))
            .expect("queue has a free slot");
        let shed = pool.try_submit(task(config(2, 0.9), reply.clone()));
        match shed {
            Err(SubmitError::Full(t)) => assert_eq!(t.config, config(2, 0.9)),
            other => panic!("expected Full, got {:?}", other.map(|_| ())),
        }
        drop(reply);
        let mut seen = 0;
        while results.recv().is_ok() {
            seen += 1;
        }
        assert_eq!(seen, 2, "accepted tasks still complete");
    }

    #[test]
    fn queue_is_bounded() {
        // One worker pinned on a task, capacity-1 queue: the 3rd submit
        // must block until the worker frees a slot — observable as the
        // submitting thread not finishing early.
        let pool = WorkerPool::new(1, 1);
        let (reply, results) = mpsc::channel();
        let blocked = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let pool = &pool;
            let blocked = &blocked;
            let reply2 = reply.clone();
            scope.spawn(move || {
                for seed in 0..3u64 {
                    pool.submit(task(config(seed, 0.9), reply2.clone()))
                        .unwrap();
                    blocked.store(seed as usize + 1, Ordering::SeqCst);
                }
            });
            // All three tasks complete regardless; the pool stays FIFO.
            drop(reply);
            let mut seen = 0;
            while results.recv().is_ok() {
                seen += 1;
            }
            assert_eq!(seen, 3);
            assert_eq!(blocked.load(Ordering::SeqCst), 3);
        });
    }
}
