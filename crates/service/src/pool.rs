//! Bounded worker pool with backpressure and per-task fault isolation.
//!
//! Tasks flow through a **bounded** crossbeam channel: once `queue_cap`
//! tasks are waiting, `submit` blocks the calling connection handler,
//! which in turn stops reading that client's socket — backpressure
//! propagates to the TCP stream instead of letting an aggressive client
//! queue unbounded work in daemon memory. Each task runs under
//! `backfill_sim::run_cell`'s `catch_unwind` boundary, so a poisoned
//! scenario produces an error result for its requester and nothing else.

use backfill_sim::{run_cell, CellError, RunConfig, Schedule};
use crossbeam::channel::{self, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of work: a config plus the channel its result goes back on.
pub struct Task {
    /// The scenario to simulate.
    pub config: RunConfig,
    /// Where the worker sends the outcome (the submitting handler blocks
    /// on the paired receiver).
    pub reply: mpsc::Sender<TaskResult>,
}

/// What a worker produced for one task.
pub struct TaskResult {
    /// The schedule, or the isolated panic.
    pub outcome: Result<Schedule, CellError>,
    /// Time the worker spent simulating (excludes queue wait).
    pub run_wall: Duration,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

/// A fixed-size pool of simulation workers fed by a bounded queue.
pub struct WorkerPool {
    tx: Mutex<Option<Sender<Task>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    queued: Arc<AtomicUsize>,
    in_flight: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Spawn `workers` threads behind a queue of at most `queue_cap`
    /// waiting tasks. Both must be at least 1.
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        assert!(workers >= 1, "pool needs at least one worker");
        let (tx, rx) = channel::bounded::<Task>(queue_cap);
        let queued = Arc::new(AtomicUsize::new(0));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let queued = queued.clone();
                let in_flight = in_flight.clone();
                std::thread::spawn(move || {
                    while let Ok(task) = rx.recv() {
                        queued.fetch_sub(1, Ordering::SeqCst);
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        let started = Instant::now();
                        let outcome = run_cell(&task.config);
                        let result = TaskResult {
                            outcome,
                            run_wall: started.elapsed(),
                        };
                        // Stop counting the task as in-flight BEFORE the
                        // reply becomes observable: the handler bumps
                        // `completed` as soon as it receives the result,
                        // and decrementing afterwards would open a window
                        // where the task is counted both completed and
                        // in-flight (submitted ≥ completed + in_flight
                        // would read as violated).
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        // The requester may have vanished (connection
                        // dropped); the result is then simply discarded.
                        let _ = task.reply.send(result);
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            queued,
            in_flight,
        }
    }

    /// Queue a task, blocking while the queue is at capacity
    /// (backpressure). Fails once [`Self::shutdown`] has run.
    pub fn submit(&self, task: Task) -> Result<(), PoolClosed> {
        // Clone the sender out of the lock so a blocked send doesn't
        // serialize every other submitter behind this one.
        let tx = match self.tx.lock().as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(PoolClosed),
        };
        self.queued.fetch_add(1, Ordering::SeqCst);
        match tx.send(task) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                Err(PoolClosed)
            }
        }
    }

    /// Tasks accepted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// Tasks currently being simulated.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Close the queue and wait for the workers to finish everything
    /// already accepted. After this, [`Self::submit`] fails fast; tasks
    /// that were queued before the close still run and still reply.
    pub fn shutdown(&self) {
        drop(self.tx.lock().take());
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfill_sim::{Scenario, SchedulerKind, TraceSource};
    use sched::Policy;

    fn config(seed: u64, load: f64) -> RunConfig {
        RunConfig {
            scenario: Scenario {
                source: TraceSource::Ctc { jobs: 80, seed },
                estimate: workload::EstimateModel::Exact,
                estimate_seed: 1,
                load: Some(load),
            },
            kind: SchedulerKind::Easy,
            policy: Policy::Fcfs,
        }
    }

    #[test]
    fn executes_and_replies() {
        let pool = WorkerPool::new(2, 4);
        let (reply, results) = mpsc::channel();
        for seed in 0..6u64 {
            pool.submit(Task {
                config: config(seed, 0.9),
                reply: reply.clone(),
            })
            .unwrap();
        }
        drop(reply);
        let mut seen = 0;
        while let Ok(result) = results.recv() {
            assert!(result.outcome.is_ok());
            seen += 1;
        }
        assert_eq!(seen, 6);
        pool.shutdown();
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn poisoned_task_is_isolated() {
        let pool = WorkerPool::new(1, 2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // expected panic below
        let (reply, results) = mpsc::channel();
        pool.submit(Task {
            config: config(1, -1.0), // negative load panics in scale_to_load
            reply: reply.clone(),
        })
        .unwrap();
        pool.submit(Task {
            config: config(2, 0.9),
            reply,
        })
        .unwrap();
        let first = results.recv().unwrap();
        let second = results.recv().unwrap();
        std::panic::set_hook(hook);
        let err = first.outcome.expect_err("poisoned task must fail");
        assert!(err.panic.contains("target load must be positive"));
        assert!(second.outcome.is_ok(), "healthy task after a poisoned one");
    }

    #[test]
    fn submit_fails_after_shutdown() {
        let pool = WorkerPool::new(1, 1);
        pool.shutdown();
        let (reply, _results) = mpsc::channel();
        let refused = pool.submit(Task {
            config: config(1, 0.9),
            reply,
        });
        assert_eq!(refused, Err(PoolClosed));
    }

    #[test]
    fn queue_is_bounded() {
        // One worker pinned on a task, capacity-1 queue: the 3rd submit
        // must block until the worker frees a slot — observable as the
        // submitting thread not finishing early.
        let pool = WorkerPool::new(1, 1);
        let (reply, results) = mpsc::channel();
        let blocked = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let pool = &pool;
            let blocked = &blocked;
            let reply2 = reply.clone();
            scope.spawn(move || {
                for seed in 0..3u64 {
                    pool.submit(Task {
                        config: config(seed, 0.9),
                        reply: reply2.clone(),
                    })
                    .unwrap();
                    blocked.store(seed as usize + 1, Ordering::SeqCst);
                }
            });
            // All three tasks complete regardless; the pool stays FIFO.
            drop(reply);
            let mut seen = 0;
            while results.recv().is_ok() {
                seen += 1;
            }
            assert_eq!(seen, 3);
            assert_eq!(blocked.load(Ordering::SeqCst), 3);
        });
    }
}
