//! The `bfsimd` wire protocol: JSON-lines over TCP.
//!
//! Grammar: each request is one JSON object on one `\n`-terminated line;
//! the daemon answers every request line with exactly one response line,
//! in order, on the same connection. Types are plain serde data shared
//! with the rest of the workspace, so a scenario written for the CLI
//! (`RunConfig`) is submitted to the service verbatim.

use backfill_sim::{RunConfig, Schedule};
use metrics::{capacity_report, fairness, CapacityReport, FairnessReport, ScheduleStats};
use sched::ProfileStats;
use serde::{Deserialize, Serialize};
use workload::CategoryCriteria;

/// A client request: one per line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Simulate one scenario (or fetch its memoized report).
    Submit {
        /// The full run configuration; also the cache key (canonicalized).
        config: RunConfig,
    },
    /// Introspect the daemon: queue depth, in-flight, cache, wall times.
    Stats,
    /// Fetch the daemon's full metrics registry as one canonical-JSON
    /// document (scheduler, profile-index, queue, pool, and cache
    /// metrics under their dotted names — see DESIGN.md §12).
    Metrics,
    /// Probe liveness and readiness: answered with
    /// [`Response::Health`] even while draining, so an operator can
    /// always tell a slow daemon from a dead one.
    Health,
    /// Handshake: report the daemon's sizing and protocol revision so a
    /// sweep coordinator can size its per-shard in-flight windows
    /// before dispatching any work. Answered with
    /// [`Response::Capabilities`].
    Capabilities,
    /// Stop accepting new `Submit`s but **stay alive**: in-flight work
    /// completes, and `Stats`/`Metrics`/`Health`/`Capabilities` keep
    /// answering so a coordinator can still harvest the shard's final
    /// counters. Unlike [`Request::Shutdown`] the daemon does not exit.
    /// Acknowledged with [`Response::Draining`]; refused submits answer
    /// [`Response::ShuttingDown`], which resilient clients already
    /// treat as "send this work elsewhere".
    Drain,
    /// Begin graceful shutdown: stop taking new work, drain in-flight
    /// requests, then exit.
    Shutdown,
}

/// The daemon's answer: one per request line, in order.
// Run carries the full ~1 KB report by value: a Response exists only to
// be serialized onto the wire immediately, so the size gap between Run
// and ShuttingDown never sits in memory long enough to matter.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// A completed (or cache-served) simulation.
    Run(RunReply),
    /// The daemon's current counters.
    Stats(ServiceStats),
    /// The daemon's metrics registry snapshot, answering
    /// [`Request::Metrics`].
    Metrics {
        /// Canonical JSON: sorted keys, integer values, no whitespace —
        /// byte-identical for identical registry states.
        json: String,
    },
    /// The daemon's readiness probe, answering [`Request::Health`].
    Health(HealthReport),
    /// The daemon's sizing handshake, answering
    /// [`Request::Capabilities`].
    Capabilities(Capabilities),
    /// Acknowledges [`Request::Drain`]: the daemon refuses new submits
    /// from here on but stays alive for introspection verbs.
    Draining,
    /// The bounded work queue is full and the daemon shed this request
    /// rather than block the connection. The submission had **no
    /// effect** (nothing queued, nothing cached): resubmitting the same
    /// config later is safe and idempotent, which is what lets clients
    /// retry `Busy` with backoff.
    Busy,
    /// The request failed; the daemon itself is still healthy. Carries
    /// the offending config's canonical hash when the failure was a
    /// simulation panic (fault isolation), zero for malformed requests.
    Error {
        /// Human-readable cause.
        message: String,
        /// Content hash of the config at fault, 0 if not applicable.
        config_hash: u64,
        /// True when retrying the identical request may succeed (e.g. a
        /// crashed worker); false for deterministic failures (a
        /// poisoned scenario, a malformed or oversized request).
        /// Defaults to false so pre-fault-layer daemons parse as
        /// non-retryable.
        #[serde(default)]
        retryable: bool,
    },
    /// The daemon is draining and takes no new work (also the
    /// acknowledgement of [`Request::Shutdown`] itself).
    ShuttingDown,
}

/// Liveness/readiness snapshot, answering [`Request::Health`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// True when the daemon accepts new submissions (not draining).
    pub ready: bool,
    /// True once graceful shutdown has begun.
    pub draining: bool,
    /// Configured worker-thread count.
    pub workers: u64,
    /// Configured bounded-queue capacity.
    pub queue_cap: u64,
    /// Tasks waiting in the queue right now.
    pub queue_depth: u64,
    /// Tasks being simulated right now.
    pub in_flight: u64,
    /// Submissions shed with [`Response::Busy`] so far.
    pub shed: u64,
    /// Worker panics outside the simulation boundary so far (injected
    /// faults and pool-path bugs).
    pub worker_panics: u64,
    /// Entries currently memoized in the result cache.
    pub cache_entries: u64,
    /// Cache-journal state, when a journal is configured.
    #[serde(default)]
    pub journal: Option<JournalHealth>,
    /// The active fault plan's spec string, when fault injection is on.
    /// `None` in normal operation.
    #[serde(default)]
    pub fault_plan: Option<String>,
}

/// Cache-journal state inside a [`HealthReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JournalHealth {
    /// Journal file path.
    pub path: String,
    /// Entries replayed into the cache at startup.
    pub replayed: u64,
    /// Entries appended since startup.
    pub appended: u64,
    /// True when startup replay found and truncated a torn tail.
    pub truncated: bool,
    /// Torn-tail bytes dropped by the startup truncation (0 for a clean
    /// file). Defaults so pre-coordinator health reports still parse.
    #[serde(default)]
    pub dropped_bytes: u64,
}

/// The daemon's sizing handshake, answering [`Request::Capabilities`].
///
/// A sweep coordinator uses this to size its bounded in-flight window
/// per shard (one outstanding submit per daemon worker keeps the pool
/// busy without tripping `Busy` shedding) and to refuse incompatible
/// daemons up front instead of mid-sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Protocol revision this daemon speaks. Bumped when a verb is
    /// added or changes meaning; coordinators require at least the
    /// revision they were built against.
    pub proto: u32,
    /// Simulation worker threads (the natural in-flight window).
    pub workers: u64,
    /// Bounded work-queue capacity (submits past `workers + queue_cap`
    /// would be shed with `Busy`).
    pub queue_cap: u64,
    /// Largest accepted request frame in bytes.
    pub max_frame: u64,
    /// Entries currently memoized in the result cache.
    pub cache_entries: u64,
    /// True when the cache is journaled (survives a crash).
    pub journaled: bool,
    /// True when the daemon refuses new submits (draining or drained).
    pub draining: bool,
}

/// The protocol revision this build speaks (see [`Capabilities::proto`]).
pub const PROTO_VERSION: u32 = 2;

/// A successful submit: the report plus cache provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReply {
    /// Stable content hash of the canonical config (the cache label).
    pub config_hash: u64,
    /// True when the report was served from the result cache. The
    /// `report` payload is byte-identical either way — only this marker
    /// (and `wall_ms`) distinguish a hit from a fresh run.
    pub cached: bool,
    /// Wall time the daemon spent serving this request, in milliseconds
    /// (queue wait + simulation for a miss; lookup only for a hit).
    pub wall_ms: u64,
    /// The simulation report.
    pub report: RunReport,
}

/// Everything the service reports about one completed run. A pure
/// function of the schedule, so a report computed daemon-side equals one
/// computed by the caller from a direct `run_all` — asserted by the
/// service integration tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Config label, e.g. `"CTC EASY/SJF"`.
    pub label: String,
    /// Machine size the schedule ran on.
    pub nodes: u32,
    /// Number of jobs simulated.
    pub jobs: usize,
    /// Schedule fingerprint (FNV over job start assignments) — two runs
    /// are behaviourally identical iff these match.
    pub fingerprint: u64,
    /// The paper's aggregate statistics (overall + per category/quality).
    pub stats: ScheduleStats,
    /// Fairness summary (slowdown Gini, max-stretch, overtake rate).
    pub fairness: FairnessReport,
    /// Capacity breakdown (utilized / blameless idle / loss of capacity).
    pub capacity: CapacityReport,
    /// Availability-profile operation counters, if the scheduler keeps a
    /// profile.
    pub profile: Option<ProfileStats>,
    /// Discrete events the driver delivered over the run.
    pub events: u64,
}

impl RunReport {
    /// Build the report for one completed schedule. Deterministic: equal
    /// `(config, schedule)` pairs produce byte-identical serialized
    /// reports.
    pub fn from_schedule(config: &RunConfig, schedule: &Schedule) -> Self {
        RunReport {
            label: config.label(),
            nodes: schedule.nodes,
            jobs: schedule.outcomes.len(),
            fingerprint: schedule.fingerprint(),
            stats: schedule.stats(&CategoryCriteria::default()),
            fairness: fairness(&schedule.outcomes),
            capacity: capacity_report(&schedule.outcomes, schedule.nodes),
            profile: schedule.profile_stats,
            events: schedule.events,
        }
    }
}

/// Daemon introspection counters, returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Submit requests accepted so far (hits + misses + failures).
    pub submitted: u64,
    /// Submit requests answered with a report.
    pub completed: u64,
    /// Submit requests that failed inside the simulation (isolated
    /// panics) or were malformed.
    pub failed: u64,
    /// Submit requests refused because the daemon was draining.
    pub rejected: u64,
    /// Submit requests shed with [`Response::Busy`] because the bounded
    /// queue was full. Defaults so pre-fault-layer stats still parse.
    #[serde(default)]
    pub shed: u64,
    /// Worker panics outside the simulation boundary (injected faults
    /// and pool-path bugs); each one failed its request.
    #[serde(default)]
    pub worker_panics: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Entries currently memoized.
    pub cache_entries: u64,
    /// Entries evicted to stay under the configured cache cap (LRU).
    pub cache_evictions: u64,
    /// Tasks waiting in the bounded work queue right now.
    pub queue_depth: u64,
    /// Tasks being simulated by workers right now.
    pub in_flight: u64,
    /// True once graceful shutdown has begun.
    pub draining: bool,
    /// Total wall milliseconds across all timed submit requests.
    pub wall_ms_total: u64,
    /// Largest single-request wall time in milliseconds.
    pub wall_ms_max: u64,
}

impl ServiceStats {
    /// Mean per-request wall time in milliseconds (0 when nothing ran).
    pub fn wall_ms_mean(&self) -> f64 {
        let timed = self.completed + self.failed;
        if timed == 0 {
            0.0
        } else {
            self.wall_ms_total as f64 / timed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfill_sim::{Scenario, SchedulerKind, TraceSource};
    use sched::Policy;

    fn config() -> RunConfig {
        RunConfig {
            scenario: Scenario::high_load(TraceSource::Ctc { jobs: 80, seed: 3 }),
            kind: SchedulerKind::Easy,
            policy: Policy::Sjf,
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Submit { config: config() },
            Request::Stats,
            Request::Metrics,
            Request::Health,
            Request::Capabilities,
            Request::Drain,
            Request::Shutdown,
        ] {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'), "requests must fit one line");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                line,
                "round-trip changed the encoding"
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        let cfg = config();
        let schedule = cfg.run();
        let reply = Response::Run(RunReply {
            config_hash: cfg.content_hash(),
            cached: false,
            wall_ms: 12,
            report: RunReport::from_schedule(&cfg, &schedule),
        });
        for resp in [
            reply,
            Response::Stats(ServiceStats::default()),
            Response::Metrics {
                json: r#"{"counters":{"service.submitted":1}}"#.into(),
            },
            Response::Health(HealthReport {
                ready: true,
                workers: 4,
                queue_cap: 8,
                journal: Some(JournalHealth {
                    path: "/tmp/j.jsonl".into(),
                    replayed: 3,
                    appended: 1,
                    truncated: true,
                    dropped_bytes: 117,
                }),
                fault_plan: Some("seed=7;panic@3".into()),
                ..HealthReport::default()
            }),
            Response::Capabilities(Capabilities {
                proto: PROTO_VERSION,
                workers: 4,
                queue_cap: 8,
                max_frame: 1 << 20,
                cache_entries: 12,
                journaled: true,
                draining: false,
            }),
            Response::Draining,
            Response::Busy,
            Response::Error {
                message: "boom".into(),
                config_hash: 7,
                retryable: true,
            },
            Response::ShuttingDown,
        ] {
            let line = serde_json::to_string(&resp).unwrap();
            assert!(!line.contains('\n'));
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(serde_json::to_string(&back).unwrap(), line);
        }
    }

    #[test]
    fn pre_fault_layer_encodings_still_parse() {
        // Older daemons/reports omit the fields this layer added; serde
        // defaults must fill them in rather than reject the document.
        let err: Response =
            serde_json::from_str(r#"{"Error":{"message":"boom","config_hash":7}}"#).unwrap();
        match err {
            Response::Error { retryable, .. } => assert!(!retryable, "default is non-retryable"),
            other => panic!("parsed as {other:?}"),
        }
        let stats: ServiceStats = serde_json::from_str(
            r#"{"submitted":4,"completed":4,"failed":0,"rejected":0,"cache_hits":0,"cache_misses":4,"cache_entries":4,"cache_evictions":0,"queue_depth":0,"in_flight":0,"draining":false,"wall_ms_total":9,"wall_ms_max":5}"#,
        )
        .unwrap();
        assert_eq!((stats.shed, stats.worker_panics), (0, 0));
        assert_eq!(stats.submitted, 4);
        // Pre-coordinator journal health (no dropped_bytes) still parses.
        let journal: JournalHealth = serde_json::from_str(
            r#"{"path":"/tmp/j.jsonl","replayed":3,"appended":1,"truncated":true}"#,
        )
        .unwrap();
        assert_eq!(journal.dropped_bytes, 0, "default fills the new field");
    }

    #[test]
    fn report_is_deterministic() {
        let cfg = config();
        let a = RunReport::from_schedule(&cfg, &cfg.run());
        let b = RunReport::from_schedule(&cfg, &cfg.run());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "equal runs must serialize byte-identically"
        );
    }

    #[test]
    fn wall_time_mean() {
        let stats = ServiceStats {
            completed: 3,
            failed: 1,
            wall_ms_total: 100,
            ..Default::default()
        };
        assert!((stats.wall_ms_mean() - 25.0).abs() < 1e-12);
        assert_eq!(ServiceStats::default().wall_ms_mean(), 0.0);
    }
}
