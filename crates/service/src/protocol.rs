//! The `bfsimd` wire protocol: JSON-lines over TCP.
//!
//! Grammar: each request is one JSON object on one `\n`-terminated line;
//! the daemon answers every request line with exactly one response line,
//! in order, on the same connection. Types are plain serde data shared
//! with the rest of the workspace, so a scenario written for the CLI
//! (`RunConfig`) is submitted to the service verbatim.

use backfill_sim::{RunConfig, Schedule};
use metrics::{capacity_report, fairness, CapacityReport, FairnessReport, ScheduleStats};
use sched::ProfileStats;
use serde::{Deserialize, Serialize};
use workload::CategoryCriteria;

/// Distributed-trace context riding on a [`Request::Submit`]: the
/// coordinator's cell trace plus the span to parent daemon-side spans
/// under. Optional and ignored by pre-v3 daemons (unknown JSON fields
/// are skipped on deserialize), so old and new peers interoperate; a
/// missing field parses as `None` via the serde default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Trace id — the cell's canonical content hash, shared by every
    /// span of that cell across coordinator and shards.
    pub trace_id: u64,
    /// Span id of the submitting attempt; daemon-side spans become its
    /// children so the merged timeline is one rooted tree per cell.
    pub parent_span: u64,
}

impl TraceContext {
    /// The `obs` span context this wire form carries.
    pub fn ctx(&self) -> obs::SpanContext {
        obs::SpanContext {
            trace_id: self.trace_id,
            span_id: self.parent_span,
        }
    }
}

/// One completed span on the wire (the serde mirror of
/// [`obs::SpanRecord`], which stays serde-free like all of `obs`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSpan {
    /// Trace this span belongs to (cell content hash).
    pub trace_id: u64,
    /// Unique span id within the trace.
    pub span_id: u64,
    /// Parent span id; 0 marks a root.
    pub parent_id: u64,
    /// Operation name, e.g. `"pool.run"`.
    pub name: String,
    /// Start, microseconds on the emitting process's monotonic clock.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

impl From<obs::SpanRecord> for WireSpan {
    fn from(r: obs::SpanRecord) -> Self {
        WireSpan {
            trace_id: r.trace_id,
            span_id: r.span_id,
            parent_id: r.parent_id,
            name: r.name,
            start_us: r.start_us,
            dur_us: r.dur_us,
        }
    }
}

impl From<WireSpan> for obs::SpanRecord {
    fn from(w: WireSpan) -> Self {
        obs::SpanRecord {
            trace_id: w.trace_id,
            span_id: w.span_id,
            parent_id: w.parent_id,
            name: w.name,
            start_us: w.start_us,
            dur_us: w.dur_us,
        }
    }
}

/// A client request: one per line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Simulate one scenario (or fetch its memoized report).
    Submit {
        /// The full run configuration; also the cache key (canonicalized).
        config: RunConfig,
        /// Optional distributed-trace context. When present the daemon
        /// records its serving spans (queue wait, run, cache hit/miss)
        /// as children of `parent_span`, harvestable via
        /// [`Request::Spans`]. Absent on pre-v3 clients; ignored by
        /// pre-v3 daemons. Never part of the cache key.
        #[serde(default)]
        trace: Option<TraceContext>,
    },
    /// Introspect the daemon: queue depth, in-flight, cache, wall times.
    Stats,
    /// Fetch the daemon's full metrics registry as one canonical-JSON
    /// document (scheduler, profile-index, queue, pool, and cache
    /// metrics under their dotted names — see DESIGN.md §12).
    Metrics,
    /// Probe liveness and readiness: answered with
    /// [`Response::Health`] even while draining, so an operator can
    /// always tell a slow daemon from a dead one.
    Health,
    /// Handshake: report the daemon's sizing and protocol revision so a
    /// sweep coordinator can size its per-shard in-flight windows
    /// before dispatching any work. Answered with
    /// [`Response::Capabilities`].
    Capabilities,
    /// Drain and return every span the daemon buffered since the last
    /// `Spans` request (submit handling, pool wait/run, cache hits and
    /// misses, simulator phases). Answered with [`Response::Spans`].
    /// Draining is destructive — the coordinator collects once per
    /// sweep — and spans are only buffered while traced submits arrive.
    Spans,
    /// Fetch the daemon's metrics registry rendered in the Prometheus
    /// text exposition format (counters, gauges, cumulative histogram
    /// buckets). Same registry state as [`Request::Metrics`], different
    /// serialization. Answered with [`Response::MetricsProm`].
    MetricsProm,
    /// Stop accepting new `Submit`s but **stay alive**: in-flight work
    /// completes, and `Stats`/`Metrics`/`Health`/`Capabilities` keep
    /// answering so a coordinator can still harvest the shard's final
    /// counters. Unlike [`Request::Shutdown`] the daemon does not exit.
    /// Acknowledged with [`Response::Draining`]; refused submits answer
    /// [`Response::ShuttingDown`], which resilient clients already
    /// treat as "send this work elsewhere".
    Drain,
    /// Begin graceful shutdown: stop taking new work, drain in-flight
    /// requests, then exit.
    Shutdown,
}

/// The daemon's answer: one per request line, in order.
// Run carries the full ~1 KB report by value: a Response exists only to
// be serialized onto the wire immediately, so the size gap between Run
// and ShuttingDown never sits in memory long enough to matter.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// A completed (or cache-served) simulation.
    Run(RunReply),
    /// The daemon's current counters.
    Stats(ServiceStats),
    /// The daemon's metrics registry snapshot, answering
    /// [`Request::Metrics`].
    Metrics {
        /// Canonical JSON: sorted keys, integer values, no whitespace —
        /// byte-identical for identical registry states.
        json: String,
    },
    /// The daemon's readiness probe, answering [`Request::Health`].
    Health(HealthReport),
    /// The daemon's sizing handshake, answering
    /// [`Request::Capabilities`].
    Capabilities(Capabilities),
    /// The daemon's buffered spans, answering [`Request::Spans`].
    Spans {
        /// Every span drained from the daemon's buffers, oldest first.
        spans: Vec<WireSpan>,
    },
    /// The Prometheus-rendered registry, answering
    /// [`Request::MetricsProm`].
    MetricsProm {
        /// Prometheus text exposition format (`# TYPE` + samples).
        text: String,
    },
    /// Acknowledges [`Request::Drain`]: the daemon refuses new submits
    /// from here on but stays alive for introspection verbs.
    Draining,
    /// The bounded work queue is full and the daemon shed this request
    /// rather than block the connection. The submission had **no
    /// effect** (nothing queued, nothing cached): resubmitting the same
    /// config later is safe and idempotent, which is what lets clients
    /// retry `Busy` with backoff.
    Busy,
    /// The request failed; the daemon itself is still healthy. Carries
    /// the offending config's canonical hash when the failure was a
    /// simulation panic (fault isolation), zero for malformed requests.
    Error {
        /// Human-readable cause.
        message: String,
        /// Content hash of the config at fault, 0 if not applicable.
        config_hash: u64,
        /// True when retrying the identical request may succeed (e.g. a
        /// crashed worker); false for deterministic failures (a
        /// poisoned scenario, a malformed or oversized request).
        /// Defaults to false so pre-fault-layer daemons parse as
        /// non-retryable.
        #[serde(default)]
        retryable: bool,
    },
    /// The daemon is draining and takes no new work (also the
    /// acknowledgement of [`Request::Shutdown`] itself).
    ShuttingDown,
}

/// Liveness/readiness snapshot, answering [`Request::Health`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// True when the daemon accepts new submissions (not draining).
    pub ready: bool,
    /// True once graceful shutdown has begun.
    pub draining: bool,
    /// Configured worker-thread count.
    pub workers: u64,
    /// Configured bounded-queue capacity.
    pub queue_cap: u64,
    /// Tasks waiting in the queue right now.
    pub queue_depth: u64,
    /// Tasks being simulated right now.
    pub in_flight: u64,
    /// Submissions shed with [`Response::Busy`] so far.
    pub shed: u64,
    /// Worker panics outside the simulation boundary so far (injected
    /// faults and pool-path bugs).
    pub worker_panics: u64,
    /// Entries currently memoized in the result cache.
    pub cache_entries: u64,
    /// Cache-journal state, when a journal is configured.
    #[serde(default)]
    pub journal: Option<JournalHealth>,
    /// The active fault plan's spec string, when fault injection is on.
    /// `None` in normal operation.
    #[serde(default)]
    pub fault_plan: Option<String>,
}

/// Cache-journal state inside a [`HealthReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JournalHealth {
    /// Journal file path.
    pub path: String,
    /// Entries replayed into the cache at startup.
    pub replayed: u64,
    /// Entries appended since startup.
    pub appended: u64,
    /// True when startup replay found and truncated a torn tail.
    pub truncated: bool,
    /// Torn-tail bytes dropped by the startup truncation (0 for a clean
    /// file). Defaults so pre-coordinator health reports still parse.
    #[serde(default)]
    pub dropped_bytes: u64,
}

/// The daemon's sizing handshake, answering [`Request::Capabilities`].
///
/// A sweep coordinator uses this to size its bounded in-flight window
/// per shard (one outstanding submit per daemon worker keeps the pool
/// busy without tripping `Busy` shedding) and to refuse incompatible
/// daemons up front instead of mid-sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Protocol revision this daemon speaks. Bumped when a verb is
    /// added or changes meaning; coordinators require at least the
    /// revision they were built against.
    pub proto: u32,
    /// Simulation worker threads (the natural in-flight window).
    pub workers: u64,
    /// Bounded work-queue capacity (submits past `workers + queue_cap`
    /// would be shed with `Busy`).
    pub queue_cap: u64,
    /// Largest accepted request frame in bytes.
    pub max_frame: u64,
    /// Entries currently memoized in the result cache.
    pub cache_entries: u64,
    /// True when the cache is journaled (survives a crash).
    pub journaled: bool,
    /// True when the daemon refuses new submits (draining or drained).
    pub draining: bool,
}

/// The protocol revision this build speaks (see [`Capabilities::proto`]).
/// v3 added span tracing: the optional `trace` field on `Submit` and the
/// `Spans` / `MetricsProm` verbs.
pub const PROTO_VERSION: u32 = 3;

/// A successful submit: the report plus cache provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReply {
    /// Stable content hash of the canonical config (the cache label).
    pub config_hash: u64,
    /// True when the report was served from the result cache. The
    /// `report` payload is byte-identical either way — only this marker
    /// (and `wall_ms`) distinguish a hit from a fresh run.
    pub cached: bool,
    /// Wall time the daemon spent serving this request, in milliseconds
    /// (queue wait + simulation for a miss; lookup only for a hit).
    pub wall_ms: u64,
    /// The simulation report.
    pub report: RunReport,
}

/// Everything the service reports about one completed run. A pure
/// function of the schedule, so a report computed daemon-side equals one
/// computed by the caller from a direct `run_all` — asserted by the
/// service integration tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Config label, e.g. `"CTC EASY/SJF"`.
    pub label: String,
    /// Machine size the schedule ran on.
    pub nodes: u32,
    /// Number of jobs simulated.
    pub jobs: usize,
    /// Schedule fingerprint (FNV over job start assignments) — two runs
    /// are behaviourally identical iff these match.
    pub fingerprint: u64,
    /// The paper's aggregate statistics (overall + per category/quality).
    pub stats: ScheduleStats,
    /// Fairness summary (slowdown Gini, max-stretch, overtake rate).
    pub fairness: FairnessReport,
    /// Capacity breakdown (utilized / blameless idle / loss of capacity).
    pub capacity: CapacityReport,
    /// Availability-profile operation counters, if the scheduler keeps a
    /// profile.
    pub profile: Option<ProfileStats>,
    /// Discrete events the driver delivered over the run.
    pub events: u64,
}

impl RunReport {
    /// Build the report for one completed schedule. Deterministic: equal
    /// `(config, schedule)` pairs produce byte-identical serialized
    /// reports.
    pub fn from_schedule(config: &RunConfig, schedule: &Schedule) -> Self {
        RunReport {
            label: config.label(),
            nodes: schedule.nodes,
            jobs: schedule.outcomes.len(),
            fingerprint: schedule.fingerprint(),
            stats: schedule.stats(&CategoryCriteria::default()),
            fairness: fairness(&schedule.outcomes),
            capacity: capacity_report(&schedule.outcomes, schedule.nodes),
            profile: schedule.profile_stats,
            events: schedule.events,
        }
    }
}

/// Daemon introspection counters, returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Submit requests accepted so far (hits + misses + failures).
    pub submitted: u64,
    /// Submit requests answered with a report.
    pub completed: u64,
    /// Submit requests that failed inside the simulation (isolated
    /// panics) or were malformed.
    pub failed: u64,
    /// Submit requests refused because the daemon was draining.
    pub rejected: u64,
    /// Submit requests shed with [`Response::Busy`] because the bounded
    /// queue was full. Defaults so pre-fault-layer stats still parse.
    #[serde(default)]
    pub shed: u64,
    /// Worker panics outside the simulation boundary (injected faults
    /// and pool-path bugs); each one failed its request.
    #[serde(default)]
    pub worker_panics: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Entries currently memoized.
    pub cache_entries: u64,
    /// Entries evicted to stay under the configured cache cap (LRU).
    pub cache_evictions: u64,
    /// Tasks waiting in the bounded work queue right now.
    pub queue_depth: u64,
    /// Tasks being simulated by workers right now.
    pub in_flight: u64,
    /// True once graceful shutdown has begun.
    pub draining: bool,
    /// Total wall milliseconds across all timed submit requests.
    pub wall_ms_total: u64,
    /// Largest single-request wall time in milliseconds.
    pub wall_ms_max: u64,
}

impl ServiceStats {
    /// Mean per-request wall time in milliseconds (0 when nothing ran).
    pub fn wall_ms_mean(&self) -> f64 {
        let timed = self.completed + self.failed;
        if timed == 0 {
            0.0
        } else {
            self.wall_ms_total as f64 / timed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfill_sim::{Scenario, SchedulerKind, TraceSource};
    use sched::Policy;

    fn config() -> RunConfig {
        RunConfig {
            scenario: Scenario::high_load(TraceSource::Ctc { jobs: 80, seed: 3 }),
            kind: SchedulerKind::Easy,
            policy: Policy::Sjf,
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Submit {
                config: config(),
                trace: None,
            },
            Request::Submit {
                config: config(),
                trace: Some(TraceContext {
                    trace_id: 0xFEED,
                    parent_span: 0xBEEF,
                }),
            },
            Request::Stats,
            Request::Metrics,
            Request::MetricsProm,
            Request::Health,
            Request::Capabilities,
            Request::Spans,
            Request::Drain,
            Request::Shutdown,
        ] {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'), "requests must fit one line");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                line,
                "round-trip changed the encoding"
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        let cfg = config();
        let schedule = cfg.run();
        let reply = Response::Run(RunReply {
            config_hash: cfg.content_hash(),
            cached: false,
            wall_ms: 12,
            report: RunReport::from_schedule(&cfg, &schedule),
        });
        for resp in [
            reply,
            Response::Stats(ServiceStats::default()),
            Response::Metrics {
                json: r#"{"counters":{"service.submitted":1}}"#.into(),
            },
            Response::Health(HealthReport {
                ready: true,
                workers: 4,
                queue_cap: 8,
                journal: Some(JournalHealth {
                    path: "/tmp/j.jsonl".into(),
                    replayed: 3,
                    appended: 1,
                    truncated: true,
                    dropped_bytes: 117,
                }),
                fault_plan: Some("seed=7;panic@3".into()),
                ..HealthReport::default()
            }),
            Response::Capabilities(Capabilities {
                proto: PROTO_VERSION,
                workers: 4,
                queue_cap: 8,
                max_frame: 1 << 20,
                cache_entries: 12,
                journaled: true,
                draining: false,
            }),
            Response::Spans {
                spans: vec![WireSpan {
                    trace_id: 7,
                    span_id: 9,
                    parent_id: 7,
                    name: "pool.run".into(),
                    start_us: 120,
                    dur_us: 35,
                }],
            },
            Response::MetricsProm {
                text: "# TYPE service_submitted counter\nservice_submitted 1\n".into(),
            },
            Response::Draining,
            Response::Busy,
            Response::Error {
                message: "boom".into(),
                config_hash: 7,
                retryable: true,
            },
            Response::ShuttingDown,
        ] {
            let line = serde_json::to_string(&resp).unwrap();
            assert!(!line.contains('\n'));
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(serde_json::to_string(&back).unwrap(), line);
        }
    }

    #[test]
    fn pre_fault_layer_encodings_still_parse() {
        // Older daemons/reports omit the fields this layer added; serde
        // defaults must fill them in rather than reject the document.
        let err: Response =
            serde_json::from_str(r#"{"Error":{"message":"boom","config_hash":7}}"#).unwrap();
        match err {
            Response::Error { retryable, .. } => assert!(!retryable, "default is non-retryable"),
            other => panic!("parsed as {other:?}"),
        }
        let stats: ServiceStats = serde_json::from_str(
            r#"{"submitted":4,"completed":4,"failed":0,"rejected":0,"cache_hits":0,"cache_misses":4,"cache_entries":4,"cache_evictions":0,"queue_depth":0,"in_flight":0,"draining":false,"wall_ms_total":9,"wall_ms_max":5}"#,
        )
        .unwrap();
        assert_eq!((stats.shed, stats.worker_panics), (0, 0));
        assert_eq!(stats.submitted, 4);
        // Pre-coordinator journal health (no dropped_bytes) still parses.
        let journal: JournalHealth = serde_json::from_str(
            r#"{"path":"/tmp/j.jsonl","replayed":3,"appended":1,"truncated":true}"#,
        )
        .unwrap();
        assert_eq!(journal.dropped_bytes, 0, "default fills the new field");
    }

    #[test]
    fn submit_trace_context_is_cross_revision_compatible() {
        // A pre-v3 client's Submit has no `trace` field: the serde
        // default must fill in `None`, not reject the frame.
        let cfg = serde_json::to_string(&config()).unwrap();
        let old_line = format!(r#"{{"Submit":{{"config":{cfg}}}}}"#);
        let parsed: Request = serde_json::from_str(&old_line).unwrap();
        match parsed {
            Request::Submit { config: c, trace } => {
                assert_eq!(c, config());
                assert_eq!(trace, None, "missing field defaults to None");
            }
            other => panic!("parsed as {other:?}"),
        }

        // Conversely a pre-v3 *daemon* sees the new field as an unknown
        // key and must skip it — modelled here by a Submit carrying an
        // extra field this build has never heard of. This is the exact
        // mechanism that lets an old daemon round-trip a traced Submit.
        let future = format!(
            r#"{{"Submit":{{"config":{cfg},"trace":{{"trace_id":7,"parent_span":9}},"hologram":42}}}}"#
        );
        let parsed: Request = serde_json::from_str(&future).unwrap();
        match parsed {
            Request::Submit { config: c, trace } => {
                assert_eq!(c, config());
                assert_eq!(
                    trace,
                    Some(TraceContext {
                        trace_id: 7,
                        parent_span: 9
                    })
                );
            }
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn wire_span_round_trips_through_obs() {
        let rec = obs::SpanRecord {
            trace_id: 3,
            span_id: 5,
            parent_id: 3,
            name: "client.attempt".into(),
            start_us: 99,
            dur_us: 12,
        };
        let wire: WireSpan = rec.clone().into();
        let back: obs::SpanRecord = wire.into();
        assert_eq!(back, rec);
    }

    #[test]
    fn report_is_deterministic() {
        let cfg = config();
        let a = RunReport::from_schedule(&cfg, &cfg.run());
        let b = RunReport::from_schedule(&cfg, &cfg.run());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "equal runs must serialize byte-identically"
        );
    }

    #[test]
    fn wall_time_mean() {
        let stats = ServiceStats {
            completed: 3,
            failed: 1,
            wall_ms_total: 100,
            ..Default::default()
        };
        assert!((stats.wall_ms_mean() - 25.0).abs() < 1e-12);
        assert_eq!(ServiceStats::default().wall_ms_mean(), 0.0);
    }
}
