//! Content-addressed result cache.
//!
//! Completed runs are memoized under the **canonical JSON** of their
//! `RunConfig` (see `backfill_sim::canon`). Keying on the full canonical
//! text — not just a hash — means two distinct scenarios can never alias
//! a cache slot, even under a 64-bit hash collision; the FNV-1a hash of
//! the key is carried alongside purely as the compact label shown in
//! responses and logs. Simulations are deterministic (equal config ⇒
//! byte-identical schedule ⇒ byte-identical report), so a hit returns a
//! report indistinguishable from re-running the scenario, minus the
//! compute.
//!
//! The cache is bounded: past the configured entry cap, inserting evicts
//! the least-recently-used entry (hits refresh recency). Eviction scans
//! for the oldest tick — O(entries) — which is deliberate: an insert only
//! happens after a full simulation, so the scan is noise, and the flat
//! map keeps lookups (the actual hot path) a single hash probe.

use crate::protocol::RunReport;
use backfill_sim::canon::fnv1a_64;
use obs::metrics::{Counter, Metric, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A memoized report plus its display hash and last-touched tick.
#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    report: RunReport,
    /// Logical LRU clock value of the last lookup hit or insert.
    tick: u64,
}

/// Guarded state: the map and the logical clock it stamps entries with.
#[derive(Debug, Default)]
struct Slots {
    map: HashMap<String, Entry>,
    clock: u64,
}

impl Slots {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// Thread-safe memoization of completed runs, keyed by canonical config
/// JSON, bounded to `cap` entries with LRU eviction. Counters are
/// monotone over the cache's lifetime.
#[derive(Debug)]
pub struct ResultCache {
    slots: Mutex<Slots>,
    cap: usize,
    // Shared obs handles so an owning daemon can `bind_metrics` them
    // into its registry; the cache increments, the registry reads.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }
}

/// A cache lookup's outcome, as reported by [`ResultCache::lookup`].
// A Hit carries the full ~1 KB report by value: every Hit is immediately
// serialized into a response, so boxing would buy nothing but an extra
// allocation on the cache's whole purpose.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Lookup {
    /// The report was memoized; serving it costs no simulation.
    Hit {
        /// Content hash of the canonical key (the display label).
        hash: u64,
        /// The memoized report.
        report: RunReport,
    },
    /// Not memoized; the caller must run the scenario (and should
    /// [`ResultCache::insert`] the result).
    Miss {
        /// Content hash of the canonical key.
        hash: u64,
    },
}

impl ResultCache {
    /// Default entry cap: a full paper sweep is a few hundred cells, so
    /// this holds several complete sweeps before anything is evicted.
    pub const DEFAULT_CAP: usize = 1024;

    /// Create an empty cache with the default entry cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty cache holding at most `cap` entries (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        ResultCache {
            slots: Mutex::new(Slots::default()),
            cap: cap.max(1),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
        }
    }

    /// Expose the cache's counters to `registry` under
    /// `service.cache.{hits,misses,evictions}` (see DESIGN.md §12).
    pub fn bind_metrics(&self, registry: &Registry) {
        registry.bind("service.cache.hits", Metric::Counter(self.hits.clone()));
        registry.bind("service.cache.misses", Metric::Counter(self.misses.clone()));
        registry.bind(
            "service.cache.evictions",
            Metric::Counter(self.evictions.clone()),
        );
    }

    /// Look up a canonical config key, bumping the hit or miss counter.
    /// A hit refreshes the entry's recency.
    pub fn lookup(&self, canonical: &str) -> Lookup {
        let mut slots = self.slots.lock();
        let tick = slots.tick();
        match slots.map.get_mut(canonical) {
            Some(entry) => {
                entry.tick = tick;
                self.hits.inc();
                Lookup::Hit {
                    hash: entry.hash,
                    report: entry.report.clone(),
                }
            }
            None => {
                self.misses.inc();
                Lookup::Miss {
                    hash: fnv1a_64(canonical.as_bytes()),
                }
            }
        }
    }

    /// Memoize a completed run, evicting the least-recently-used entry
    /// if the cache is at capacity. Idempotent: two workers racing on
    /// the same scenario insert byte-identical reports, so
    /// last-write-wins is harmless (and re-inserting never evicts).
    pub fn insert(&self, canonical: String, report: RunReport) {
        let hash = fnv1a_64(canonical.as_bytes());
        let mut slots = self.slots.lock();
        let tick = slots.tick();
        if slots.map.len() >= self.cap && !slots.map.contains_key(&canonical) {
            let coldest = slots
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("cap >= 1, so a full map is non-empty");
            slots.map.remove(&coldest);
            self.evictions.inc();
        }
        slots.map.insert(canonical, Entry { hash, report, tick });
    }

    /// `(hits, misses, entries, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.get(),
            self.misses.get(),
            self.slots.lock().map.len() as u64,
            self.evictions.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RunReport;
    use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
    use sched::Policy;

    fn config(seed: u64) -> RunConfig {
        RunConfig {
            scenario: Scenario::high_load(TraceSource::Ctc { jobs: 60, seed }),
            kind: SchedulerKind::Easy,
            policy: Policy::Fcfs,
        }
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache = ResultCache::new();
        let cfg = config(1);
        let key = cfg.canonical_json();
        let miss_hash = match cache.lookup(&key) {
            Lookup::Miss { hash } => hash,
            Lookup::Hit { .. } => panic!("empty cache reported a hit"),
        };
        assert_eq!(miss_hash, cfg.content_hash());

        let report = RunReport::from_schedule(&cfg, &cfg.run());
        let fresh_bytes = serde_json::to_string(&report).unwrap();
        cache.insert(key.clone(), report);

        match cache.lookup(&key) {
            Lookup::Hit { hash, report } => {
                assert_eq!(hash, miss_hash);
                // The memoized report serializes byte-identically to the
                // fresh one.
                assert_eq!(serde_json::to_string(&report).unwrap(), fresh_bytes);
            }
            Lookup::Miss { .. } => panic!("inserted key missed"),
        }
        assert_eq!(cache.stats(), (1, 1, 1, 0));
    }

    #[test]
    fn distinct_configs_occupy_distinct_slots() {
        let cache = ResultCache::new();
        let a = config(1);
        let b = config(2);
        assert_ne!(a.canonical_json(), b.canonical_json());
        cache.insert(a.canonical_json(), RunReport::from_schedule(&a, &a.run()));
        cache.insert(b.canonical_json(), RunReport::from_schedule(&b, &b.run()));
        let (_, _, entries, _) = cache.stats();
        assert_eq!(entries, 2);
        match cache.lookup(&a.canonical_json()) {
            Lookup::Hit { report, .. } => assert_eq!(report.label, a.label()),
            Lookup::Miss { .. } => panic!("a missed"),
        }
    }

    #[test]
    fn lru_eviction_under_cap_of_two() {
        let cache = ResultCache::with_capacity(2);
        let (a, b, c) = (config(1), config(2), config(3));
        let report = |cfg: &RunConfig| RunReport::from_schedule(cfg, &cfg.run());
        cache.insert(a.canonical_json(), report(&a));
        cache.insert(b.canonical_json(), report(&b));
        // Touch `a`: it becomes the most recently used of the two.
        assert!(matches!(
            cache.lookup(&a.canonical_json()),
            Lookup::Hit { .. }
        ));
        // Third insert at cap 2: the LRU entry — `b`, not `a` — goes.
        cache.insert(c.canonical_json(), report(&c));
        let (hits, _, entries, evictions) = cache.stats();
        assert_eq!((hits, entries, evictions), (1, 2, 1));
        assert!(
            matches!(cache.lookup(&b.canonical_json()), Lookup::Miss { .. }),
            "least-recently-used entry must be the one evicted"
        );
        assert!(matches!(
            cache.lookup(&a.canonical_json()),
            Lookup::Hit { .. }
        ));
        assert!(matches!(
            cache.lookup(&c.canonical_json()),
            Lookup::Hit { .. }
        ));
        // Re-inserting a resident key at cap never evicts.
        cache.insert(a.canonical_json(), report(&a));
        let (_, _, entries, evictions) = cache.stats();
        assert_eq!((entries, evictions), (2, 1));
    }
}
