//! Content-addressed result cache.
//!
//! Completed runs are memoized under the **canonical JSON** of their
//! `RunConfig` (see `backfill_sim::canon`). Keying on the full canonical
//! text — not just a hash — means two distinct scenarios can never alias
//! a cache slot, even under a 64-bit hash collision; the FNV-1a hash of
//! the key is carried alongside purely as the compact label shown in
//! responses and logs. Simulations are deterministic (equal config ⇒
//! byte-identical schedule ⇒ byte-identical report), so a hit returns a
//! report indistinguishable from re-running the scenario, minus the
//! compute.

use crate::protocol::RunReport;
use backfill_sim::canon::fnv1a_64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A memoized report plus its display hash.
#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    report: RunReport,
}

/// Thread-safe memoization of completed runs, keyed by canonical config
/// JSON. Counters are monotone over the cache's lifetime.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<String, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A cache lookup's outcome, as reported by [`ResultCache::lookup`].
#[derive(Debug, Clone)]
pub enum Lookup {
    /// The report was memoized; serving it costs no simulation.
    Hit {
        /// Content hash of the canonical key (the display label).
        hash: u64,
        /// The memoized report.
        report: RunReport,
    },
    /// Not memoized; the caller must run the scenario (and should
    /// [`ResultCache::insert`] the result).
    Miss {
        /// Content hash of the canonical key.
        hash: u64,
    },
}

impl ResultCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a canonical config key, bumping the hit or miss counter.
    pub fn lookup(&self, canonical: &str) -> Lookup {
        let map = self.map.lock();
        match map.get(canonical) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit {
                    hash: entry.hash,
                    report: entry.report.clone(),
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss {
                    hash: fnv1a_64(canonical.as_bytes()),
                }
            }
        }
    }

    /// Memoize a completed run. Idempotent: two workers racing on the
    /// same scenario insert byte-identical reports, so last-write-wins
    /// is harmless.
    pub fn insert(&self, canonical: String, report: RunReport) {
        let hash = fnv1a_64(canonical.as_bytes());
        self.map.lock().insert(canonical, Entry { hash, report });
    }

    /// `(hits, misses, entries)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.map.lock().len() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RunReport;
    use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
    use sched::Policy;

    fn config(seed: u64) -> RunConfig {
        RunConfig {
            scenario: Scenario::high_load(TraceSource::Ctc { jobs: 60, seed }),
            kind: SchedulerKind::Easy,
            policy: Policy::Fcfs,
        }
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache = ResultCache::new();
        let cfg = config(1);
        let key = cfg.canonical_json();
        let miss_hash = match cache.lookup(&key) {
            Lookup::Miss { hash } => hash,
            Lookup::Hit { .. } => panic!("empty cache reported a hit"),
        };
        assert_eq!(miss_hash, cfg.content_hash());

        let report = RunReport::from_schedule(&cfg, &cfg.run());
        let fresh_bytes = serde_json::to_string(&report).unwrap();
        cache.insert(key.clone(), report);

        match cache.lookup(&key) {
            Lookup::Hit { hash, report } => {
                assert_eq!(hash, miss_hash);
                // The memoized report serializes byte-identically to the
                // fresh one.
                assert_eq!(serde_json::to_string(&report).unwrap(), fresh_bytes);
            }
            Lookup::Miss { .. } => panic!("inserted key missed"),
        }
        assert_eq!(cache.stats(), (1, 1, 1));
    }

    #[test]
    fn distinct_configs_occupy_distinct_slots() {
        let cache = ResultCache::new();
        let a = config(1);
        let b = config(2);
        assert_ne!(a.canonical_json(), b.canonical_json());
        cache.insert(a.canonical_json(), RunReport::from_schedule(&a, &a.run()));
        cache.insert(b.canonical_json(), RunReport::from_schedule(&b, &b.run()));
        let (_, _, entries) = cache.stats();
        assert_eq!(entries, 2);
        match cache.lookup(&a.canonical_json()) {
            Lookup::Hit { report, .. } => assert_eq!(report.label, a.label()),
            Lookup::Miss { .. } => panic!("a missed"),
        }
    }
}
