//! Content-addressed result cache.
//!
//! Completed runs are memoized under the **canonical JSON** of their
//! `RunConfig` (see `backfill_sim::canon`). Keying on the full canonical
//! text — not just a hash — means two distinct scenarios can never alias
//! a cache slot, even under a 64-bit hash collision; the FNV-1a hash of
//! the key is carried alongside purely as the compact label shown in
//! responses and logs. Simulations are deterministic (equal config ⇒
//! byte-identical schedule ⇒ byte-identical report), so a hit returns a
//! report indistinguishable from re-running the scenario, minus the
//! compute.
//!
//! The cache is bounded: past the configured entry cap, inserting evicts
//! the least-recently-used entry (hits refresh recency). Eviction scans
//! for the oldest tick — O(entries) — which is deliberate: an insert only
//! happens after a full simulation, so the scan is noise, and the flat
//! map keeps lookups (the actual hot path) a single hash probe.
//!
//! # Crash recovery
//!
//! With [`ResultCache::with_journal`] every insert is also appended to a
//! JSONL journal: one line per entry, `{"crc":C,"entry":{"key":K,
//! "report":R}}`, where `C` is the FNV-1a hash of the serialized
//! `entry` object. On startup the journal is replayed newest-state-wins
//! under the same LRU cap; replay stops at the **first** record that is
//! torn (no trailing newline), non-JSON, or fails its checksum, and the
//! file is truncated back to the last good record — a half-written tail
//! from a crash can never poison entries that were durable before it.
//! The journal is a log, not a snapshot: entries evicted in memory may
//! be re-admitted on replay (the cap is re-applied), and duplicate
//! appends replay idempotently.

use crate::protocol::{JournalHealth, RunReport};
use backfill_sim::canon::fnv1a_64;
use obs::metrics::{Counter, Metric, Registry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A memoized report plus its display hash and last-touched tick.
#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    report: RunReport,
    /// Logical LRU clock value of the last lookup hit or insert.
    tick: u64,
}

/// Guarded state: the map and the logical clock it stamps entries with.
#[derive(Debug, Default)]
struct Slots {
    map: HashMap<String, Entry>,
    clock: u64,
}

impl Slots {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// One durable journal record: the payload plus its integrity check.
#[derive(Debug, Serialize, Deserialize)]
struct JournalLine {
    /// FNV-1a hash of the serialized `entry` object; a mismatch marks
    /// the record (and everything after it) as torn.
    crc: u64,
    entry: JournalEntry,
}

/// The durable payload: exactly what [`ResultCache::insert`] took.
#[derive(Debug, Serialize, Deserialize)]
struct JournalEntry {
    key: String,
    report: RunReport,
}

/// What startup replay of a cache journal found, returned by
/// [`ResultCache::with_journal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalReplay {
    /// Records restored into the cache.
    pub replayed: u64,
    /// True when a torn/corrupt tail was found and truncated away.
    pub truncated: bool,
    /// Bytes discarded by the truncation (0 when the file was clean).
    pub dropped_bytes: u64,
}

/// The open journal plus its replay provenance (for health reporting).
#[derive(Debug)]
struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    replay: JournalReplay,
    appends: Arc<Counter>,
}

/// Thread-safe memoization of completed runs, keyed by canonical config
/// JSON, bounded to `cap` entries with LRU eviction. Counters are
/// monotone over the cache's lifetime.
#[derive(Debug)]
pub struct ResultCache {
    slots: Mutex<Slots>,
    cap: usize,
    // Shared obs handles so an owning daemon can `bind_metrics` them
    // into its registry; the cache increments, the registry reads.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    journal: Option<Journal>,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }
}

/// A cache lookup's outcome, as reported by [`ResultCache::lookup`].
// A Hit carries the full ~1 KB report by value: every Hit is immediately
// serialized into a response, so boxing would buy nothing but an extra
// allocation on the cache's whole purpose.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Lookup {
    /// The report was memoized; serving it costs no simulation.
    Hit {
        /// Content hash of the canonical key (the display label).
        hash: u64,
        /// The memoized report.
        report: RunReport,
    },
    /// Not memoized; the caller must run the scenario (and should
    /// [`ResultCache::insert`] the result).
    Miss {
        /// Content hash of the canonical key.
        hash: u64,
    },
}

impl ResultCache {
    /// Default entry cap: a full paper sweep is a few hundred cells, so
    /// this holds several complete sweeps before anything is evicted.
    pub const DEFAULT_CAP: usize = 1024;

    /// Create an empty cache with the default entry cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty cache holding at most `cap` entries (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        ResultCache {
            slots: Mutex::new(Slots::default()),
            cap: cap.max(1),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
            journal: None,
        }
    }

    /// Create a cache backed by an append-only JSONL journal at `path`.
    ///
    /// Existing journal records are replayed into the cache (in file
    /// order, so recency follows append order; the LRU cap applies as
    /// usual). Replay stops at the first torn or checksum-failing
    /// record and **truncates** the file back to the last good one, so
    /// a crash mid-append costs at most the record being written. The
    /// file is created when absent.
    pub fn with_journal(cap: usize, path: &Path) -> io::Result<(Self, JournalReplay)> {
        let mut cache = Self::with_capacity(cap);
        let (good_len, records, replay) = Self::scan_journal(path)?;
        for entry in records {
            cache.insert_in_memory(entry.key, entry.report);
        }
        // Drop the torn tail (no-op for a clean file), then hold the
        // file open in append mode for the cache's lifetime.
        // truncate(false): the good prefix must survive — only the torn
        // tail is cut, via the explicit set_len below.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(good_len)?;
        let file = OpenOptions::new().append(true).open(path)?;
        cache.journal = Some(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            replay,
            appends: Arc::new(Counter::new()),
        });
        Ok((cache, replay))
    }

    /// Read `path` (if present) and split it into validated records and
    /// the byte length of the good prefix.
    fn scan_journal(path: &Path) -> io::Result<(u64, Vec<JournalEntry>, JournalReplay)> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(err) if err.kind() == io::ErrorKind::NotFound => {}
            Err(err) => return Err(err),
        }
        let mut records = Vec::new();
        let mut good_len = 0usize;
        let mut rest = &bytes[..];
        // A record counts only if its line is newline-terminated, valid
        // UTF-8 + JSON, and checksum-clean; the first failure (including
        // an unterminated tail) stops the scan — everything after it is
        // the torn region.
        while let Some(newline) = rest.iter().position(|&b| b == b'\n') {
            let line = &rest[..newline];
            let Ok(text) = std::str::from_utf8(line) else {
                break;
            };
            let Ok(parsed) = serde_json::from_str::<JournalLine>(text) else {
                break;
            };
            let body =
                serde_json::to_string(&parsed.entry).expect("journal entries always serialize");
            if fnv1a_64(body.as_bytes()) != parsed.crc {
                break;
            }
            records.push(parsed.entry);
            good_len += newline + 1;
            rest = &rest[newline + 1..];
        }
        let dropped = (bytes.len() - good_len) as u64;
        let replay = JournalReplay {
            replayed: records.len() as u64,
            truncated: dropped > 0,
            dropped_bytes: dropped,
        };
        Ok((good_len as u64, records, replay))
    }

    /// The journal's health snapshot, `None` when no journal is
    /// configured.
    pub fn journal_health(&self) -> Option<JournalHealth> {
        self.journal.as_ref().map(|journal| JournalHealth {
            path: journal.path.display().to_string(),
            replayed: journal.replay.replayed,
            appended: journal.appends.get(),
            truncated: journal.replay.truncated,
            dropped_bytes: journal.replay.dropped_bytes,
        })
    }

    /// Expose the cache's counters to `registry` under
    /// `service.cache.{hits,misses,evictions}` (plus
    /// `service.cache.journal_appends` when journaling — see DESIGN.md
    /// §12/§13).
    pub fn bind_metrics(&self, registry: &Registry) {
        registry.bind("service.cache.hits", Metric::Counter(self.hits.clone()));
        registry.bind("service.cache.misses", Metric::Counter(self.misses.clone()));
        registry.bind(
            "service.cache.evictions",
            Metric::Counter(self.evictions.clone()),
        );
        if let Some(journal) = &self.journal {
            registry.bind(
                "service.cache.journal_appends",
                Metric::Counter(journal.appends.clone()),
            );
        }
    }

    /// Look up a canonical config key, bumping the hit or miss counter.
    /// A hit refreshes the entry's recency.
    pub fn lookup(&self, canonical: &str) -> Lookup {
        let mut slots = self.slots.lock();
        let tick = slots.tick();
        match slots.map.get_mut(canonical) {
            Some(entry) => {
                entry.tick = tick;
                self.hits.inc();
                Lookup::Hit {
                    hash: entry.hash,
                    report: entry.report.clone(),
                }
            }
            None => {
                self.misses.inc();
                Lookup::Miss {
                    hash: fnv1a_64(canonical.as_bytes()),
                }
            }
        }
    }

    /// Memoize a completed run, evicting the least-recently-used entry
    /// if the cache is at capacity. Idempotent: two workers racing on
    /// the same scenario insert byte-identical reports, so
    /// last-write-wins is harmless (and re-inserting never evicts).
    /// When a journal is configured the entry is also appended and
    /// flushed before this returns, so a `SIGKILL` any time after an
    /// insert finds the entry durable.
    pub fn insert(&self, canonical: String, report: RunReport) {
        if let Some(journal) = &self.journal {
            let entry = JournalEntry {
                key: canonical.clone(),
                report: report.clone(),
            };
            let body = serde_json::to_string(&entry).expect("journal entries always serialize");
            // The crc covers exactly the bytes embedded in the line, so
            // replay can recompute it from the parsed record.
            let line = format!(
                "{{\"crc\":{},\"entry\":{}}}\n",
                fnv1a_64(body.as_bytes()),
                body
            );
            let mut file = journal.file.lock();
            if file
                .write_all(line.as_bytes())
                .and_then(|()| file.flush())
                .is_ok()
            {
                journal.appends.inc();
            } else {
                obs::warn!(
                    target: "service::cache",
                    "journal append failed at {}; entry stays in memory only",
                    journal.path.display()
                );
            }
        }
        self.insert_in_memory(canonical, report);
    }

    /// The in-memory half of [`Self::insert`] — also the replay path,
    /// which must not append what it just read back.
    fn insert_in_memory(&self, canonical: String, report: RunReport) {
        let hash = fnv1a_64(canonical.as_bytes());
        let mut slots = self.slots.lock();
        let tick = slots.tick();
        if slots.map.len() >= self.cap && !slots.map.contains_key(&canonical) {
            let coldest = slots
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("cap >= 1, so a full map is non-empty");
            slots.map.remove(&coldest);
            self.evictions.inc();
        }
        slots.map.insert(canonical, Entry { hash, report, tick });
    }

    /// `(hits, misses, entries, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.get(),
            self.misses.get(),
            self.slots.lock().map.len() as u64,
            self.evictions.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RunReport;
    use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
    use sched::Policy;

    fn config(seed: u64) -> RunConfig {
        RunConfig {
            scenario: Scenario::high_load(TraceSource::Ctc { jobs: 60, seed }),
            kind: SchedulerKind::Easy,
            policy: Policy::Fcfs,
        }
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache = ResultCache::new();
        let cfg = config(1);
        let key = cfg.canonical_json();
        let miss_hash = match cache.lookup(&key) {
            Lookup::Miss { hash } => hash,
            Lookup::Hit { .. } => panic!("empty cache reported a hit"),
        };
        assert_eq!(miss_hash, cfg.content_hash());

        let report = RunReport::from_schedule(&cfg, &cfg.run());
        let fresh_bytes = serde_json::to_string(&report).unwrap();
        cache.insert(key.clone(), report);

        match cache.lookup(&key) {
            Lookup::Hit { hash, report } => {
                assert_eq!(hash, miss_hash);
                // The memoized report serializes byte-identically to the
                // fresh one.
                assert_eq!(serde_json::to_string(&report).unwrap(), fresh_bytes);
            }
            Lookup::Miss { .. } => panic!("inserted key missed"),
        }
        assert_eq!(cache.stats(), (1, 1, 1, 0));
    }

    #[test]
    fn distinct_configs_occupy_distinct_slots() {
        let cache = ResultCache::new();
        let a = config(1);
        let b = config(2);
        assert_ne!(a.canonical_json(), b.canonical_json());
        cache.insert(a.canonical_json(), RunReport::from_schedule(&a, &a.run()));
        cache.insert(b.canonical_json(), RunReport::from_schedule(&b, &b.run()));
        let (_, _, entries, _) = cache.stats();
        assert_eq!(entries, 2);
        match cache.lookup(&a.canonical_json()) {
            Lookup::Hit { report, .. } => assert_eq!(report.label, a.label()),
            Lookup::Miss { .. } => panic!("a missed"),
        }
    }

    #[test]
    fn lru_eviction_under_cap_of_two() {
        let cache = ResultCache::with_capacity(2);
        let (a, b, c) = (config(1), config(2), config(3));
        let report = |cfg: &RunConfig| RunReport::from_schedule(cfg, &cfg.run());
        cache.insert(a.canonical_json(), report(&a));
        cache.insert(b.canonical_json(), report(&b));
        // Touch `a`: it becomes the most recently used of the two.
        assert!(matches!(
            cache.lookup(&a.canonical_json()),
            Lookup::Hit { .. }
        ));
        // Third insert at cap 2: the LRU entry — `b`, not `a` — goes.
        cache.insert(c.canonical_json(), report(&c));
        let (hits, _, entries, evictions) = cache.stats();
        assert_eq!((hits, entries, evictions), (1, 2, 1));
        assert!(
            matches!(cache.lookup(&b.canonical_json()), Lookup::Miss { .. }),
            "least-recently-used entry must be the one evicted"
        );
        assert!(matches!(
            cache.lookup(&a.canonical_json()),
            Lookup::Hit { .. }
        ));
        assert!(matches!(
            cache.lookup(&c.canonical_json()),
            Lookup::Hit { .. }
        ));
        // Re-inserting a resident key at cap never evicts.
        cache.insert(a.canonical_json(), report(&a));
        let (_, _, entries, evictions) = cache.stats();
        assert_eq!((entries, evictions), (2, 1));
    }

    /// A scratch path under the target-adjacent temp dir, removed on drop.
    struct TempJournal(std::path::PathBuf);
    impl TempJournal {
        fn new(name: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!("bfsim-cache-test-{}-{}", std::process::id(), name));
            let _ = std::fs::remove_file(&path);
            TempJournal(path)
        }
    }
    impl Drop for TempJournal {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn journal_replays_inserts_across_instances() {
        let journal = TempJournal::new("replay");
        let (a, b) = (config(1), config(2));
        let report = |cfg: &RunConfig| RunReport::from_schedule(cfg, &cfg.run());
        let expected = serde_json::to_string(&report(&a)).unwrap();
        {
            let (cache, replay) = ResultCache::with_journal(8, &journal.0).unwrap();
            assert_eq!(replay, JournalReplay::default(), "fresh journal is empty");
            cache.insert(a.canonical_json(), report(&a));
            cache.insert(b.canonical_json(), report(&b));
            assert_eq!(cache.journal_health().unwrap().appended, 2);
        } // dropped without any shutdown ceremony — durability is per-insert
        let (cache, replay) = ResultCache::with_journal(8, &journal.0).unwrap();
        assert_eq!((replay.replayed, replay.truncated), (2, false));
        match cache.lookup(&a.canonical_json()) {
            Lookup::Hit { report, .. } => {
                assert_eq!(
                    serde_json::to_string(&report).unwrap(),
                    expected,
                    "replayed report must be byte-identical to the original"
                );
            }
            Lookup::Miss { .. } => panic!("journaled entry missed after replay"),
        }
        assert!(matches!(
            cache.lookup(&b.canonical_json()),
            Lookup::Hit { .. }
        ));
        let health = cache.journal_health().unwrap();
        assert_eq!(
            (health.replayed, health.appended, health.truncated),
            (2, 0, false)
        );
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let journal = TempJournal::new("torn");
        let (a, b) = (config(1), config(2));
        let report = |cfg: &RunConfig| RunReport::from_schedule(cfg, &cfg.run());
        {
            let (cache, _) = ResultCache::with_journal(8, &journal.0).unwrap();
            cache.insert(a.canonical_json(), report(&a));
            cache.insert(b.canonical_json(), report(&b));
        }
        // Simulate a crash mid-append: chop the final record in half.
        let bytes = std::fs::read(&journal.0).unwrap();
        let first_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let torn_at = first_end + (bytes.len() - first_end) / 2;
        std::fs::write(&journal.0, &bytes[..torn_at]).unwrap();

        let (cache, replay) = ResultCache::with_journal(8, &journal.0).unwrap();
        assert_eq!(replay.replayed, 1, "only the intact record replays");
        assert!(replay.truncated);
        assert_eq!(replay.dropped_bytes, (torn_at - first_end) as u64);
        // The health view carries the replay provenance verbatim, so the
        // `health` verb (and a sweep coordinator polling it) can report
        // shard recovery state: entries replayed + torn-tail bytes
        // dropped.
        let health = cache.journal_health().expect("journaled cache");
        assert_eq!(
            (health.replayed, health.truncated, health.dropped_bytes),
            (1, true, (torn_at - first_end) as u64)
        );
        assert!(matches!(
            cache.lookup(&a.canonical_json()),
            Lookup::Hit { .. }
        ));
        assert!(matches!(
            cache.lookup(&b.canonical_json()),
            Lookup::Miss { .. }
        ));
        // The file itself was truncated back to the good prefix...
        assert_eq!(
            std::fs::metadata(&journal.0).unwrap().len(),
            first_end as u64
        );
        // ...and appending resumes cleanly after the truncation point.
        cache.insert(b.canonical_json(), report(&b));
        drop(cache);
        let (_, replay) = ResultCache::with_journal(8, &journal.0).unwrap();
        assert_eq!((replay.replayed, replay.truncated), (2, false));
    }

    #[test]
    fn checksum_mismatch_truncates_from_the_corrupt_record() {
        let journal = TempJournal::new("crc");
        let (a, b) = (config(1), config(2));
        let report = |cfg: &RunConfig| RunReport::from_schedule(cfg, &cfg.run());
        {
            let (cache, _) = ResultCache::with_journal(8, &journal.0).unwrap();
            cache.insert(a.canonical_json(), report(&a));
            cache.insert(b.canonical_json(), report(&b));
        }
        // Flip one digit inside the second record's payload: the line
        // still parses as JSON but its crc no longer matches.
        let text = std::fs::read_to_string(&journal.0).unwrap();
        let first_end = text.find('\n').unwrap() + 1;
        let tail = &text[first_end..];
        let digit_at = first_end
            + tail
                .find("\"fingerprint\":")
                .map(|i| i + "\"fingerprint\":".len())
                .expect("reports carry a fingerprint field");
        let mut bytes = text.into_bytes();
        bytes[digit_at] = if bytes[digit_at] == b'1' { b'2' } else { b'1' };
        std::fs::write(&journal.0, &bytes).unwrap();

        let (cache, replay) = ResultCache::with_journal(8, &journal.0).unwrap();
        assert_eq!((replay.replayed, replay.truncated), (1, true));
        assert!(matches!(
            cache.lookup(&a.canonical_json()),
            Lookup::Hit { .. }
        ));
        assert!(matches!(
            cache.lookup(&b.canonical_json()),
            Lookup::Miss { .. }
        ));
    }

    #[test]
    fn replay_respects_the_lru_cap() {
        let journal = TempJournal::new("cap");
        let (a, b, c) = (config(1), config(2), config(3));
        let report = |cfg: &RunConfig| RunReport::from_schedule(cfg, &cfg.run());
        {
            let (cache, _) = ResultCache::with_journal(8, &journal.0).unwrap();
            cache.insert(a.canonical_json(), report(&a));
            cache.insert(b.canonical_json(), report(&b));
            cache.insert(c.canonical_json(), report(&c));
        }
        // Replay under a smaller cap: file order is recency order, so
        // the oldest append is the one evicted.
        let (cache, replay) = ResultCache::with_journal(2, &journal.0).unwrap();
        assert_eq!(
            replay.replayed, 3,
            "all records replay before the cap trims"
        );
        let (_, _, entries, evictions) = cache.stats();
        assert_eq!((entries, evictions), (2, 1));
        assert!(matches!(
            cache.lookup(&a.canonical_json()),
            Lookup::Miss { .. }
        ));
        assert!(matches!(
            cache.lookup(&c.canonical_json()),
            Lookup::Hit { .. }
        ));
    }
}
