//! The resident simulation daemon.
//!
//! One accept loop, one handler thread per connection, one shared
//! [`WorkerPool`] and [`ResultCache`]. Connections speak the JSON-lines
//! protocol from [`crate::protocol`]: the handler reads a line, serves
//! it, writes exactly one response line, and flushes before reading the
//! next — so responses are always in request order per connection.
//!
//! # Hardening
//!
//! The daemon never trusts a peer to behave: sockets carry read/write
//! deadlines (an idle or wedged connection times out and closes instead
//! of pinning its handler thread forever), request frames are capped at
//! [`ServiceConfig::max_frame`] bytes (an oversized line is discarded
//! and answered with a structured error — it is **not** buffered), and
//! when the bounded work queue is full a `Submit` is shed with
//! [`Response::Busy`] instead of blocking the handler. Shedding keeps
//! the accept path responsive under overload and gives well-behaved
//! clients an explicit, retryable signal.
//!
//! # Fault injection
//!
//! With [`ServiceConfig::fault_plan`] set, each accepted `Submit` claims
//! a deterministic index from a [`FaultInjector`] and suffers whatever
//! the plan prescribes: `panic`/`delay` ride into the worker with the
//! task, `drop`/`corrupt` are applied by the connection handler to the
//! response frame. See `crate::fault` for the spec grammar and
//! determinism guarantees. Disabled (the default), the only cost is one
//! `Option` check per submit.
//!
//! # Shutdown sequence
//!
//! 1. Any connection sends [`Request::Shutdown`]; the daemon sets the
//!    `draining` flag and acknowledges with `ShuttingDown`.
//! 2. New `Submit`s now answer `ShuttingDown` without entering the pool.
//! 3. The accept loop keeps polling until `pending` — the count of
//!    submits between acceptance and response flush — reaches zero, so
//!    every request already in the pipeline still gets its response.
//! 4. The loop exits, the pool's queue closes, workers finish what they
//!    hold and join. `ServerHandle::join` then returns.

use crate::cache::{Lookup, ResultCache};
use crate::fault::{FaultActions, FaultInjector, FaultPlan};
use crate::pool::{SubmitError, Task, WorkerPool};
use crate::protocol::{
    Capabilities, HealthReport, Request, Response, RunReply, RunReport, ServiceStats, PROTO_VERSION,
};
use backfill_sim::canon::fnv1a_64;
use obs::metrics::{Counter, Histogram, Registry};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop polls for new connections / drain progress.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Daemon sizing and hardening knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulation worker threads. More workers = more concurrent
    /// scenarios; each holds one materialized trace plus one schedule.
    pub workers: usize,
    /// Bounded work-queue capacity. When this many tasks wait, further
    /// submits are shed with [`Response::Busy`].
    pub queue_cap: usize,
    /// Result-cache entry cap; past it the least-recently-used report
    /// is evicted on insert.
    pub cache_cap: usize,
    /// Per-connection socket read deadline. A connection idle (or
    /// wedged mid-frame) this long is closed. `None` disables.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write deadline: a peer that stops reading
    /// can stall a response write at most this long. `None` disables.
    pub write_timeout: Option<Duration>,
    /// Largest accepted request frame in bytes. An oversized line is
    /// discarded (never buffered whole) and answered with a structured
    /// non-retryable error.
    pub max_frame: usize,
    /// Append-only cache journal path; see `ResultCache::with_journal`.
    /// `None` (default) keeps the cache memory-only.
    pub journal: Option<PathBuf>,
    /// Deterministic fault plan; `None` (default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        // One worker per core (min 2), and a queue twice the worker
        // count: deep enough to keep workers fed across request bursts,
        // shallow enough that memory for queued configs stays trivial
        // and shedding engages before the daemon hoards work.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2);
        ServiceConfig {
            workers,
            queue_cap: workers * 2,
            cache_cap: ResultCache::DEFAULT_CAP,
            // Generous defaults: long enough that a deep queue of slow
            // scenarios never times out a patient client, short enough
            // that a leaked connection cannot pin a thread for hours.
            read_timeout: Some(Duration::from_secs(300)),
            write_timeout: Some(Duration::from_secs(30)),
            max_frame: 1 << 20,
            journal: None,
            fault_plan: None,
        }
    }
}

/// Counters and flags shared between the accept loop and all handlers.
///
/// Request counters live in the daemon's own metrics [`Registry`] (not
/// the process-global one, so tests running several servers in one
/// process don't pollute each other); the `Arc<Counter>` fields are
/// handles into it, kept here so the hot path never takes the registry's
/// name-map lock.
struct Inner {
    cfg: ServiceConfig,
    pool: WorkerPool,
    cache: ResultCache,
    fault: Option<FaultInjector>,
    draining: AtomicBool,
    /// Set by [`Request::Drain`]: refuse new submits but stay alive for
    /// the introspection verbs (unlike `draining`, the accept loop does
    /// not exit).
    refusing: AtomicBool,
    /// Submits between acceptance and response flush; the drain gate.
    pending: AtomicUsize,
    registry: Registry,
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    rejected: Arc<Counter>,
    /// Submits shed with `Busy` because the queue was full.
    shed: Arc<Counter>,
    /// Oversized request frames rejected.
    oversized: Arc<Counter>,
    /// Injected faults, by kind.
    fault_panics: Arc<Counter>,
    fault_drops: Arc<Counter>,
    fault_corrupts: Arc<Counter>,
    fault_delays: Arc<Counter>,
    fault_connect_drops: Arc<Counter>,
    fault_handshake_refusals: Arc<Counter>,
    wall_ms_total: Arc<Counter>,
    /// Largest single-request wall time; not a monotone sum, so it stays
    /// a raw atomic and is mirrored into a gauge at snapshot time.
    wall_ms_max: AtomicU64,
    /// Per-request service latency (`service.wall_ms`).
    wall_ms: Arc<Histogram>,
    /// Per-task simulation time as measured by the worker
    /// (`service.pool.run_wall_ms`), excluding queue wait.
    run_wall_ms: Arc<Histogram>,
}

impl Inner {
    /// Build the shared state; fallible because opening/replaying the
    /// cache journal touches the filesystem.
    fn new(cfg: ServiceConfig) -> io::Result<Self> {
        let registry = Registry::new();
        let cache = match &cfg.journal {
            Some(path) => {
                let (cache, replay) = ResultCache::with_journal(cfg.cache_cap, path)?;
                if replay.truncated {
                    obs::warn!(
                        target: "service::cache",
                        "journal {} had a torn tail: dropped {} bytes, kept {} records",
                        path.display(),
                        replay.dropped_bytes,
                        replay.replayed
                    );
                } else {
                    obs::info!(
                        target: "service::cache",
                        "journal {}: replayed {} records",
                        path.display(),
                        replay.replayed
                    );
                }
                cache
            }
            None => ResultCache::with_capacity(cfg.cache_cap),
        };
        cache.bind_metrics(&registry);
        let traces = Arc::new(crate::tracecache::TraceCache::new());
        traces.bind_metrics(&registry);
        let fault = cfg.fault_plan.clone().filter(|plan| !plan.is_empty());
        if let Some(plan) = &fault {
            obs::warn!(target: "service::fault", "fault injection ACTIVE: {plan}");
        }
        Ok(Inner {
            pool: WorkerPool::with_trace_cache(cfg.workers.max(1), cfg.queue_cap.max(1), traces),
            cache,
            fault: fault.map(FaultInjector::new),
            draining: AtomicBool::new(false),
            refusing: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            submitted: registry.counter("service.submitted"),
            completed: registry.counter("service.completed"),
            failed: registry.counter("service.failed"),
            rejected: registry.counter("service.rejected"),
            shed: registry.counter("service.shed"),
            oversized: registry.counter("service.oversized_frames"),
            fault_panics: registry.counter("service.fault.panics"),
            fault_drops: registry.counter("service.fault.drops"),
            fault_corrupts: registry.counter("service.fault.corrupts"),
            fault_delays: registry.counter("service.fault.delays"),
            fault_connect_drops: registry.counter("service.fault.connect_drops"),
            fault_handshake_refusals: registry.counter("service.fault.handshake_refusals"),
            wall_ms_total: registry.counter("service.wall_ms_total"),
            wall_ms_max: AtomicU64::new(0),
            wall_ms: registry.histogram("service.wall_ms"),
            run_wall_ms: registry.histogram("service.pool.run_wall_ms"),
            registry,
            cfg,
        })
    }

    /// One atomically-consistent-enough view of the daemon's counters.
    ///
    /// Read order is load-bearing: everything a submit can *become*
    /// (completed / failed / rejected / shed / in-flight) is read
    /// **before** `submitted`. A worker also stops counting a task as
    /// in-flight before its reply is observable (see `pool.rs`), so a
    /// snapshot can never show `completed + failed + in_flight >
    /// submitted` — a task caught mid-transition is simply not counted
    /// anywhere yet, and reading `submitted` last only ever makes the
    /// right-hand side larger.
    fn snapshot(&self) -> ServiceStats {
        let completed = self.completed.get();
        let failed = self.failed.get();
        let rejected = self.rejected.get();
        let shed = self.shed.get();
        let worker_panics = self.pool.worker_panics() as u64;
        let in_flight = self.pool.in_flight() as u64;
        let queue_depth = self.pool.queue_depth() as u64;
        let (cache_hits, cache_misses, cache_entries, cache_evictions) = self.cache.stats();
        let wall_ms_total = self.wall_ms_total.get();
        let wall_ms_max = self.wall_ms_max.load(Ordering::SeqCst);
        let draining = self.draining.load(Ordering::SeqCst);
        let submitted = self.submitted.get();
        ServiceStats {
            submitted,
            completed,
            failed,
            rejected,
            shed,
            worker_panics,
            cache_hits,
            cache_misses,
            cache_entries,
            cache_evictions,
            queue_depth,
            in_flight,
            draining,
            wall_ms_total,
            wall_ms_max,
        }
    }

    /// Liveness/readiness snapshot for the `health` verb. Served even
    /// while draining — a drain in progress is exactly when an operator
    /// wants to watch queue depth fall.
    fn health(&self) -> HealthReport {
        let (_, _, cache_entries, _) = self.cache.stats();
        let draining = self.draining.load(Ordering::SeqCst);
        let refusing = self.refusing.load(Ordering::SeqCst);
        HealthReport {
            ready: !draining && !refusing,
            draining,
            workers: self.cfg.workers as u64,
            queue_cap: self.cfg.queue_cap as u64,
            queue_depth: self.pool.queue_depth() as u64,
            in_flight: self.pool.in_flight() as u64,
            shed: self.shed.get(),
            worker_panics: self.pool.worker_panics() as u64,
            cache_entries,
            journal: self.cache.journal_health(),
            fault_plan: self
                .fault
                .as_ref()
                .map(|injector| injector.plan().to_string()),
        }
    }

    /// Refresh the point-in-time gauges so a metrics reader sees current
    /// levels rather than whatever the last refresh left behind.
    fn refresh_gauges(&self) {
        self.registry
            .gauge("service.pool.queue_depth")
            .set(self.pool.queue_depth() as i64);
        self.registry
            .gauge("service.pool.in_flight")
            .set(self.pool.in_flight() as i64);
        self.registry
            .gauge("service.pool.worker_panics")
            .set(self.pool.worker_panics() as i64);
        let (_, _, cache_entries, _) = self.cache.stats();
        self.registry
            .gauge("service.cache.entries")
            .set(cache_entries as i64);
        self.registry
            .gauge("service.draining")
            .set(self.draining.load(Ordering::SeqCst) as i64);
        self.registry
            .gauge("service.wall_ms_max")
            .set(self.wall_ms_max.load(Ordering::SeqCst) as i64);
    }

    /// Render the registry as one canonical-JSON document.
    fn metrics_snapshot(&self) -> String {
        self.refresh_gauges();
        self.registry.snapshot_json()
    }

    /// Render the registry in the Prometheus text exposition format —
    /// same state as [`Inner::metrics_snapshot`], scrape-ready.
    fn metrics_prometheus(&self) -> String {
        self.refresh_gauges();
        obs::render_prometheus(&self.registry.snapshot())
    }

    /// The sizing handshake answering [`Request::Capabilities`].
    fn capabilities(&self) -> Capabilities {
        let (_, _, cache_entries, _) = self.cache.stats();
        Capabilities {
            proto: PROTO_VERSION,
            workers: self.cfg.workers as u64,
            queue_cap: self.cfg.queue_cap as u64,
            max_frame: self.cfg.max_frame as u64,
            cache_entries,
            journaled: self.cfg.journal.is_some(),
            draining: self.draining.load(Ordering::SeqCst) || self.refusing.load(Ordering::SeqCst),
        }
    }

    fn record_wall(&self, wall_ms: u64) {
        self.wall_ms_total.add(wall_ms);
        self.wall_ms_max.fetch_max(wall_ms, Ordering::SeqCst);
        self.wall_ms.record(wall_ms);
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// send [`Request::Shutdown`] (e.g. via `Client::shutdown`) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0 to the ephemeral pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the daemon has fully drained and stopped.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// in background threads. Returns once the socket is listening (and,
    /// when a journal is configured, once its replay has finished — the
    /// daemon never answers before recovery completes).
    pub fn start<A: ToSocketAddrs>(addr: A, cfg: ServiceConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner::new(cfg)?);
        let accept = std::thread::spawn(move || accept_loop(listener, inner));
        Ok(ServerHandle {
            addr,
            accept: Some(accept),
        })
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = inner.clone();
                // Handlers run blocking I/O; one thread per connection.
                std::thread::spawn(move || handle_connection(stream, &inner));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if inner.draining.load(Ordering::SeqCst)
                    && inner.pending.load(Ordering::SeqCst) == 0
                {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
    // Close the queue and wait for workers; everything still queued was
    // counted in `pending`, so its handlers get replies before this
    // point could be reached only via the drain gate above.
    inner.pool.shutdown();
}

/// One framing step's outcome (see [`read_frame`]).
enum Frame {
    /// A complete `\n`-terminated line, newline stripped.
    Line(String),
    /// The line exceeded the frame cap; its bytes were discarded, the
    /// stream is positioned after its terminating newline.
    TooLong,
    /// Clean end of stream (a partial trailing line is also treated as
    /// EOF: the peer vanished mid-frame, there is nobody to answer).
    Eof,
}

/// Read one length-capped frame. Unlike `BufReader::read_line`, an
/// oversized frame is *discarded as it streams past* — the daemon's
/// memory stays bounded by `max` no matter what the peer sends.
fn read_frame<R: BufRead>(reader: &mut R, max: usize) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        let (consumed, done) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                // EOF, possibly mid-frame: the peer is gone either way,
                // so even an oversized partial line reports as Eof.
                return Ok(Frame::Eof);
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !discarding {
                        buf.extend_from_slice(&chunk[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !discarding {
                        buf.extend_from_slice(chunk);
                    }
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if buf.len() > max {
            discarding = true;
            buf.clear();
        }
        if done {
            return Ok(if discarding {
                Frame::TooLong
            } else {
                Frame::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

/// What the connection handler must do to the response frame, as
/// prescribed by the fault plan (always `None` without one).
#[derive(Clone, Copy, PartialEq)]
enum WireFault {
    None,
    /// Close the connection without writing the response.
    Drop,
    /// Write a deliberately undecodable frame in place of the response.
    Corrupt,
}

/// One served request: the response plus handler-side bookkeeping.
struct Served {
    response: Response,
    /// True when this request holds a `pending` slot that the handler
    /// must release after the response flush (tracked `Submit`s only).
    gates_drain: bool,
    wire: WireFault,
}

impl Served {
    fn plain(response: Response) -> Self {
        Served {
            response,
            gates_drain: false,
            wire: WireFault::None,
        }
    }
}

fn handle_connection(stream: TcpStream, inner: &Inner) {
    // Injected connection fault: each accepted connection claims the
    // next `connect` index; a match closes the socket before any frame
    // is read (the client sees EOF / connection reset).
    if let Some(fault) = &inner.fault {
        let (index, drop) = fault.next_connect();
        if drop {
            inner.fault_connect_drops.inc();
            obs::debug!(target: "service::fault",
                "dropping accepted connection #{index} at accept");
            return;
        }
    }
    let _ = stream.set_nodelay(true);
    // Socket deadlines: a peer that stops sending (or reading) cannot
    // pin this thread past the configured timeouts.
    let _ = stream.set_read_timeout(inner.cfg.read_timeout);
    let _ = stream.set_write_timeout(inner.cfg.write_timeout);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // Blocking reads on the handler side (the listener's nonblocking
    // flag is per-socket, but inherit rules vary — set it explicitly).
    let _ = stream.set_nonblocking(false);
    let mut reader = BufReader::new(stream);
    loop {
        let served = match read_frame(&mut reader, inner.cfg.max_frame) {
            Ok(Frame::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<Request>(&line) {
                    Ok(request) => serve(request, inner),
                    Err(e) => Served::plain(Response::Error {
                        message: format!("malformed request: {e}"),
                        config_hash: 0,
                        retryable: false,
                    }),
                }
            }
            Ok(Frame::TooLong) => {
                inner.oversized.inc();
                obs::warn!(
                    target: "service::server",
                    "rejected oversized request frame (> {} bytes)",
                    inner.cfg.max_frame
                );
                Served::plain(Response::Error {
                    message: format!(
                        "request frame exceeds max_frame ({} bytes)",
                        inner.cfg.max_frame
                    ),
                    config_hash: 0,
                    retryable: false,
                })
            }
            Ok(Frame::Eof) => break,
            // Read deadline elapsed or the peer vanished: close. Any
            // tracked submit already released its pending slot at flush
            // time, so the drain gate is unaffected.
            Err(_) => break,
        };
        if served.wire == WireFault::Drop {
            // Injected connection drop: vanish instead of answering.
            obs::debug!(target: "service::fault", "dropping connection instead of responding");
            if served.gates_drain {
                inner.pending.fetch_sub(1, Ordering::SeqCst);
            }
            break;
        }
        let mut payload = serde_json::to_string(&served.response).expect("responses serialize");
        if served.wire == WireFault::Corrupt {
            // Still exactly one line, so the stream stays frame-synced
            // and the client can retry on this same connection — but the
            // leading '!' makes the frame undecodable as a Response.
            obs::debug!(target: "service::fault", "corrupting response frame");
            payload.insert(0, '!');
        }
        payload.push('\n');
        let flushed = writer
            .write_all(payload.as_bytes())
            .and_then(|()| writer.flush());
        // The response is now out (or the peer is gone); either way this
        // request no longer gates the drain.
        if served.gates_drain {
            inner.pending.fetch_sub(1, Ordering::SeqCst);
        }
        if flushed.is_err() {
            break;
        }
    }
}

/// Serve one request. A tracked `Submit` increments `pending` here and
/// the connection handler decrements it after the response flush (or
/// after an injected drop).
fn serve(request: Request, inner: &Inner) -> Served {
    match request {
        Request::Submit { config, trace } => {
            if inner.draining.load(Ordering::SeqCst) || inner.refusing.load(Ordering::SeqCst) {
                inner.rejected.inc();
                return Served::plain(Response::ShuttingDown);
            }
            // A traced submit arms span recording for the whole daemon;
            // untraced traffic stays on the zero-cost disabled path.
            if trace.is_some() {
                obs::span::set_enabled(true);
            }
            // Claim this submit's fault actions (index order = daemon
            // acceptance order; a plan-free daemon skips all of this).
            let actions = match &inner.fault {
                Some(injector) => {
                    let (index, actions) = injector.next();
                    if !actions.is_none() {
                        obs::info!(
                            target: "service::fault",
                            "submit #{index}: injecting {actions:?}"
                        );
                        if actions.panic {
                            inner.fault_panics.inc();
                        }
                        if actions.drop {
                            inner.fault_drops.inc();
                        }
                        if actions.corrupt {
                            inner.fault_corrupts.inc();
                        }
                        if actions.delay.is_some() {
                            inner.fault_delays.inc();
                        }
                    }
                    actions
                }
                None => FaultActions::default(),
            };
            inner.pending.fetch_add(1, Ordering::SeqCst);
            inner.submitted.inc();
            let response = serve_submit(config, trace, actions, inner);
            match response {
                Response::ShuttingDown => {
                    // Refused after all (pool closed under us): stop
                    // gating the drain right away.
                    inner.pending.fetch_sub(1, Ordering::SeqCst);
                    inner.rejected.inc();
                    return Served::plain(response);
                }
                Response::Busy => {
                    // Shed: nothing queued, nothing owed; release the
                    // drain slot but still honor wire faults so `Busy`
                    // under chaos behaves like any other frame.
                    inner.pending.fetch_sub(1, Ordering::SeqCst);
                    return Served {
                        response,
                        gates_drain: false,
                        wire: wire_fault(actions),
                    };
                }
                _ => {}
            }
            Served {
                response,
                gates_drain: true,
                wire: wire_fault(actions),
            }
        }
        Request::Stats => Served::plain(Response::Stats(inner.snapshot())),
        Request::Metrics => Served::plain(Response::Metrics {
            json: inner.metrics_snapshot(),
        }),
        Request::Health => Served::plain(Response::Health(inner.health())),
        Request::Capabilities => {
            // Injected handshake fault: each Capabilities request claims
            // the next `handshake` index; a match is refused with a
            // non-retryable error so a probing coordinator fails this
            // attempt cleanly (and deterministically) instead of waiting
            // out a retry budget.
            if let Some(fault) = &inner.fault {
                let (index, refuse) = fault.next_handshake();
                if refuse {
                    inner.fault_handshake_refusals.inc();
                    obs::debug!(target: "service::fault",
                        "refusing capabilities handshake #{index}");
                    return Served::plain(Response::Error {
                        message: format!("injected handshake refusal (#{index})"),
                        config_hash: 0,
                        retryable: false,
                    });
                }
            }
            Served::plain(Response::Capabilities(inner.capabilities()))
        }
        Request::Spans => {
            // Hand the caller every span buffered since the last drain —
            // handler threads flush after each traced submit, so this
            // covers all finished work.
            obs::span::flush_thread();
            let spans = obs::span::drain().into_iter().map(Into::into).collect();
            Served::plain(Response::Spans { spans })
        }
        Request::MetricsProm => Served::plain(Response::MetricsProm {
            text: inner.metrics_prometheus(),
        }),
        Request::Drain => {
            inner.refusing.store(true, Ordering::SeqCst);
            obs::info!(
                target: "service::server",
                "drained by request: refusing new submits, staying alive"
            );
            Served::plain(Response::Draining)
        }
        Request::Shutdown => {
            inner.draining.store(true, Ordering::SeqCst);
            Served::plain(Response::ShuttingDown)
        }
    }
}

fn wire_fault(actions: FaultActions) -> WireFault {
    if actions.drop {
        WireFault::Drop
    } else if actions.corrupt {
        WireFault::Corrupt
    } else {
        WireFault::None
    }
}

fn serve_submit(
    config: backfill_sim::RunConfig,
    trace: Option<crate::protocol::TraceContext>,
    actions: FaultActions,
    inner: &Inner,
) -> Response {
    let started = Instant::now();
    let canonical = config.canonical_json();
    match inner.cache.lookup(&canonical) {
        Lookup::Hit { hash, report } => {
            // `panic`/`delay` act inside a worker; a hit never reaches
            // one, so only the wire-level faults (handled by the
            // connection handler) apply here.
            if let Some(trace) = trace {
                drop(obs::Span::child(trace.ctx(), "cache.hit"));
                obs::span::flush_thread();
            }
            let wall_ms = started.elapsed().as_millis() as u64;
            inner.completed.inc();
            inner.record_wall(wall_ms);
            Response::Run(RunReply {
                config_hash: hash,
                cached: true,
                wall_ms,
                report,
            })
        }
        Lookup::Miss { hash } => {
            let miss_span = trace.map(|t| obs::Span::child(t.ctx(), "cache.miss"));
            let (reply_tx, reply_rx) = mpsc::channel();
            let task = Task {
                config,
                trace: trace.map(|t| t.ctx()),
                accepted: Instant::now(),
                reply: reply_tx,
                fault: actions,
            };
            match inner.pool.try_submit(task) {
                Ok(()) => {}
                Err(SubmitError::Full(_)) => {
                    inner.shed.inc();
                    obs::warn!(
                        target: "service::server",
                        "queue full ({}): shedding submit {:x}",
                        inner.cfg.queue_cap,
                        hash
                    );
                    return Response::Busy;
                }
                Err(SubmitError::Closed(_)) => return Response::ShuttingDown,
            }
            let recv = reply_rx.recv();
            // The miss span covers queue wait + run; end it before the
            // outcome branches so crash paths keep a well-formed tree.
            drop(miss_span);
            if trace.is_some() {
                obs::span::flush_thread();
            }
            let result = match recv {
                Ok(result) => result,
                Err(_) => {
                    // The worker dropped the reply without sending: it
                    // panicked outside the simulation boundary (e.g. an
                    // injected fault). The pool cannot have been torn
                    // down — this handler still holds a `pending` slot,
                    // which blocks the drain gate — so the crash is the
                    // only explanation, and a retry may well succeed.
                    inner.failed.inc();
                    obs::warn!(
                        target: "service::server",
                        "worker crashed serving submit {:x}; reported as retryable",
                        hash
                    );
                    return Response::Error {
                        message: "worker crashed while serving this request; retry is safe"
                            .to_string(),
                        config_hash: hash,
                        retryable: true,
                    };
                }
            };
            let wall_ms = started.elapsed().as_millis() as u64;
            inner.record_wall(wall_ms);
            inner.run_wall_ms.record(result.run_wall.as_millis() as u64);
            // Fold the run's per-phase timing into the daemon registry so
            // `metrics`/`metrics --format prom` expose sim self-profiling.
            if let Some(phases) = &result.phases {
                phases.flush_into(&inner.registry);
            }
            match result.outcome {
                Ok(schedule) => {
                    let report = RunReport::from_schedule(&config, &schedule);
                    // Mirror the run's scheduler-internal counters into
                    // the daemon registry so the `metrics` verb covers
                    // the sim core, not just the service shell.
                    if let Some(stats) = &report.profile {
                        backfill_sim::flush_profile_stats(&inner.registry, stats);
                    }
                    inner.registry.counter("sim.runs").inc();
                    inner.registry.counter("sim.events").add(report.events);
                    inner.cache.insert(canonical, report.clone());
                    inner.completed.inc();
                    Response::Run(RunReply {
                        config_hash: hash,
                        cached: false,
                        wall_ms,
                        report,
                    })
                }
                Err(cell_error) => {
                    inner.failed.inc();
                    Response::Error {
                        message: cell_error.to_string(),
                        config_hash: fnv1a_64(cell_error.config.canonical_json().as_bytes()),
                        retryable: false,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn default_sizing_is_sane() {
        let cfg = ServiceConfig::default();
        assert!(cfg.workers >= 2);
        assert!(cfg.queue_cap >= cfg.workers, "queue must cover the pool");
        assert!(cfg.read_timeout.is_some() && cfg.write_timeout.is_some());
        assert!(cfg.max_frame >= 64 * 1024, "frames must fit real configs");
    }

    #[test]
    fn read_frame_splits_lines_and_caps_length() {
        let mut reader = Cursor::new(b"first\nsecond\n".to_vec());
        assert!(matches!(
            read_frame(&mut reader, 64).unwrap(),
            Frame::Line(line) if line == "first"
        ));
        assert!(matches!(
            read_frame(&mut reader, 64).unwrap(),
            Frame::Line(line) if line == "second"
        ));
        assert!(matches!(read_frame(&mut reader, 64).unwrap(), Frame::Eof));

        // An oversized line is consumed and reported, and the frame
        // after it still parses — the stream stays line-synced.
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&[b'x'; 100]);
        oversized.push(b'\n');
        oversized.extend_from_slice(b"after\n");
        let mut reader = Cursor::new(oversized);
        assert!(matches!(
            read_frame(&mut reader, 10).unwrap(),
            Frame::TooLong
        ));
        assert!(matches!(
            read_frame(&mut reader, 10).unwrap(),
            Frame::Line(line) if line == "after"
        ));

        // A line of exactly `max` bytes is allowed (the cap is a limit,
        // not a strict bound), and a partial trailing line is EOF.
        let mut reader = Cursor::new(b"12345\npartial".to_vec());
        assert!(matches!(
            read_frame(&mut reader, 5).unwrap(),
            Frame::Line(line) if line == "12345"
        ));
        assert!(matches!(read_frame(&mut reader, 5).unwrap(), Frame::Eof));
    }

    #[test]
    fn start_binds_ephemeral_port() {
        let handle = Server::start(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 1,
                queue_cap: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        assert_ne!(addr.port(), 0, "port 0 must resolve to a real port");
        // Shut it down over the wire so join() returns. The read is
        // deadline-bounded: a hung daemon fails this test with a timeout
        // error instead of hanging the suite.
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer
            .write_all(
                format!("{}\n", serde_json::to_string(&Request::Shutdown).unwrap()).as_bytes(),
            )
            .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        assert!(matches!(response, Response::ShuttingDown));
        handle.join();
    }
}
