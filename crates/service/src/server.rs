//! The resident simulation daemon.
//!
//! One accept loop, one handler thread per connection, one shared
//! [`WorkerPool`] and [`ResultCache`]. Connections speak the JSON-lines
//! protocol from [`crate::protocol`]: the handler reads a line, serves
//! it, writes exactly one response line, and flushes before reading the
//! next — so responses are always in request order per connection.
//!
//! # Shutdown sequence
//!
//! 1. Any connection sends [`Request::Shutdown`]; the daemon sets the
//!    `draining` flag and acknowledges with `ShuttingDown`.
//! 2. New `Submit`s now answer `ShuttingDown` without entering the pool.
//! 3. The accept loop keeps polling until `pending` — the count of
//!    submits between acceptance and response flush — reaches zero, so
//!    every request already in the pipeline still gets its response.
//! 4. The loop exits, the pool's queue closes, workers finish what they
//!    hold and join. `ServerHandle::join` then returns.

use crate::cache::{Lookup, ResultCache};
use crate::pool::{PoolClosed, Task, WorkerPool};
use crate::protocol::{Request, Response, RunReply, RunReport, ServiceStats};
use backfill_sim::canon::fnv1a_64;
use obs::metrics::{Counter, Histogram, Registry};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop polls for new connections / drain progress.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Daemon sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Simulation worker threads. More workers = more concurrent
    /// scenarios; each holds one materialized trace plus one schedule.
    pub workers: usize,
    /// Bounded work-queue capacity. When this many tasks wait, further
    /// submits block their connection handlers (backpressure).
    pub queue_cap: usize,
    /// Result-cache entry cap; past it the least-recently-used report
    /// is evicted on insert.
    pub cache_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        // One worker per core (min 2), and a queue twice the worker
        // count: deep enough to keep workers fed across request bursts,
        // shallow enough that memory for queued configs stays trivial
        // and backpressure engages before the daemon hoards work.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2);
        ServiceConfig {
            workers,
            queue_cap: workers * 2,
            cache_cap: ResultCache::DEFAULT_CAP,
        }
    }
}

/// Counters and flags shared between the accept loop and all handlers.
///
/// Request counters live in the daemon's own metrics [`Registry`] (not
/// the process-global one, so tests running several servers in one
/// process don't pollute each other); the `Arc<Counter>` fields are
/// handles into it, kept here so the hot path never takes the registry's
/// name-map lock.
struct Inner {
    pool: WorkerPool,
    cache: ResultCache,
    draining: AtomicBool,
    /// Submits between acceptance and response flush; the drain gate.
    pending: AtomicUsize,
    registry: Registry,
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    rejected: Arc<Counter>,
    wall_ms_total: Arc<Counter>,
    /// Largest single-request wall time; not a monotone sum, so it stays
    /// a raw atomic and is mirrored into a gauge at snapshot time.
    wall_ms_max: AtomicU64,
    /// Per-request service latency (`service.wall_ms`).
    wall_ms: Arc<Histogram>,
    /// Per-task simulation time as measured by the worker
    /// (`service.pool.run_wall_ms`), excluding queue wait.
    run_wall_ms: Arc<Histogram>,
}

impl Inner {
    fn new(cfg: ServiceConfig) -> Self {
        let registry = Registry::new();
        let cache = ResultCache::with_capacity(cfg.cache_cap);
        cache.bind_metrics(&registry);
        Inner {
            pool: WorkerPool::new(cfg.workers.max(1), cfg.queue_cap.max(1)),
            cache,
            draining: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            submitted: registry.counter("service.submitted"),
            completed: registry.counter("service.completed"),
            failed: registry.counter("service.failed"),
            rejected: registry.counter("service.rejected"),
            wall_ms_total: registry.counter("service.wall_ms_total"),
            wall_ms_max: AtomicU64::new(0),
            wall_ms: registry.histogram("service.wall_ms"),
            run_wall_ms: registry.histogram("service.pool.run_wall_ms"),
            registry,
        }
    }

    /// One atomically-consistent-enough view of the daemon's counters.
    ///
    /// Read order is load-bearing: everything a submit can *become*
    /// (completed / failed / rejected / in-flight) is read **before**
    /// `submitted`. A worker also stops counting a task as in-flight
    /// before its reply is observable (see `pool.rs`), so a snapshot can
    /// never show `completed + failed + in_flight > submitted` — a task
    /// caught mid-transition is simply not counted anywhere yet, and
    /// reading `submitted` last only ever makes the right-hand side
    /// larger.
    fn snapshot(&self) -> ServiceStats {
        let completed = self.completed.get();
        let failed = self.failed.get();
        let rejected = self.rejected.get();
        let in_flight = self.pool.in_flight() as u64;
        let queue_depth = self.pool.queue_depth() as u64;
        let (cache_hits, cache_misses, cache_entries, cache_evictions) = self.cache.stats();
        let wall_ms_total = self.wall_ms_total.get();
        let wall_ms_max = self.wall_ms_max.load(Ordering::SeqCst);
        let draining = self.draining.load(Ordering::SeqCst);
        let submitted = self.submitted.get();
        ServiceStats {
            submitted,
            completed,
            failed,
            rejected,
            cache_hits,
            cache_misses,
            cache_entries,
            cache_evictions,
            queue_depth,
            in_flight,
            draining,
            wall_ms_total,
            wall_ms_max,
        }
    }

    /// Render the registry as one canonical-JSON document, refreshing
    /// the point-in-time gauges first so the reader sees current levels
    /// rather than whatever the last refresh left behind.
    fn metrics_snapshot(&self) -> String {
        self.registry
            .gauge("service.pool.queue_depth")
            .set(self.pool.queue_depth() as i64);
        self.registry
            .gauge("service.pool.in_flight")
            .set(self.pool.in_flight() as i64);
        let (_, _, cache_entries, _) = self.cache.stats();
        self.registry
            .gauge("service.cache.entries")
            .set(cache_entries as i64);
        self.registry
            .gauge("service.draining")
            .set(self.draining.load(Ordering::SeqCst) as i64);
        self.registry
            .gauge("service.wall_ms_max")
            .set(self.wall_ms_max.load(Ordering::SeqCst) as i64);
        self.registry.snapshot_json()
    }

    fn record_wall(&self, wall_ms: u64) {
        self.wall_ms_total.add(wall_ms);
        self.wall_ms_max.fetch_max(wall_ms, Ordering::SeqCst);
        self.wall_ms.record(wall_ms);
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// send [`Request::Shutdown`] (e.g. via `Client::shutdown`) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0 to the ephemeral pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the daemon has fully drained and stopped.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// in background threads. Returns once the socket is listening.
    pub fn start<A: ToSocketAddrs>(addr: A, cfg: ServiceConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner::new(cfg));
        let accept = std::thread::spawn(move || accept_loop(listener, inner));
        Ok(ServerHandle {
            addr,
            accept: Some(accept),
        })
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = inner.clone();
                // Handlers run blocking I/O; one thread per connection.
                std::thread::spawn(move || handle_connection(stream, &inner));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if inner.draining.load(Ordering::SeqCst)
                    && inner.pending.load(Ordering::SeqCst) == 0
                {
                    break;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
    // Close the queue and wait for workers; everything still queued was
    // counted in `pending`, so its handlers get replies before this
    // point could be reached only via the drain gate above.
    inner.pool.shutdown();
}

fn handle_connection(stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // Blocking reads on the handler side (the listener's nonblocking
    // flag is per-socket, but inherit rules vary — set it explicitly).
    let _ = stream.set_nonblocking(false);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // peer vanished mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, gates_drain) = match serde_json::from_str::<Request>(&line) {
            Ok(request) => serve(request, inner),
            Err(e) => (
                Response::Error {
                    message: format!("malformed request: {e}"),
                    config_hash: 0,
                },
                false,
            ),
        };
        let mut payload = serde_json::to_string(&response).expect("responses serialize");
        payload.push('\n');
        let flushed = writer
            .write_all(payload.as_bytes())
            .and_then(|()| writer.flush());
        // The response is now out (or the peer is gone); either way this
        // request no longer gates the drain.
        if gates_drain {
            inner.pending.fetch_sub(1, Ordering::SeqCst);
        }
        if flushed.is_err() {
            break;
        }
    }
}

/// Serve one request. Returns the response plus whether it still gates
/// the drain: a tracked `Submit` increments `pending` here and the
/// connection handler decrements it after the response flush.
fn serve(request: Request, inner: &Inner) -> (Response, bool) {
    match request {
        Request::Submit { config } => {
            if inner.draining.load(Ordering::SeqCst) {
                inner.rejected.inc();
                return (Response::ShuttingDown, false);
            }
            inner.pending.fetch_add(1, Ordering::SeqCst);
            inner.submitted.inc();
            let response = serve_submit(config, inner);
            if matches!(response, Response::ShuttingDown) {
                // Refused after all (pool closed under us): stop gating
                // the drain right away.
                inner.pending.fetch_sub(1, Ordering::SeqCst);
                inner.rejected.inc();
                return (response, false);
            }
            (response, true)
        }
        Request::Stats => (Response::Stats(inner.snapshot()), false),
        Request::Metrics => (
            Response::Metrics {
                json: inner.metrics_snapshot(),
            },
            false,
        ),
        Request::Shutdown => {
            inner.draining.store(true, Ordering::SeqCst);
            (Response::ShuttingDown, false)
        }
    }
}

fn serve_submit(config: backfill_sim::RunConfig, inner: &Inner) -> Response {
    let started = Instant::now();
    let canonical = config.canonical_json();
    match inner.cache.lookup(&canonical) {
        Lookup::Hit { hash, report } => {
            let wall_ms = started.elapsed().as_millis() as u64;
            inner.completed.inc();
            inner.record_wall(wall_ms);
            Response::Run(RunReply {
                config_hash: hash,
                cached: true,
                wall_ms,
                report,
            })
        }
        Lookup::Miss { hash } => {
            let (reply_tx, reply_rx) = mpsc::channel();
            let submitted = inner.pool.submit(Task {
                config,
                reply: reply_tx,
            });
            if submitted == Err(PoolClosed) {
                return Response::ShuttingDown;
            }
            let result = match reply_rx.recv() {
                Ok(result) => result,
                Err(_) => {
                    // Worker vanished without replying — only possible if
                    // the pool was torn down mid-task; treat as refusal.
                    return Response::ShuttingDown;
                }
            };
            let wall_ms = started.elapsed().as_millis() as u64;
            inner.record_wall(wall_ms);
            inner.run_wall_ms.record(result.run_wall.as_millis() as u64);
            match result.outcome {
                Ok(schedule) => {
                    let report = RunReport::from_schedule(&config, &schedule);
                    // Mirror the run's scheduler-internal counters into
                    // the daemon registry so the `metrics` verb covers
                    // the sim core, not just the service shell.
                    if let Some(stats) = &report.profile {
                        backfill_sim::flush_profile_stats(&inner.registry, stats);
                    }
                    inner.registry.counter("sim.runs").inc();
                    inner.registry.counter("sim.events").add(report.events);
                    inner.cache.insert(canonical, report.clone());
                    inner.completed.inc();
                    Response::Run(RunReply {
                        config_hash: hash,
                        cached: false,
                        wall_ms,
                        report,
                    })
                }
                Err(cell_error) => {
                    inner.failed.inc();
                    Response::Error {
                        message: cell_error.to_string(),
                        config_hash: fnv1a_64(cell_error.config.canonical_json().as_bytes()),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizing_is_sane() {
        let cfg = ServiceConfig::default();
        assert!(cfg.workers >= 2);
        assert!(cfg.queue_cap >= cfg.workers, "queue must cover the pool");
    }

    #[test]
    fn start_binds_ephemeral_port() {
        let handle = Server::start(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 1,
                queue_cap: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        assert_ne!(addr.port(), 0, "port 0 must resolve to a real port");
        // Shut it down over the wire so join() returns.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer
            .write_all(
                format!("{}\n", serde_json::to_string(&Request::Shutdown).unwrap()).as_bytes(),
            )
            .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        assert!(matches!(response, Response::ShuttingDown));
        handle.join();
    }
}
