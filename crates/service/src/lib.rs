//! Resident simulation service for the backfilling testbed.
//!
//! Sweeping the paper's scenario grid re-pays trace generation and
//! simulation on every CLI invocation. This crate keeps a simulator
//! resident instead: the `bfsimd` daemon accepts
//! [`RunConfig`](backfill_sim::RunConfig)s as
//! JSON lines over localhost TCP, executes them on a bounded worker
//! pool, and memoizes every completed report in a content-addressed
//! cache — so any config the daemon has seen before is answered in
//! microseconds, byte-identical to the fresh run.
//!
//! Crate map:
//!
//! * [`protocol`] — request/response message types (shared serde data);
//! * [`pool`] — bounded worker pool: backpressure via a bounded
//!   channel, per-task panic isolation via `backfill_sim::run_cell`;
//! * [`cache`] — result memoization keyed by canonical config JSON;
//! * [`server`] — accept loop, connection handlers, graceful drain;
//! * [`client`] — blocking client used by `bfsim submit|stats|shutdown`.
//!
//! ```no_run
//! use service::{Client, Server, ServiceConfig};
//! use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
//! use sched::Policy;
//!
//! let handle = Server::start("127.0.0.1:0", ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let config = RunConfig {
//!     scenario: Scenario::high_load(TraceSource::Ctc { jobs: 500, seed: 42 }),
//!     kind: SchedulerKind::Easy,
//!     policy: Policy::Sjf,
//! };
//! let first = client.submit(&config).unwrap(); // simulated
//! let again = client.submit(&config).unwrap(); // served from cache
//! assert!(!first.cached && again.cached);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod pool;
pub mod protocol;
pub mod server;

pub use cache::{Lookup, ResultCache};
pub use client::{Client, ClientError};
pub use pool::{Task, TaskResult, WorkerPool};
pub use protocol::{Request, Response, RunReply, RunReport, ServiceStats};
pub use server::{Server, ServerHandle, ServiceConfig};
