//! Resident simulation service for the backfilling testbed.
//!
//! Sweeping the paper's scenario grid re-pays trace generation and
//! simulation on every CLI invocation. This crate keeps a simulator
//! resident instead: the `bfsimd` daemon accepts
//! [`RunConfig`](backfill_sim::RunConfig)s as
//! JSON lines over localhost TCP, executes them on a bounded worker
//! pool, and memoizes every completed report in a content-addressed
//! cache — so any config the daemon has seen before is answered in
//! microseconds, byte-identical to the fresh run.
//!
//! The service layer is built to survive a hostile world — see
//! DESIGN.md §13. Sockets carry deadlines, oversized frames are shed
//! with structured errors, a full queue answers `Busy` instead of
//! blocking, workers survive panics, the cache can journal to disk and
//! replay after a crash, and a deterministic [`fault`] plan can inject
//! panics / drops / corruption / latency for reproducible chaos tests.
//!
//! Crate map:
//!
//! * [`protocol`] — request/response message types (shared serde data);
//! * [`pool`] — bounded worker pool: shedding via `try_submit`,
//!   per-task panic isolation (worker-level `catch_unwind` plus
//!   `backfill_sim::run_cell`'s inner boundary);
//! * [`cache`] — result memoization keyed by canonical config JSON,
//!   optionally crash-recoverable via an append-only JSONL journal;
//! * [`fault`] — seedable deterministic fault injection plans;
//! * [`server`] — accept loop, connection handlers, hardening,
//!   graceful drain;
//! * [`client`] — blocking [`Client`] plus the deadline/retry-wrapped
//!   [`ResilientClient`] used by `bfsim submit|stats|metrics|health`.
//!
//! ```no_run
//! use service::{Client, Server, ServiceConfig};
//! use backfill_sim::{RunConfig, Scenario, SchedulerKind, TraceSource};
//! use sched::Policy;
//!
//! let handle = Server::start("127.0.0.1:0", ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let config = RunConfig {
//!     scenario: Scenario::high_load(TraceSource::Ctc { jobs: 500, seed: 42 }),
//!     kind: SchedulerKind::Easy,
//!     policy: Policy::Sjf,
//! };
//! let first = client.submit(&config).unwrap(); // simulated
//! let again = client.submit(&config).unwrap(); // served from cache
//! assert!(!first.cached && again.cached);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod fault;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod supervisor;
pub mod tracecache;

pub use cache::{JournalReplay, Lookup, ResultCache};
pub use client::{Backoff, Client, ClientError, ClientOptions, ResilientClient, RetryPolicy};
pub use fault::{FaultActions, FaultInjector, FaultPlan};
pub use pool::{SubmitError, Task, TaskResult, WorkerPool};
pub use protocol::{
    Capabilities, HealthReport, JournalHealth, Request, Response, RunReply, RunReport,
    ServiceStats, TraceContext, WireSpan, PROTO_VERSION,
};
pub use server::{Server, ServerHandle, ServiceConfig};
pub use supervisor::{
    Breaker, BreakerPolicy, ChildStatus, ChildView, RestartDecision, Supervisor, SupervisorReport,
    SupervisorSpec,
};
