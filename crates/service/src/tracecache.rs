//! Scenario-keyed trace cache for the worker pool.
//!
//! A sweep submitted to `bfsimd` is dozens of (scheduler × policy) cells
//! over a handful of scenarios, but tasks arrive one by one, so the pool
//! cannot group them the way `run_all` does. Instead the workers share
//! this cache: traces are memoized under the **canonical JSON** of their
//! [`Scenario`] (same keying discipline as the result cache — full text,
//! not a hash, so distinct scenarios can never alias), and a worker that
//! misses materializes once and publishes the `Arc<Trace>` for everyone
//! after it.
//!
//! The cache is bounded with the same LRU-by-tick scan as
//! [`ResultCache`](crate::cache::ResultCache): traces are a few MB each,
//! so the cap is small, and an eviction scan only happens after a full
//! trace materialization. Two workers racing on the same scenario may
//! both materialize; materialization is deterministic, so last-write-wins
//! is harmless. A scenario whose materialization panics is **not**
//! cached — every request for it re-runs (and re-fails), exactly like the
//! per-cell fault boundary in `run_cell`.

use backfill_sim::{materialize_caught, Scenario};
use obs::metrics::{Counter, Metric, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use workload::Trace;

/// A memoized trace plus its last-touched tick.
#[derive(Debug)]
struct Entry {
    trace: Arc<Trace>,
    /// Logical LRU clock value of the last lookup hit or insert.
    tick: u64,
}

/// Guarded state: the map and the logical clock it stamps entries with.
#[derive(Debug, Default)]
struct Slots {
    map: HashMap<String, Entry>,
    clock: u64,
}

impl Slots {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// Thread-safe memoization of materialized traces, keyed by canonical
/// scenario JSON, bounded to `cap` entries with LRU eviction. Counters
/// are monotone over the cache's lifetime.
#[derive(Debug)]
pub struct TraceCache {
    slots: Mutex<Slots>,
    cap: usize,
    // Shared obs handles so the owning daemon can `bind_metrics` them
    // into its registry; the cache increments, the registry reads.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl Default for TraceCache {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }
}

impl TraceCache {
    /// Default entry cap. A full paper sweep spans ~6 scenarios and a
    /// 20k-job trace is a few MB, so a small cap holds several complete
    /// sweeps' worth of traces without ballooning the daemon.
    pub const DEFAULT_CAP: usize = 32;

    /// Create an empty cache with the default entry cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty cache holding at most `cap` entries (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        TraceCache {
            slots: Mutex::new(Slots::default()),
            cap: cap.max(1),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
        }
    }

    /// Expose the cache's counters to `registry` under
    /// `service.trace_cache.{hits,misses,evictions}`.
    pub fn bind_metrics(&self, registry: &Registry) {
        registry.bind(
            "service.trace_cache.hits",
            Metric::Counter(self.hits.clone()),
        );
        registry.bind(
            "service.trace_cache.misses",
            Metric::Counter(self.misses.clone()),
        );
        registry.bind(
            "service.trace_cache.evictions",
            Metric::Counter(self.evictions.clone()),
        );
    }

    /// The scenario's trace: served from cache on a hit (refreshing
    /// recency), materialized — outside the lock — and published on a
    /// miss. A panic during materialization comes back as its rendered
    /// text and leaves the cache untouched.
    pub fn get_or_materialize(&self, scenario: &Scenario) -> Result<Arc<Trace>, String> {
        let key = scenario.canonical_json();
        {
            let mut slots = self.slots.lock();
            let tick = slots.tick();
            if let Some(entry) = slots.map.get_mut(&key) {
                entry.tick = tick;
                self.hits.inc();
                return Ok(entry.trace.clone());
            }
        }
        self.misses.inc();
        // Materialize with the lock released: a multi-second trace
        // generation must not stall every other worker's lookups.
        let trace = Arc::new(materialize_caught(scenario)?);
        let mut slots = self.slots.lock();
        let tick = slots.tick();
        if slots.map.len() >= self.cap && !slots.map.contains_key(&key) {
            let coldest = slots
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("cap >= 1, so a full map is non-empty");
            slots.map.remove(&coldest);
            self.evictions.inc();
        }
        slots.map.insert(
            key,
            Entry {
                trace: trace.clone(),
                tick,
            },
        );
        Ok(trace)
    }

    /// `(hits, misses, entries, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.get(),
            self.misses.get(),
            self.slots.lock().map.len() as u64,
            self.evictions.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfill_sim::{Scenario, TraceSource};

    fn scenario(seed: u64, load: f64) -> Scenario {
        Scenario {
            source: TraceSource::Ctc { jobs: 60, seed },
            estimate: workload::EstimateModel::Exact,
            estimate_seed: 1,
            load: Some(load),
        }
    }

    #[test]
    fn second_lookup_shares_the_first_materialization() {
        let cache = TraceCache::new();
        let sc = scenario(1, 0.9);
        let a = cache.get_or_materialize(&sc).unwrap();
        let b = cache.get_or_materialize(&sc).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the cached trace");
        assert_eq!(cache.stats(), (1, 1, 1, 0));
    }

    #[test]
    fn distinct_scenarios_occupy_distinct_slots() {
        let cache = TraceCache::new();
        let a = cache.get_or_materialize(&scenario(1, 0.9)).unwrap();
        let b = cache.get_or_materialize(&scenario(2, 0.9)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (0, 2, 2, 0));
    }

    #[test]
    fn lru_eviction_under_cap_of_two() {
        let cache = TraceCache::with_capacity(2);
        let (a, b, c) = (scenario(1, 0.9), scenario(2, 0.9), scenario(3, 0.9));
        cache.get_or_materialize(&a).unwrap();
        cache.get_or_materialize(&b).unwrap();
        // Touch `a`: it becomes the most recently used of the two.
        cache.get_or_materialize(&a).unwrap();
        // Third distinct scenario at cap 2: the LRU entry — `b` — goes.
        cache.get_or_materialize(&c).unwrap();
        let (hits, misses, entries, evictions) = cache.stats();
        assert_eq!((hits, misses, entries, evictions), (1, 3, 2, 1));
        // `b` misses again (re-materializes), evicting the new LRU `a`;
        // `c` — just inserted — still hits.
        cache.get_or_materialize(&b).unwrap();
        cache.get_or_materialize(&c).unwrap();
        let (hits, misses, _, evictions) = cache.stats();
        assert_eq!((hits, misses, evictions), (2, 4, 2));
    }

    #[test]
    fn poisoned_scenario_is_never_cached() {
        let cache = TraceCache::new();
        let bad = scenario(1, -1.0); // scale_to_load panics on negative load
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // expected panics below
        let first = cache.get_or_materialize(&bad);
        let second = cache.get_or_materialize(&bad);
        std::panic::set_hook(hook);
        for result in [first, second] {
            let panic = result.expect_err("poisoned scenario must fail");
            assert!(panic.contains("target load must be positive"));
        }
        let (_, misses, entries, _) = cache.stats();
        assert_eq!((misses, entries), (2, 0), "failures must not be cached");
    }
}
