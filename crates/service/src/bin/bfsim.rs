//! `bfsim` — the command-line front end of the simulator.
//!
//! ```text
//! bfsim simulate [WORKLOAD] [SCHED] [--gantt] [--series] [--fairness]
//! bfsim generate [WORKLOAD] -o OUT.swf
//! bfsim inspect FILE.swf
//! bfsim compare [WORKLOAD] [--seeds a,b,c]
//! bfsim submit [WORKLOAD] [SCHED] [--addr HOST:PORT]    # via bfsimd
//! bfsim stats [--addr HOST:PORT]
//! bfsim shutdown [--addr HOST:PORT]
//!
//! WORKLOAD: --model ctc|sdsc|lublin | --trace FILE.swf
//!           --jobs N --seed S --load RHO
//!           --estimate exact|systematic:R|user
//! SCHED:    --scheduler nobf|cons|cons-reanchor|cons-headstart|cons-none|
//!                       easy|selective:T|slack:F|depth:K|preemptive:T
//!           --policy fcfs|sjf|xf|ljf|widest
//! ```
//!
//! The `submit`/`stats`/`shutdown` commands talk to a running `bfsimd`
//! daemon (default `127.0.0.1:7411`); `submit` only supports the
//! model-generated workloads (`ctc`/`sdsc`) because the daemon receives
//! a declarative `RunConfig`, not a trace file.

use backfill_sim::prelude::*;
use metrics::{fairness, queue_depth_series, utilization_series, viz};
use service::Client;
use workload::models::LublinModel;
use workload::{load::scale_to_load, swf, TraceStats};

fn die(msg: &str) -> ! {
    eprintln!("bfsim: {msg}");
    std::process::exit(2);
}

#[derive(Debug, Clone)]
struct Cli {
    command: String,
    model: String,
    trace_file: Option<String>,
    jobs: usize,
    seed: u64,
    seeds: Vec<u64>,
    load: Option<f64>,
    estimate: EstimateModel,
    scheduler: SchedulerKind,
    policy: Policy,
    out: Option<String>,
    gantt: bool,
    series: bool,
    fairness: bool,
    journal: Option<String>,
    addr: String,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            command: String::new(),
            model: "ctc".into(),
            trace_file: None,
            jobs: 5_000,
            seed: 42,
            seeds: vec![42, 1337, 2002],
            load: Some(0.9),
            estimate: EstimateModel::Exact,
            scheduler: SchedulerKind::Easy,
            policy: Policy::Fcfs,
            out: None,
            gantt: false,
            series: false,
            fairness: false,
            journal: None,
            addr: "127.0.0.1:7411".into(),
        }
    }
}

fn parse_estimate(s: &str) -> EstimateModel {
    match s {
        "exact" => EstimateModel::Exact,
        "user" => EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18))),
        other => match other
            .strip_prefix("systematic:")
            .and_then(|r| r.parse::<f64>().ok())
        {
            Some(r) if r >= 1.0 => EstimateModel::systematic(r),
            _ => die(&format!(
                "bad --estimate {other:?} (exact | systematic:R | user)"
            )),
        },
    }
}

fn parse_scheduler(s: &str) -> SchedulerKind {
    match s {
        "nobf" => SchedulerKind::NoBackfill,
        "cons" => SchedulerKind::Conservative,
        "cons-reanchor" => SchedulerKind::ConservativeReanchor,
        "cons-headstart" => SchedulerKind::ConservativeHeadStart,
        "cons-none" => SchedulerKind::ConservativeNoCompress,
        "easy" => SchedulerKind::Easy,
        other => {
            if let Some(t) = other
                .strip_prefix("selective:")
                .and_then(|t| t.parse().ok())
            {
                SchedulerKind::Selective { threshold: t }
            } else if let Some(f) = other.strip_prefix("slack:").and_then(|f| f.parse().ok()) {
                SchedulerKind::Slack { slack_factor: f }
            } else if let Some(d) = other.strip_prefix("depth:").and_then(|d| d.parse().ok()) {
                SchedulerKind::Depth { depth: d }
            } else if let Some(t) = other
                .strip_prefix("preemptive:")
                .and_then(|t| t.parse().ok())
            {
                SchedulerKind::Preemptive { threshold: t }
            } else {
                die(&format!("bad --scheduler {other:?}"))
            }
        }
    }
}

fn parse_policy(s: &str) -> Policy {
    match s {
        "fcfs" => Policy::Fcfs,
        "sjf" => Policy::Sjf,
        "xf" => Policy::XFactor,
        "ljf" => Policy::Ljf,
        "widest" => Policy::WidestFirst,
        other => die(&format!("bad --policy {other:?}")),
    }
}

fn parse_cli() -> Cli {
    let mut cli = Cli::default();
    let mut it = std::env::args().skip(1);
    cli.command = it
        .next()
        .unwrap_or_else(|| die("missing command (try --help)"));
    if cli.command == "--help" || cli.command == "-h" {
        println!(
            "usage: bfsim <simulate|generate|inspect|compare|submit|stats|shutdown> [flags]; \
             see module docs"
        );
        std::process::exit(0);
    }
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => cli.model = next(&mut it, "--model"),
            "--trace" => cli.trace_file = Some(next(&mut it, "--trace")),
            "--jobs" => {
                cli.jobs = next(&mut it, "--jobs")
                    .parse()
                    .unwrap_or_else(|_| die("bad --jobs"))
            }
            "--seed" => {
                cli.seed = next(&mut it, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("bad --seed"))
            }
            "--seeds" => {
                cli.seeds = next(&mut it, "--seeds")
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| die("bad --seeds")))
                    .collect()
            }
            "--load" => {
                let v = next(&mut it, "--load");
                cli.load = if v == "native" {
                    None
                } else {
                    Some(v.parse().unwrap_or_else(|_| die("bad --load")))
                }
            }
            "--estimate" => cli.estimate = parse_estimate(&next(&mut it, "--estimate")),
            "--scheduler" => cli.scheduler = parse_scheduler(&next(&mut it, "--scheduler")),
            "--policy" => cli.policy = parse_policy(&next(&mut it, "--policy")),
            "-o" | "--out" => cli.out = Some(next(&mut it, "-o")),
            "--gantt" => cli.gantt = true,
            "--journal" => cli.journal = Some(next(&mut it, "--journal")),
            "--series" => cli.series = true,
            "--fairness" => cli.fairness = true,
            "--addr" => cli.addr = next(&mut it, "--addr"),
            other if !other.starts_with('-') && cli.command == "inspect" => {
                cli.trace_file = Some(other.to_string())
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    cli
}

fn build_trace(cli: &Cli) -> Trace {
    let base = match &cli.trace_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
            swf::parse_trace(&text, path, None)
                .unwrap_or_else(|e| die(&format!("parsing {path}: {e}")))
                .trace
        }
        None => match cli.model.as_str() {
            "ctc" => workload::models::ctc().generate(cli.jobs, cli.seed),
            "sdsc" => workload::models::sdsc().generate(cli.jobs, cli.seed),
            "lublin" => LublinModel::default_for(256).generate(cli.jobs, cli.seed),
            other => die(&format!("unknown model {other:?} (ctc | sdsc | lublin)")),
        },
    };
    let estimated = cli.estimate.apply(&base, cli.seed ^ 0xE57);
    match cli.load {
        Some(rho) => scale_to_load(&estimated, rho),
        None => estimated,
    }
}

fn cmd_simulate(cli: &Cli) {
    let trace = build_trace(cli);
    let schedule = if let Some(path) = &cli.journal {
        let (schedule, journal) = simulate_journaled(&trace, cli.scheduler, cli.policy);
        let mut out = String::new();
        for e in &journal {
            out.push_str(&serde_json::to_string(e).expect("journal serializes"));
            out.push('\n');
        }
        std::fs::write(path, out).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("journal: {} events -> {path}", journal.len());
        schedule
    } else {
        simulate(&trace, cli.scheduler, cli.policy)
    };
    schedule
        .validate()
        .unwrap_or_else(|e| die(&format!("audit failed: {e}")));
    let stats = schedule.stats(&CategoryCriteria::default());
    println!("scheduler: {}", schedule.scheduler);
    println!("{}", TraceStats::of(&trace).render());
    println!(
        "avg bounded slowdown {:.2} | avg wait {:.0} s | avg turnaround {:.0} s",
        stats.overall.avg_slowdown(),
        stats.overall.avg_wait(),
        stats.overall.avg_turnaround()
    );
    println!(
        "worst turnaround {:.1} h | utilization {:.3} | makespan {}",
        stats.overall.worst_turnaround() / 3600.0,
        stats.utilization,
        stats.makespan
    );
    for cat in Category::ALL {
        let m = stats.category(cat);
        println!(
            "  {cat}: {:6} jobs  slowdown {:8.2}",
            m.count(),
            m.avg_slowdown()
        );
    }
    if let Some(p) = schedule.profile_stats {
        println!(
            "profile ops: {} anchors ({:.1} segs/anchor, {} blocks skipped) | \
             {} reserves | {} releases | {} compress passes | peak {} segments",
            p.find_anchor_calls,
            p.segments_per_anchor(),
            p.blocks_skipped,
            p.reserves,
            p.releases,
            p.compress_passes,
            p.peak_segments
        );
    }
    if cli.fairness {
        let f = fairness(&schedule.outcomes);
        println!(
            "fairness: slowdown gini {:.3} | max stretch {:.1} | overtake rate {:.3}",
            f.slowdown_gini, f.max_stretch, f.overtake_rate
        );
    }
    if cli.series {
        let bin = SimSpan::new((stats.makespan.as_secs() / 72).max(1));
        let util = utilization_series(&schedule.outcomes, trace.nodes(), bin);
        let depth = queue_depth_series(&schedule.outcomes, bin);
        println!("utilization  {}", viz::sparkline(&util));
        println!(
            "queue depth  {}  (peak {:.0})",
            viz::sparkline(&depth),
            depth.peak()
        );
    }
    if cli.gantt {
        println!("{}", viz::gantt(&schedule.outcomes, 100));
    }
}

fn cmd_generate(cli: &Cli) {
    let trace = build_trace(cli);
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| die("generate needs -o OUT.swf"));
    std::fs::write(&out, swf::write_trace(&trace))
        .unwrap_or_else(|e| die(&format!("writing {out}: {e}")));
    println!("wrote {} jobs to {out}", trace.len());
}

fn cmd_inspect(cli: &Cli) {
    let trace = build_trace(cli);
    println!("{}", TraceStats::of(&trace).render());
    let grid = workload::arrival_heatmap(&trace);
    let rows: Vec<Vec<f64>> = grid
        .iter()
        .map(|day| day.iter().map(|&c| c as f64).collect())
        .collect();
    println!("weekly arrival heatmap (rows = day of week, cols = hour of day):");
    println!(
        "{}",
        viz::heatmap(&rows, &["d0", "d1", "d2", "d3", "d4", "d5", "d6"])
    );
}

fn cmd_compare(cli: &Cli) {
    let source = match cli.model.as_str() {
        "ctc" => TraceSource::Ctc {
            jobs: cli.jobs,
            seed: cli.seed,
        },
        "sdsc" => TraceSource::Sdsc {
            jobs: cli.jobs,
            seed: cli.seed,
        },
        other => die(&format!("compare supports ctc|sdsc models, got {other:?}")),
    };
    let campaign = Campaign {
        scenario: Scenario {
            source,
            estimate: cli.estimate,
            estimate_seed: 1,
            load: cli.load,
        },
        seeds: cli.seeds.clone(),
        grid: vec![
            (SchedulerKind::NoBackfill, Policy::Fcfs),
            (SchedulerKind::Conservative, Policy::Fcfs),
            (SchedulerKind::Easy, Policy::Fcfs),
            (SchedulerKind::Easy, Policy::Sjf),
            (SchedulerKind::Easy, Policy::XFactor),
            (SchedulerKind::Selective { threshold: 2.0 }, Policy::Fcfs),
        ],
        threads: None,
    };
    let mut table = Table::new(
        format!("Campaign over seeds {:?}", cli.seeds),
        &["scheme", "slowdown", "turnaround (s)", "utilization"],
    );
    for cell in campaign.run() {
        table.row(vec![
            format!("{}/{}", cell.kind.label(), cell.policy),
            cell.slowdown.to_string(),
            cell.turnaround.to_string(),
            format!(
                "{:.3} ± {:.3}",
                cell.utilization.mean, cell.utilization.ci95
            ),
        ]);
    }
    println!("{}", table.render());
}

fn service_config(cli: &Cli) -> RunConfig {
    if cli.trace_file.is_some() {
        die("submit sends a declarative RunConfig; --trace files are not supported");
    }
    let source = match cli.model.as_str() {
        "ctc" => TraceSource::Ctc {
            jobs: cli.jobs,
            seed: cli.seed,
        },
        "sdsc" => TraceSource::Sdsc {
            jobs: cli.jobs,
            seed: cli.seed,
        },
        other => die(&format!("submit supports ctc|sdsc models, got {other:?}")),
    };
    RunConfig {
        scenario: Scenario {
            source,
            estimate: cli.estimate,
            estimate_seed: cli.seed ^ 0xE57,
            load: cli.load,
        },
        kind: cli.scheduler,
        policy: cli.policy,
    }
}

fn connect(cli: &Cli) -> Client {
    Client::connect(&cli.addr)
        .unwrap_or_else(|e| die(&format!("connecting to bfsimd at {}: {e}", cli.addr)))
}

fn cmd_submit(cli: &Cli) {
    let config = service_config(cli);
    let mut client = connect(cli);
    let reply = client
        .submit(&config)
        .unwrap_or_else(|e| die(&format!("submit: {e}")));
    let r = &reply.report;
    println!(
        "{} [{}] config {:#018x} in {} ms",
        r.label,
        if reply.cached { "cached" } else { "fresh" },
        reply.config_hash,
        reply.wall_ms
    );
    println!(
        "{} jobs on {} nodes | fingerprint {:#018x}",
        r.jobs, r.nodes, r.fingerprint
    );
    println!(
        "avg bounded slowdown {:.2} | avg wait {:.0} s | avg turnaround {:.0} s",
        r.stats.overall.avg_slowdown(),
        r.stats.overall.avg_wait(),
        r.stats.overall.avg_turnaround()
    );
    println!(
        "worst turnaround {:.1} h | utilization {:.3} | makespan {}",
        r.stats.overall.worst_turnaround() / 3600.0,
        r.stats.utilization,
        r.stats.makespan
    );
    println!(
        "fairness: slowdown gini {:.3} | max stretch {:.1} | overtake rate {:.3}",
        r.fairness.slowdown_gini, r.fairness.max_stretch, r.fairness.overtake_rate
    );
}

fn cmd_stats(cli: &Cli) {
    let stats = connect(cli)
        .stats()
        .unwrap_or_else(|e| die(&format!("stats: {e}")));
    println!(
        "requests: {} submitted | {} completed | {} failed | {} rejected{}",
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.rejected,
        if stats.draining { " | DRAINING" } else { "" }
    );
    println!(
        "cache: {} hits / {} misses | {} entries",
        stats.cache_hits, stats.cache_misses, stats.cache_entries
    );
    println!(
        "pool: {} queued | {} in flight",
        stats.queue_depth, stats.in_flight
    );
    println!(
        "wall: {:.1} ms mean | {} ms max | {} ms total",
        stats.wall_ms_mean(),
        stats.wall_ms_max,
        stats.wall_ms_total
    );
}

fn cmd_shutdown(cli: &Cli) {
    connect(cli)
        .shutdown()
        .unwrap_or_else(|e| die(&format!("shutdown: {e}")));
    println!("bfsimd at {} is draining", cli.addr);
}

fn main() {
    let cli = parse_cli();
    match cli.command.as_str() {
        "simulate" => cmd_simulate(&cli),
        "generate" => cmd_generate(&cli),
        "inspect" => cmd_inspect(&cli),
        "compare" => cmd_compare(&cli),
        "submit" => cmd_submit(&cli),
        "stats" => cmd_stats(&cli),
        "shutdown" => cmd_shutdown(&cli),
        other => die(&format!(
            "unknown command {other:?} (simulate|generate|inspect|compare|submit|stats|shutdown)"
        )),
    }
}
