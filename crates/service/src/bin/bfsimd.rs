//! `bfsimd` — the resident simulation daemon.
//!
//! ```text
//! bfsimd [--addr HOST:PORT] [--workers N] [--queue N] [--cache-cap N]
//!        [--cache-journal PATH] [--fault-plan SPEC]
//!        [--read-timeout-ms N] [--write-timeout-ms N] [--max-frame BYTES]
//!        [--log-level SPEC] [--log-json] [--log-elapsed]
//! ```
//!
//! Listens for JSON-lines requests (see `service::protocol`), runs them
//! on a bounded worker pool, and memoizes completed reports. Stop it
//! with `bfsim shutdown` (graceful drain) — the process exits once every
//! accepted request has been answered.
//!
//! `--cache-journal PATH` makes the result cache crash-recoverable: every
//! insert is appended to an append-only JSONL journal, replayed (with
//! per-record checksum validation and torn-tail truncation) on the next
//! start. `--fault-plan SPEC` (or env `BFSIM_FAULT_PLAN`) arms
//! deterministic fault injection — see `service::fault` for the grammar;
//! never use it on a daemon you care about.
//!
//! `--log-level` takes the `BFSIM_LOG` filter grammar (e.g. `info` or
//! `warn,service=debug`) and wins over the environment; `--log-json`
//! switches log records to JSON lines. Without either, only errors are
//! logged.

use service::{FaultPlan, Server, ServiceConfig};
use std::time::Duration;

fn die(msg: &str) -> ! {
    obs::error!(target: "bfsimd", "{msg}");
    std::process::exit(2);
}

/// Install the global logger before flag parsing so `die` goes through
/// it. Mirrors `bfsim`'s logging flags.
fn init_logging(args: &[String]) {
    let mut spec: Option<String> = None;
    let mut json = false;
    let mut elapsed = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log-level" => spec = it.next().cloned(),
            "--log-json" => json = true,
            "--log-elapsed" => elapsed = true,
            _ => {}
        }
    }
    let filter = match &spec {
        Some(spec) => obs::log::Filter::parse(spec).unwrap_or_else(|e| {
            eprintln!("bfsimd: bad --log-level: {e}");
            std::process::exit(2);
        }),
        None => match std::env::var("BFSIM_LOG") {
            Ok(env_spec) if !env_spec.trim().is_empty() => obs::log::Filter::parse(&env_spec)
                .unwrap_or_else(|_| obs::log::Filter::uniform(obs::log::Level::Warn)),
            _ => obs::log::Filter::uniform(obs::log::Level::Error),
        },
    };
    let _ = obs::log::init(obs::log::LogConfig {
        filter,
        json,
        sink: obs::log::Sink::Stderr,
        elapsed,
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    init_logging(&args);
    let mut addr = "127.0.0.1:7411".to_string();
    let mut cfg = ServiceConfig::default();
    let mut it = args.iter().cloned();
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = next(&mut it, "--addr"),
            "--workers" => {
                cfg.workers = next(&mut it, "--workers")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --workers (need an integer >= 1)"))
            }
            "--queue" => {
                cfg.queue_cap = next(&mut it, "--queue")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --queue (need an integer >= 1)"))
            }
            "--cache-cap" => {
                cfg.cache_cap = next(&mut it, "--cache-cap")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --cache-cap (need an integer >= 1)"))
            }
            "--cache-journal" => {
                cfg.journal = Some(next(&mut it, "--cache-journal").into());
            }
            "--fault-plan" => {
                let spec = next(&mut it, "--fault-plan");
                cfg.fault_plan = Some(
                    FaultPlan::parse(&spec)
                        .unwrap_or_else(|e| die(&format!("bad --fault-plan: {e}"))),
                );
            }
            "--read-timeout-ms" => {
                cfg.read_timeout = parse_timeout(&next(&mut it, "--read-timeout-ms"))
                    .unwrap_or_else(|| die("bad --read-timeout-ms (millis, 0 disables)"));
            }
            "--write-timeout-ms" => {
                cfg.write_timeout = parse_timeout(&next(&mut it, "--write-timeout-ms"))
                    .unwrap_or_else(|| die("bad --write-timeout-ms (millis, 0 disables)"));
            }
            "--max-frame" => {
                cfg.max_frame = next(&mut it, "--max-frame")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1024)
                    .unwrap_or_else(|| die("bad --max-frame (need bytes >= 1024)"))
            }
            // Consumed by init_logging before parsing; skip here.
            "--log-level" => {
                let _ = next(&mut it, "--log-level");
            }
            "--log-json" | "--log-elapsed" => {}
            "--help" | "-h" => {
                println!(
                    "usage: bfsimd [--addr HOST:PORT] [--workers N] [--queue N] [--cache-cap N] \
                     [--cache-journal PATH] [--fault-plan SPEC] [--read-timeout-ms N] \
                     [--write-timeout-ms N] [--max-frame BYTES] [--log-level SPEC] [--log-json] \
                     [--log-elapsed]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    // The env var arms fault injection when the flag didn't (the flag
    // wins); an empty plan is the same as none.
    if cfg.fault_plan.is_none() {
        if let Ok(spec) = std::env::var("BFSIM_FAULT_PLAN") {
            if !spec.trim().is_empty() {
                cfg.fault_plan = Some(
                    FaultPlan::parse(&spec)
                        .unwrap_or_else(|e| die(&format!("bad BFSIM_FAULT_PLAN: {e}"))),
                );
            }
        }
    }
    let summary = format!(
        "{} workers, queue {}, cache cap {}{}{}",
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_cap,
        match &cfg.journal {
            Some(path) => format!(", journal {}", path.display()),
            None => String::new(),
        },
        match &cfg.fault_plan {
            Some(plan) if !plan.is_empty() => format!(", FAULT PLAN {plan}"),
            _ => String::new(),
        }
    );
    // Calibrate the phase-timing fast clock before serving: the one-time
    // ~2 ms measurement then happens at startup instead of inside the
    // first traced cell a client submits.
    obs::span::calibrate_clock();
    let handle =
        Server::start(&addr, cfg).unwrap_or_else(|e| die(&format!("starting on {addr}: {e}")));
    obs::info!(target: "bfsimd", "listening on {} ({summary})", handle.addr());
    println!("bfsimd listening on {} ({summary})", handle.addr());
    handle.join();
    println!("bfsimd drained and stopped");
}

/// `"0"` disables a timeout; any other millisecond count sets it.
fn parse_timeout(raw: &str) -> Option<Option<Duration>> {
    let ms: u64 = raw.parse().ok()?;
    Some(if ms == 0 {
        None
    } else {
        Some(Duration::from_millis(ms))
    })
}
