//! `bfsimd` — the resident simulation daemon.
//!
//! ```text
//! bfsimd [--addr HOST:PORT] [--workers N] [--queue N] [--cache-cap N]
//! ```
//!
//! Listens for JSON-lines requests (see `service::protocol`), runs them
//! on a bounded worker pool, and memoizes completed reports. Stop it
//! with `bfsim shutdown` (graceful drain) — the process exits once every
//! accepted request has been answered.

use service::{Server, ServiceConfig};

fn die(msg: &str) -> ! {
    eprintln!("bfsimd: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut cfg = ServiceConfig::default();
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = next(&mut it, "--addr"),
            "--workers" => {
                cfg.workers = next(&mut it, "--workers")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --workers (need an integer >= 1)"))
            }
            "--queue" => {
                cfg.queue_cap = next(&mut it, "--queue")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --queue (need an integer >= 1)"))
            }
            "--cache-cap" => {
                cfg.cache_cap = next(&mut it, "--cache-cap")
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --cache-cap (need an integer >= 1)"))
            }
            "--help" | "-h" => {
                println!(
                    "usage: bfsimd [--addr HOST:PORT] [--workers N] [--queue N] [--cache-cap N]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    let handle = Server::start(&addr, cfg).unwrap_or_else(|e| die(&format!("binding {addr}: {e}")));
    println!(
        "bfsimd listening on {} ({} workers, queue {}, cache cap {})",
        handle.addr(),
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_cap
    );
    handle.join();
    println!("bfsimd drained and stopped");
}
