//! Blocking client for the `bfsimd` daemon.
//!
//! One [`Client`] owns one TCP connection and speaks the JSON-lines
//! protocol synchronously: each call writes one request line, flushes,
//! and reads exactly one response line. Concurrency comes from opening
//! one client per thread — the daemon serves connections independently.

use crate::protocol::{Request, Response, RunReply, ServiceStats};
use backfill_sim::RunConfig;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke (or never opened).
    Io(io::Error),
    /// The daemon answered something the protocol does not allow here
    /// (e.g. a `Stats` payload for a `Submit`).
    Protocol(String),
    /// The daemon reported a request-level failure (isolated simulation
    /// panic or malformed request); the daemon itself is still healthy.
    Service {
        /// The daemon's error message.
        message: String,
        /// Content hash of the config at fault, 0 if not applicable.
        config_hash: u64,
    },
    /// The daemon is draining and refused new work.
    ShuttingDown,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Service {
                message,
                config_hash,
            } => write!(f, "service error (config {config_hash:#018x}): {message}"),
            ClientError::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connection to a running `bfsimd`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line and read the matching response line.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("unserializable request: {e}")))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut answer = String::new();
        let n = self.reader.read_line(&mut answer)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before answering",
            )));
        }
        serde_json::from_str(answer.trim_end())
            .map_err(|e| ClientError::Protocol(format!("bad response line: {e}")))
    }

    /// Simulate one scenario (or fetch its memoized report).
    pub fn submit(&mut self, config: &RunConfig) -> Result<RunReply, ClientError> {
        match self.request(&Request::Submit { config: *config })? {
            Response::Run(reply) => Ok(reply),
            Response::Error {
                message,
                config_hash,
            } => Err(ClientError::Service {
                message,
                config_hash,
            }),
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            other => Err(ClientError::Protocol(format!(
                "submit answered with {other:?}"
            ))),
        }
    }

    /// Fetch the daemon's counters.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "stats answered with {other:?}"
            ))),
        }
    }

    /// Fetch the daemon's metrics registry as one canonical-JSON
    /// document (see DESIGN.md §12 for the metric name space).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(ClientError::Protocol(format!(
                "metrics answered with {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain and stop. The acknowledgement comes back
    /// before the drain completes; pair with `ServerHandle::join` (in
    /// process) or wait for the port to close.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "shutdown answered with {other:?}"
            ))),
        }
    }
}
