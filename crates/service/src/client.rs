//! Blocking clients for the `bfsimd` daemon.
//!
//! [`Client`] owns one TCP connection and speaks the JSON-lines
//! protocol synchronously: each call writes one request line, flushes,
//! and reads exactly one response line. Concurrency comes from opening
//! one client per thread — the daemon serves connections independently.
//!
//! [`ResilientClient`] wraps that with the fault-tolerance contract:
//! per-request deadlines (socket + connect timeouts), bounded retries
//! with exponential backoff and decorrelated jitter, and automatic
//! reconnection after transport failures. Retrying is safe because
//! submission is **idempotent**: the daemon keys work by the canonical
//! config JSON, so a resubmitted scenario is served from cache (or
//! deduplicated into the same deterministic result) and never
//! double-counted in the merged report.
//!
//! # Error taxonomy
//!
//! [`ClientError`] distinguishes every failure mode a caller might
//! handle differently: `Timeout` (deadline elapsed), `Io` (refused /
//! reset / EOF), `Busy` (daemon shed the request), `CorruptFrame`
//! (undecodable response), `Service` (the daemon reported a failure,
//! retryable or not), `Protocol` (impossible answer), `ShuttingDown`,
//! and `Exhausted` (the retry budget ran out — wrapping the terminal
//! error).

use crate::protocol::{
    Capabilities, HealthReport, Request, Response, RunReply, ServiceStats, TraceContext, WireSpan,
};
use backfill_sim::RunConfig;
use simcore::SplitMix64;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke (or never opened): refused, reset, EOF.
    Io(io::Error),
    /// A deadline elapsed: connect, read, or write took longer than the
    /// configured per-request timeout.
    Timeout(io::Error),
    /// The daemon shed the request because its work queue is full.
    /// Nothing was queued; resubmitting later is safe.
    Busy,
    /// The response frame did not decode as a protocol `Response` — a
    /// corrupted or truncated frame. The line (truncated) is carried
    /// for diagnostics.
    CorruptFrame(String),
    /// The daemon answered something the protocol does not allow here
    /// (e.g. a `Stats` payload for a `Submit`).
    Protocol(String),
    /// The daemon reported a request-level failure; the daemon itself
    /// is still healthy.
    Service {
        /// The daemon's error message.
        message: String,
        /// Content hash of the config at fault, 0 if not applicable.
        config_hash: u64,
        /// Whether the daemon judged a retry worthwhile (e.g. a crashed
        /// worker) as opposed to deterministic (a poisoned scenario).
        retryable: bool,
    },
    /// The daemon is draining and refused new work.
    ShuttingDown,
    /// The retry budget ran out; `last` is the terminal error.
    Exhausted {
        /// Total attempts made (initial try + retries).
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// Could retrying the identical request plausibly succeed?
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_)
            | ClientError::Timeout(_)
            | ClientError::Busy
            | ClientError::CorruptFrame(_) => true,
            ClientError::Service { retryable, .. } => *retryable,
            ClientError::Protocol(_)
            | ClientError::ShuttingDown
            | ClientError::Exhausted { .. } => false,
        }
    }

    /// Did the transport itself fail (so the connection must be
    /// re-established before the next attempt)?
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::Timeout(_))
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Timeout(e) => write!(f, "deadline elapsed: {e}"),
            ClientError::Busy => write!(f, "daemon is overloaded (busy); retry with backoff"),
            ClientError::CorruptFrame(line) => {
                write!(f, "undecodable response frame: {line:?}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Service {
                message,
                config_hash,
                retryable,
            } => write!(
                f,
                "service error (config {config_hash:#018x}, {}): {message}",
                if *retryable { "retryable" } else { "permanent" }
            ),
            ClientError::ShuttingDown => write!(f, "daemon is shutting down"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        // Both kinds appear for elapsed socket deadlines, depending on
        // platform; either way the caller's budget, not the transport,
        // is what gave out.
        if matches!(
            e.kind(),
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            ClientError::Timeout(e)
        } else {
            ClientError::Io(e)
        }
    }
}

/// Retry budget and backoff shape for a [`ResilientClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (so `max_retries + 1` attempts
    /// total). 0 disables retrying.
    pub max_retries: u32,
    /// First delay and the lower bound of every jittered delay.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Seeds the jitter, making the whole delay schedule deterministic
    /// — tests pin exact schedules, production varies the seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

/// Deterministic decorrelated-jitter backoff (AWS style): each delay is
/// drawn from `[base, min(cap, 3 * previous))`, so consecutive delays
/// grow roughly exponentially while never synchronizing across clients
/// with different seeds.
#[derive(Debug)]
pub struct Backoff {
    rng: SplitMix64,
    base_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
}

impl Backoff {
    /// Start a fresh schedule for one logical request.
    pub fn new(policy: &RetryPolicy) -> Self {
        let base_ms = policy.base.as_millis().max(1) as u64;
        Backoff {
            rng: SplitMix64::new(policy.seed),
            base_ms,
            cap_ms: (policy.cap.as_millis() as u64).max(base_ms),
            prev_ms: base_ms,
        }
    }

    /// The next delay to sleep before retrying. Pure function of the
    /// seed and call count: equal `(seed, n)` always answer the same
    /// delay, which is what makes chaos tests reproducible.
    pub fn next_delay(&mut self) -> Duration {
        let span = (self.prev_ms.saturating_mul(3))
            .saturating_sub(self.base_ms)
            .max(1);
        let ms = (self.base_ms + self.rng.next_u64() % span).min(self.cap_ms);
        self.prev_ms = ms.max(1);
        Duration::from_millis(ms)
    }
}

/// A connection to a running `bfsimd`. No deadlines, no retries — the
/// raw protocol; wrap in [`ResilientClient`] for the hardened path.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon with no deadlines (blocks indefinitely).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        Self::connect_with(addr, None)
    }

    /// Connect with an optional deadline governing the connect itself
    /// and every subsequent socket read/write.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        deadline: Option<Duration>,
    ) -> Result<Self, ClientError> {
        let stream = match deadline {
            None => TcpStream::connect(addr)?,
            Some(limit) => {
                let mut last: Option<io::Error> = None;
                let mut connected = None;
                for candidate in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&candidate, limit) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        return Err(last
                            .unwrap_or_else(|| {
                                io::Error::new(
                                    io::ErrorKind::InvalidInput,
                                    "address resolved to nothing",
                                )
                            })
                            .into())
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(deadline)?;
        stream.set_write_timeout(deadline)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line and read the matching response line.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("unserializable request: {e}")))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut answer = String::new();
        let n = self.reader.read_line(&mut answer)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before answering",
            )));
        }
        let trimmed = answer.trim_end();
        serde_json::from_str(trimmed).map_err(|_| {
            // The stream is still line-synced (one frame per line), so
            // a retry on this same connection is well-defined.
            let mut snippet = trimmed.chars().take(80).collect::<String>();
            if trimmed.chars().count() > 80 {
                snippet.push('…');
            }
            ClientError::CorruptFrame(snippet)
        })
    }

    /// Simulate one scenario (or fetch its memoized report).
    pub fn submit(&mut self, config: &RunConfig) -> Result<RunReply, ClientError> {
        self.submit_traced(config, None)
    }

    /// Simulate one scenario, propagating an optional span context so
    /// the daemon's cache/pool/phase spans parent into the caller's
    /// trace. A `None` context is wire-identical to [`Self::submit`].
    pub fn submit_traced(
        &mut self,
        config: &RunConfig,
        trace: Option<TraceContext>,
    ) -> Result<RunReply, ClientError> {
        match self.request(&Request::Submit {
            config: *config,
            trace,
        })? {
            Response::Run(reply) => Ok(reply),
            Response::Busy => Err(ClientError::Busy),
            Response::Error {
                message,
                config_hash,
                retryable,
            } => Err(ClientError::Service {
                message,
                config_hash,
                retryable,
            }),
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            other => Err(ClientError::Protocol(format!(
                "submit answered with {other:?}"
            ))),
        }
    }

    /// Fetch the daemon's counters.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "stats answered with {other:?}"
            ))),
        }
    }

    /// Fetch the daemon's metrics registry as one canonical-JSON
    /// document (see DESIGN.md §12 for the metric name space).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(ClientError::Protocol(format!(
                "metrics answered with {other:?}"
            ))),
        }
    }

    /// Fetch the daemon's metrics registry in the Prometheus text
    /// exposition format (scrape-ready; same state as [`Self::metrics`]).
    pub fn metrics_prom(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::MetricsProm)? {
            Response::MetricsProm { text } => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "metrics-prom answered with {other:?}"
            ))),
        }
    }

    /// Drain the daemon's buffered span records (each drain hands over
    /// everything recorded since the previous drain).
    pub fn spans(&mut self) -> Result<Vec<WireSpan>, ClientError> {
        match self.request(&Request::Spans)? {
            Response::Spans { spans } => Ok(spans),
            other => Err(ClientError::Protocol(format!(
                "spans answered with {other:?}"
            ))),
        }
    }

    /// Probe the daemon's liveness and readiness.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        match self.request(&Request::Health)? {
            Response::Health(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "health answered with {other:?}"
            ))),
        }
    }

    /// Fetch the daemon's sizing handshake (protocol revision, worker
    /// count, queue capacity) — what a sweep coordinator sizes its
    /// in-flight windows from.
    pub fn capabilities(&mut self) -> Result<Capabilities, ClientError> {
        match self.request(&Request::Capabilities)? {
            Response::Capabilities(caps) => Ok(caps),
            Response::Error {
                message,
                config_hash,
                retryable,
            } => Err(ClientError::Service {
                message,
                config_hash,
                retryable,
            }),
            other => Err(ClientError::Protocol(format!(
                "capabilities answered with {other:?}"
            ))),
        }
    }

    /// Ask the daemon to stop accepting new submits while staying alive
    /// (in-flight work completes; introspection verbs keep answering).
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Drain)? {
            Response::Draining => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "drain answered with {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain and stop. The acknowledgement comes back
    /// before the drain completes; pair with `ServerHandle::join` (in
    /// process) or wait for the port to close.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "shutdown answered with {other:?}"
            ))),
        }
    }
}

/// Deadline + retry options for a [`ResilientClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOptions {
    /// Per-request deadline applied to connect and every socket
    /// read/write. `None` waits indefinitely (retries still apply to
    /// non-timeout failures).
    pub deadline: Option<Duration>,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            deadline: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
        }
    }
}

/// A self-healing client: deadlines on every attempt, reconnection
/// after transport failures, bounded seeded-jitter retries on every
/// retryable error. One instance owns at most one connection at a time;
/// use one per thread, like [`Client`].
pub struct ResilientClient {
    addr: String,
    opts: ClientOptions,
    conn: Option<Client>,
}

impl ResilientClient {
    /// Create a client for `addr` (connections open lazily, so this
    /// never blocks and never fails).
    pub fn new(addr: impl Into<String>, opts: ClientOptions) -> Self {
        ResilientClient {
            addr: addr.into(),
            opts,
            conn: None,
        }
    }

    /// The configured options (mainly for diagnostics).
    pub fn options(&self) -> &ClientOptions {
        &self.opts
    }

    fn connection(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect_with(
                self.addr.as_str(),
                self.opts.deadline,
            )?);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// Run `op` with retries: transport failures drop the connection
    /// (the next attempt reconnects), retryable failures back off and
    /// try again, non-retryable failures return immediately, and an
    /// exhausted budget returns [`ClientError::Exhausted`] wrapping the
    /// terminal error.
    fn with_retry<T>(
        &mut self,
        what: &str,
        op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        self.with_retry_ctx(what, None, op)
    }

    /// [`Self::with_retry`], recording a `client.attempt` span around
    /// every attempt and a `client.backoff` span around every sleep when
    /// a span context is given — so retries and backoff stalls show up
    /// in the merged timeline instead of as unexplained gaps.
    fn with_retry_ctx<T>(
        &mut self,
        what: &str,
        ctx: Option<obs::SpanContext>,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut backoff = Backoff::new(&self.opts.retry);
        let mut attempt: u32 = 0;
        loop {
            let attempt_span = ctx.map(|c| obs::Span::child(c, "client.attempt"));
            let result = match self.connection() {
                Ok(client) => op(client),
                Err(e) => Err(e),
            };
            drop(attempt_span);
            let err = match result {
                Ok(value) => return Ok(value),
                Err(err) => err,
            };
            if err.is_transport() {
                // The stream's state is unknown; never reuse it.
                self.conn = None;
            }
            if !err.is_retryable() {
                return Err(err);
            }
            if attempt >= self.opts.retry.max_retries {
                return Err(ClientError::Exhausted {
                    attempts: attempt + 1,
                    last: Box::new(err),
                });
            }
            attempt += 1;
            let delay = backoff.next_delay();
            obs::metrics::global().counter("client.retries").inc();
            obs::warn!(
                target: "service::client",
                "{what} attempt {attempt} failed ({err}); retrying in {} ms",
                delay.as_millis()
            );
            let backoff_span = ctx.map(|c| obs::Span::child(c, "client.backoff"));
            std::thread::sleep(delay);
            drop(backoff_span);
        }
    }

    /// Simulate one scenario, retrying per policy. Idempotent: the
    /// daemon dedupes by canonical config, so a response lost in
    /// transit is recomputed (or cache-served) on retry, never
    /// double-counted.
    pub fn submit(&mut self, config: &RunConfig) -> Result<RunReply, ClientError> {
        self.with_retry("submit", |client| client.submit(config))
    }

    /// [`Self::submit`] with span propagation: attempts and backoff
    /// sleeps are recorded as children of `trace`'s parent span, and the
    /// context rides the wire so daemon-side spans join the same trace.
    pub fn submit_traced(
        &mut self,
        config: &RunConfig,
        trace: Option<TraceContext>,
    ) -> Result<RunReply, ClientError> {
        let ctx = trace.map(|t| t.ctx());
        self.with_retry_ctx("submit", ctx, |client| client.submit_traced(config, trace))
    }

    /// Fetch the daemon's counters, retrying per policy.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        self.with_retry("stats", |client| client.stats())
    }

    /// Fetch the daemon's metrics snapshot, retrying per policy.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.with_retry("metrics", |client| client.metrics())
    }

    /// Fetch the daemon's Prometheus exposition, retrying per policy.
    pub fn metrics_prom(&mut self) -> Result<String, ClientError> {
        self.with_retry("metrics-prom", |client| client.metrics_prom())
    }

    /// Drain the daemon's buffered spans, retrying per policy. Only the
    /// transport is retried; a drain that succeeded but whose response
    /// was lost leaves those spans consumed — callers treat span
    /// collection as best-effort.
    pub fn spans(&mut self) -> Result<Vec<WireSpan>, ClientError> {
        self.with_retry("spans", |client| client.spans())
    }

    /// Probe the daemon's health, retrying per policy.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        self.with_retry("health", |client| client.health())
    }

    /// Fetch the daemon's sizing handshake, retrying per policy.
    pub fn capabilities(&mut self) -> Result<Capabilities, ClientError> {
        self.with_retry("capabilities", |client| client.capabilities())
    }

    /// Ask the daemon to stop taking new submits while staying alive.
    /// Not retried, for the same reason as [`Self::shutdown`].
    pub fn drain(&mut self) -> Result<(), ClientError> {
        self.connection()?.drain()
    }

    /// Ask the daemon to drain and stop. Not retried: a lost
    /// acknowledgement is indistinguishable from a daemon that already
    /// exited, and resending to a drained daemon only produces noise.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.connection()?.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_pinned_for_a_fixed_seed() {
        // The exact schedule for seed 42 with the default base/cap.
        // Pinned on purpose: any change to SplitMix64, the jitter
        // formula, or the clamping silently changes every chaos test's
        // timing — this test makes that change loud.
        let policy = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 42,
        };
        let mut backoff = Backoff::new(&policy);
        let schedule: Vec<u64> = (0..6)
            .map(|_| backoff.next_delay().as_millis() as u64)
            .collect();
        assert_eq!(schedule, vec![38, 29, 79, 77, 135, 47]);
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_differs_across_seeds() {
        let policy = |seed| RetryPolicy {
            seed,
            ..RetryPolicy::default()
        };
        let draw = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(&policy(seed));
            (0..8).map(|_| b.next_delay().as_millis() as u64).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed must repeat exactly");
        assert_ne!(draw(7), draw(8), "different seeds must not collide");
    }

    #[test]
    fn backoff_delays_stay_within_base_and_cap() {
        let policy = RetryPolicy {
            max_retries: 0,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 123,
        };
        let mut backoff = Backoff::new(&policy);
        let mut hit_cap = false;
        for _ in 0..64 {
            let d = backoff.next_delay();
            assert!(d >= policy.base, "{d:?} under base");
            assert!(d <= policy.cap, "{d:?} over cap");
            hit_cap |= d == policy.cap;
        }
        assert!(hit_cap, "64 growing draws must reach the cap");
    }

    #[test]
    fn error_taxonomy_classifies_retryability() {
        let timeout = ClientError::Timeout(io::Error::new(io::ErrorKind::TimedOut, "t"));
        let refused = ClientError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "r"));
        assert!(timeout.is_retryable() && timeout.is_transport());
        assert!(refused.is_retryable() && refused.is_transport());
        assert!(ClientError::Busy.is_retryable());
        assert!(!ClientError::Busy.is_transport());
        assert!(ClientError::CorruptFrame("!".into()).is_retryable());
        let crashed = ClientError::Service {
            message: "worker crashed".into(),
            config_hash: 1,
            retryable: true,
        };
        let poisoned = ClientError::Service {
            message: "panic".into(),
            config_hash: 1,
            retryable: false,
        };
        assert!(crashed.is_retryable());
        assert!(!poisoned.is_retryable());
        assert!(!ClientError::Protocol("p".into()).is_retryable());
        assert!(!ClientError::ShuttingDown.is_retryable());
        assert!(!ClientError::Exhausted {
            attempts: 5,
            last: Box::new(ClientError::Busy),
        }
        .is_retryable());
    }

    #[test]
    fn io_error_conversion_separates_timeouts() {
        let timeout: ClientError = io::Error::new(io::ErrorKind::TimedOut, "t").into();
        assert!(matches!(timeout, ClientError::Timeout(_)));
        let wouldblock: ClientError = io::Error::new(io::ErrorKind::WouldBlock, "w").into();
        assert!(matches!(wouldblock, ClientError::Timeout(_)));
        let reset: ClientError = io::Error::new(io::ErrorKind::ConnectionReset, "r").into();
        assert!(matches!(reset, ClientError::Io(_)));
    }
}
