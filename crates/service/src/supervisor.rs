//! Local shard supervision: keep a fleet of `bfsimd` children alive.
//!
//! The `bfsim shards` subcommand wraps this module: it spawns one
//! `bfsimd` process per address and watches them. A child that exits is
//! restarted after a seeded decorrelated-jitter delay (the same
//! [`Backoff`] schedule the resilient client uses, so a crash-looping
//! fleet never thunders back in lockstep), under a **crash-loop
//! breaker**: a child that keeps dying young is declared broken and
//! abandoned rather than restarted forever.
//!
//! # Breaker policy
//!
//! Each child tracks a *consecutive short-lived crash* streak. An exit
//! after at least [`BreakerPolicy::stable_uptime`] of uptime resets the
//! streak (and the backoff schedule): the process had recovered, this
//! is a fresh incident. An exit before that counts against the streak;
//! once it exceeds [`BreakerPolicy::max_restarts`], the breaker opens
//! and the child is left down ([`ChildStatus::Broken`]). The decision
//! logic lives in the pure [`Breaker`] state machine so it is testable
//! without processes.
//!
//! The supervisor deliberately knows nothing about the sweep: the
//! coordinator's reprobe loop (see `coord::dispatch`) discovers a
//! respawned shard by re-handshaking it, which is what turns a SIGKILL
//! into a mid-sweep rejoin instead of a degraded run.

use crate::client::{Backoff, RetryPolicy};
use std::io;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When to stop restarting a crash-looping child.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive short-lived crashes tolerated before the breaker
    /// opens. (`max_restarts` restarts are attempted; the next short
    /// crash gives up.)
    pub max_restarts: u32,
    /// A run at least this long counts as recovered and resets the
    /// streak.
    pub stable_uptime: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            max_restarts: 5,
            stable_uptime: Duration::from_secs(5),
        }
    }
}

/// What to do about a child that just exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartDecision {
    /// Respawn after this delay.
    Restart(Duration),
    /// The breaker opened: leave it down.
    GiveUp,
}

/// Pure per-child restart state machine: streak counting plus the
/// jittered delay schedule. Drives [`Supervisor`]; unit-tested without
/// spawning anything.
#[derive(Debug)]
pub struct Breaker {
    policy: BreakerPolicy,
    retry: RetryPolicy,
    backoff: Backoff,
    short_crashes: u32,
}

impl Breaker {
    /// A fresh breaker. `retry` supplies the delay schedule (`base`,
    /// `cap`, `seed`; its `max_retries` is ignored — the breaker's own
    /// policy bounds restarts).
    pub fn new(policy: BreakerPolicy, retry: RetryPolicy) -> Self {
        Breaker {
            policy,
            backoff: Backoff::new(&retry),
            retry,
            short_crashes: 0,
        }
    }

    /// The child exited after `uptime`; decide its fate.
    pub fn on_exit(&mut self, uptime: Duration) -> RestartDecision {
        if uptime >= self.policy.stable_uptime {
            // It had recovered; treat this as a fresh incident with a
            // fresh delay schedule.
            self.short_crashes = 0;
            self.backoff = Backoff::new(&self.retry);
        }
        self.short_crashes += 1;
        if self.short_crashes > self.policy.max_restarts {
            return RestartDecision::GiveUp;
        }
        RestartDecision::Restart(self.backoff.next_delay())
    }
}

/// How to build the fleet.
#[derive(Debug, Clone)]
pub struct SupervisorSpec {
    /// Path to the `bfsimd` binary.
    pub bfsimd: PathBuf,
    /// One child per address, passed as `--addr`.
    pub addrs: Vec<String>,
    /// Extra arguments appended to every child's command line. The
    /// literal token `{port}` is replaced with the child's port, so one
    /// template can derive per-child paths (e.g. a cache journal per
    /// shard: `--cache-journal dir/shard-{port}.jsonl`).
    pub args: Vec<String>,
    /// Restart-delay schedule (`base`/`cap`/`seed`); the seed is
    /// decorrelated per child so siblings never restart in lockstep.
    pub retry: RetryPolicy,
    /// Crash-loop policy applied to each child independently.
    pub breaker: BreakerPolicy,
}

/// Lifecycle state of one supervised child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildStatus {
    /// Process is (believed) up.
    Running,
    /// Exited; waiting out the restart delay.
    Backoff,
    /// Crash-loop breaker opened; abandoned.
    Broken,
    /// Stopped by [`Supervisor::stop`].
    Stopped,
}

/// Snapshot of one child, as reported by [`Supervisor::children`].
#[derive(Debug, Clone)]
pub struct ChildView {
    /// The `--addr` this child serves.
    pub addr: String,
    /// OS pid when running.
    pub pid: Option<u32>,
    /// Current lifecycle state.
    pub status: ChildStatus,
    /// Times this child has been restarted.
    pub restarts: u64,
}

/// Final accounting returned by [`Supervisor::join`].
#[derive(Debug, Clone)]
pub struct SupervisorReport {
    /// Last observed state of every child.
    pub children: Vec<ChildView>,
}

/// One supervised child and its bookkeeping (monitor-thread private).
struct Managed {
    view: ChildView,
    child: Option<Child>,
    started: Instant,
    breaker: Breaker,
    /// When a pending restart is due.
    due: Option<Instant>,
}

/// A running fleet supervisor. Dropping the handle does *not* stop the
/// fleet — call [`Supervisor::stop`] then [`Supervisor::join`].
pub struct Supervisor {
    stop: Arc<AtomicBool>,
    state: Arc<Mutex<Vec<ChildView>>>,
    monitor: JoinHandle<SupervisorReport>,
}

impl Supervisor {
    /// Spawn the fleet and the monitor thread. Returns as soon as the
    /// first round of spawns has been *attempted* — a child that fails
    /// to exec is handled by its breaker like any other crash.
    pub fn spawn(spec: SupervisorSpec) -> io::Result<Supervisor> {
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(
            spec.addrs
                .iter()
                .map(|addr| ChildView {
                    addr: addr.clone(),
                    pid: None,
                    status: ChildStatus::Backoff,
                    restarts: 0,
                })
                .collect::<Vec<_>>(),
        ));
        let monitor = {
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("shard-supervisor".into())
                .spawn(move || monitor_fleet(spec, stop, state))?
        };
        Ok(Supervisor {
            stop,
            state,
            monitor,
        })
    }

    /// Ask the monitor to stop: children are killed and reaped, then
    /// [`Supervisor::join`] returns.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// The shared stop flag (e.g. to set from a signal handler).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Snapshot every child's current state.
    pub fn children(&self) -> Vec<ChildView> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// True once the monitor exited (stopped, or every child broke).
    pub fn finished(&self) -> bool {
        self.monitor.is_finished()
    }

    /// Wait for the monitor to exit and collect the final report.
    pub fn join(self) -> SupervisorReport {
        self.monitor.join().unwrap_or(SupervisorReport {
            children: Vec::new(),
        })
    }
}

/// Golden-ratio step decorrelating per-child backoff seeds.
const SEED_STEP: u64 = 0x9E37_79B9_7F4A_7C15;

fn spawn_child(spec: &SupervisorSpec, addr: &str) -> io::Result<Child> {
    let port = addr.rsplit(':').next().unwrap_or(addr);
    Command::new(&spec.bfsimd)
        .arg("--addr")
        .arg(addr)
        .args(spec.args.iter().map(|arg| arg.replace("{port}", port)))
        .spawn()
}

fn monitor_fleet(
    spec: SupervisorSpec,
    stop: Arc<AtomicBool>,
    state: Arc<Mutex<Vec<ChildView>>>,
) -> SupervisorReport {
    let mut fleet: Vec<Managed> = spec
        .addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let mut retry = spec.retry;
            retry.seed = retry
                .seed
                .wrapping_add(SEED_STEP.wrapping_mul(i as u64 + 1));
            Managed {
                view: ChildView {
                    addr: addr.clone(),
                    pid: None,
                    status: ChildStatus::Backoff,
                    restarts: 0,
                },
                child: None,
                started: Instant::now(),
                breaker: Breaker::new(spec.breaker, retry),
                // Due immediately: the loop below does the first spawn.
                due: Some(Instant::now()),
            }
        })
        .collect();

    let publish = |fleet: &[Managed], state: &Mutex<Vec<ChildView>>| {
        let mut views = state.lock().unwrap_or_else(|e| e.into_inner());
        *views = fleet.iter().map(|m| m.view.clone()).collect();
    };

    loop {
        if stop.load(Ordering::SeqCst) {
            for managed in &mut fleet {
                if let Some(mut child) = managed.child.take() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                managed.view.pid = None;
                managed.view.status = ChildStatus::Stopped;
            }
            publish(&fleet, &state);
            break;
        }
        for managed in &mut fleet {
            // Reap an exited child and consult its breaker.
            if let Some(child) = &mut managed.child {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        let _ = managed.child.take();
                        managed.view.pid = None;
                        let uptime = managed.started.elapsed();
                        match managed.breaker.on_exit(uptime) {
                            RestartDecision::Restart(delay) => {
                                obs::warn!(target: "supervisor",
                                    "bfsimd {} exited ({status}) after {:.1}s; \
                                     restarting in {}ms",
                                    managed.view.addr, uptime.as_secs_f64(),
                                    delay.as_millis());
                                managed.view.status = ChildStatus::Backoff;
                                managed.due = Some(Instant::now() + delay);
                            }
                            RestartDecision::GiveUp => {
                                obs::warn!(target: "supervisor",
                                    "bfsimd {} is crash-looping; breaker open, giving up",
                                    managed.view.addr);
                                managed.view.status = ChildStatus::Broken;
                                managed.due = None;
                            }
                        }
                    }
                    Ok(None) => {}
                    Err(err) => {
                        obs::warn!(target: "supervisor",
                            "wait on bfsimd {} failed: {err}", managed.view.addr);
                    }
                }
            }
            // (Re)spawn when a pending restart comes due.
            if managed.child.is_none() {
                if let Some(due) = managed.due {
                    if Instant::now() >= due {
                        managed.due = None;
                        match spawn_child(&spec, &managed.view.addr) {
                            Ok(child) => {
                                managed.view.pid = Some(child.id());
                                managed.view.status = ChildStatus::Running;
                                managed.view.restarts += 1;
                                managed.started = Instant::now();
                                managed.child = Some(child);
                                obs::info!(target: "supervisor",
                                    "bfsimd {} up (pid {})",
                                    managed.view.addr,
                                    managed.view.pid.unwrap_or(0));
                            }
                            Err(err) => {
                                // Exec failure = a crash with zero uptime.
                                obs::warn!(target: "supervisor",
                                    "spawning bfsimd {} failed: {err}", managed.view.addr);
                                match managed.breaker.on_exit(Duration::ZERO) {
                                    RestartDecision::Restart(delay) => {
                                        managed.view.status = ChildStatus::Backoff;
                                        managed.due = Some(Instant::now() + delay);
                                    }
                                    RestartDecision::GiveUp => {
                                        managed.view.status = ChildStatus::Broken;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        publish(&fleet, &state);
        if fleet.iter().all(|m| m.view.status == ChildStatus::Broken) {
            obs::warn!(target: "supervisor", "every child is broken; supervisor exiting");
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    SupervisorReport {
        children: fleet.iter().map(|m| m.view.clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(40),
            seed: 42,
        }
    }

    #[test]
    fn breaker_opens_after_max_consecutive_short_crashes() {
        let policy = BreakerPolicy {
            max_restarts: 3,
            stable_uptime: Duration::from_secs(5),
        };
        let mut breaker = Breaker::new(policy, fast_retry());
        for i in 0..3 {
            match breaker.on_exit(Duration::from_millis(10)) {
                RestartDecision::Restart(delay) => {
                    assert!(delay >= Duration::from_millis(5), "restart {i}: {delay:?}");
                    assert!(delay <= Duration::from_millis(40), "restart {i}: {delay:?}");
                }
                RestartDecision::GiveUp => panic!("gave up after only {i} crashes"),
            }
        }
        assert_eq!(
            breaker.on_exit(Duration::from_millis(10)),
            RestartDecision::GiveUp
        );
    }

    #[test]
    fn stable_uptime_resets_the_streak_and_the_schedule() {
        let policy = BreakerPolicy {
            max_restarts: 2,
            stable_uptime: Duration::from_millis(100),
        };
        let mut breaker = Breaker::new(policy, fast_retry());
        let first = match breaker.on_exit(Duration::ZERO) {
            RestartDecision::Restart(d) => d,
            RestartDecision::GiveUp => panic!("gave up on first crash"),
        };
        assert!(matches!(
            breaker.on_exit(Duration::ZERO),
            RestartDecision::Restart(_)
        ));
        // A long stable run forgives the history; the streak and the
        // jitter schedule both start over.
        let after_stable = match breaker.on_exit(Duration::from_secs(1)) {
            RestartDecision::Restart(d) => d,
            RestartDecision::GiveUp => panic!("stable run must reset the streak"),
        };
        assert_eq!(
            after_stable, first,
            "reset schedule replays the same deterministic delays"
        );
        assert!(matches!(
            breaker.on_exit(Duration::ZERO),
            RestartDecision::Restart(_)
        ));
        assert_eq!(breaker.on_exit(Duration::ZERO), RestartDecision::GiveUp);
    }

    #[test]
    fn breaker_delays_are_deterministic_per_seed() {
        let policy = BreakerPolicy::default();
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut retry = fast_retry();
            retry.seed = seed;
            let mut breaker = Breaker::new(policy, retry);
            (0..4)
                .map(|_| match breaker.on_exit(Duration::ZERO) {
                    RestartDecision::Restart(d) => d,
                    RestartDecision::GiveUp => panic!("default policy allows 5 restarts"),
                })
                .collect()
        };
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8));
    }
}
