//! Slack-based backfilling (Talby & Feitelson, IPPS 1999 — the paper's
//! reference \[13\]).
//!
//! Conservative backfilling promises every job the *earliest* feasible
//! start; EASY promises nothing except to the queue head. Slack-based
//! backfilling promises every job a start time **with built-in slack**: on
//! arrival a job is told "you will start no later than your earliest
//! feasible anchor plus σ". The reservation rectangle is parked at that
//! later promise, leaving the span between the earliest anchor and the
//! promise open for backfilling — so later jobs may effectively delay a
//! queued job, but never beyond its promise.
//!
//! σ = 0 degenerates to conservative backfilling exactly (verified by a
//! fingerprint test); growing σ trades guarantee tightness for backfill
//! freedom, approaching EASY-like schedules while keeping a hard bound on
//! every job's delay — the knob Talby & Feitelson tune by job priority.
//!
//! Like the conservative scheduler, holes from early completions are
//! offered to queued jobs in priority order (a job moves only to start
//! immediately, and its promise never moves later).

use crate::policy::Policy;
use crate::profile::{Profile, ProfileStats};
use crate::scheduler::{Decisions, JobMeta, Scheduler};
use serde::{Deserialize, Serialize};
use simcore::{JobId, SimSpan, SimTime};
use std::collections::HashMap;

/// How much slack each job's promise carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SlackPolicy {
    /// A fixed allowance for every job.
    Constant(SimSpan),
    /// `σ = factor × estimated runtime` — short jobs get tight promises,
    /// long jobs proportionally looser ones.
    ProportionalToEstimate(f64),
}

impl SlackPolicy {
    fn slack_for(&self, job: &JobMeta) -> SimSpan {
        match *self {
            SlackPolicy::Constant(s) => s,
            SlackPolicy::ProportionalToEstimate(f) => {
                assert!(f >= 0.0, "slack factor must be non-negative");
                job.estimate.scale(f)
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Promise {
    meta: JobMeta,
    /// Where the reservation rectangle sits (the latest promised start).
    start: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    width: u32,
    est_end: SimTime,
}

/// Slack-based backfilling scheduler.
#[derive(Debug, Clone)]
pub struct SlackScheduler {
    policy: Policy,
    slack: SlackPolicy,
    profile: Profile,
    queue: Vec<Promise>,
    running: HashMap<JobId, Running>,
    free: u32,
}

impl SlackScheduler {
    /// Create for a machine with `capacity` processors.
    pub fn new(capacity: u32, policy: Policy, slack: SlackPolicy) -> Self {
        SlackScheduler {
            policy,
            slack,
            profile: Profile::new(capacity),
            queue: Vec::new(),
            running: HashMap::new(),
            free: capacity,
        }
    }

    /// The promised (latest) start of a queued job, for tests and metrics.
    pub fn promise(&self, id: JobId) -> Option<SimTime> {
        self.queue.iter().find(|p| p.meta.id == id).map(|p| p.start)
    }

    fn start_job(&mut self, p: Promise, now: SimTime) {
        debug_assert!(
            p.start >= now,
            "promise {} already passed at {now}",
            p.start
        );
        self.free -= p.meta.width;
        self.running.insert(
            p.meta.id,
            Running {
                width: p.meta.width,
                est_end: now + p.meta.estimate,
            },
        );
        if p.start > now {
            // Starting ahead of the promise: move the rectangle to now.
            self.profile.release(p.start, p.meta.estimate, p.meta.width);
            self.profile.reserve(now, p.meta.estimate, p.meta.width);
        }
    }

    /// Start queued jobs that fit immediately (in priority order) and any
    /// whose promise is due; report the next wake-up.
    ///
    /// See the conservative scheduler for the `retry_same_instant`
    /// contract: a deferral observed during `on_wake` cannot resolve at
    /// `now` (wakes are the last event class at an instant), so asking for
    /// a same-instant wake-up again would spin forever.
    fn collect(&mut self, now: SimTime, retry_same_instant: bool) -> Decisions {
        let mut starts = Vec::new();
        self.queue
            .sort_by(|a, b| self.policy.compare(&a.meta, &b.meta, now));
        let mut deferred = false;
        let mut i = 0;
        while i < self.queue.len() {
            let p = self.queue[i];
            let due = p.start <= now;
            if p.meta.width <= self.free {
                // Can it start now without breaking any other promise?
                // The release → fits → reserve probe of the job's own
                // rectangle is needed only when that rectangle could change
                // the answer: if the hole fits with the rectangle still in
                // place, lifting it only adds capacity (still fits); if it
                // does not fit and the rectangle is disjoint from the
                // candidate window, lifting it cannot help.
                let fits_now = if self.profile.fits(now, p.meta.estimate, p.meta.width) {
                    true
                } else if p.start < now + p.meta.estimate {
                    self.profile.release(p.start, p.meta.estimate, p.meta.width);
                    let fits = self.profile.fits(now, p.meta.estimate, p.meta.width);
                    self.profile.reserve(p.start, p.meta.estimate, p.meta.width);
                    fits
                } else {
                    false
                };
                if fits_now || due {
                    let p = self.queue.remove(i);
                    // Starting ahead of the promise relocates the job's
                    // rectangle to `now`, which frees capacity at its old
                    // position — that can unblock a higher-priority job
                    // already skipped this pass, so only then rescan.
                    // A start at the promise itself only consumes
                    // processors and can unblock nothing.
                    let moved = p.start > now;
                    self.start_job(p, now);
                    starts.push(p.meta.id);
                    if moved {
                        i = 0;
                    }
                    continue;
                }
            } else if due {
                deferred = true;
            }
            i += 1;
        }
        let wakeup = if deferred && retry_same_instant {
            Some(now)
        } else if deferred {
            // Deferred at a wake-up: wait for the next strictly-future
            // promise; completions re-trigger collection on their own.
            self.queue
                .iter()
                .map(|p| p.start)
                .filter(|&s| s > now)
                .min()
        } else {
            self.queue.iter().map(|p| p.start).min()
        };
        self.profile.trim_before(now);
        Decisions {
            preempts: Vec::new(),
            starts,
            wakeup,
        }
    }
}

impl Scheduler for SlackScheduler {
    fn name(&self) -> String {
        match self.slack {
            SlackPolicy::Constant(s) => format!("Slack({s})/{}", self.policy),
            SlackPolicy::ProportionalToEstimate(f) => format!("Slack({f}×est)/{}", self.policy),
        }
    }

    fn on_arrival(&mut self, job: JobMeta, now: SimTime) -> Decisions {
        assert!(
            job.width <= self.profile.capacity(),
            "{} wider than machine",
            job.id
        );
        // Earliest feasible anchor, then park the rectangle σ later (at the
        // first feasible position at or after anchor + σ).
        let earliest = self.profile.find_anchor(now, job.estimate, job.width);
        let sigma = self.slack.slack_for(&job);
        let promise = if sigma.is_zero() {
            earliest
        } else {
            self.profile
                .find_anchor(earliest + sigma, job.estimate, job.width)
        };
        self.profile.reserve(promise, job.estimate, job.width);
        self.queue.push(Promise {
            meta: job,
            start: promise,
        });
        self.collect(now, true)
    }

    fn on_completion(&mut self, id: JobId, now: SimTime) -> Decisions {
        let run = self
            .running
            .remove(&id)
            .expect("completion for unknown job");
        self.free += run.width;
        if now < run.est_end {
            self.profile.release(now, run.est_end.since(now), run.width);
        }
        self.collect(now, true)
    }

    fn on_wake(&mut self, now: SimTime) -> Decisions {
        self.collect(now, false)
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn profile_stats(&self) -> Option<ProfileStats> {
        Some(self.profile.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u32, arrival: u64, estimate: u64, width: u32) -> JobMeta {
        JobMeta {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    fn sched(slack: SlackPolicy) -> SlackScheduler {
        SlackScheduler::new(8, Policy::Fcfs, slack)
    }

    #[test]
    fn idle_machine_starts_immediately_regardless_of_slack() {
        let mut s = sched(SlackPolicy::Constant(SimSpan::new(1_000)));
        let d = s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        assert_eq!(d.starts, vec![JobId(0)]);
    }

    #[test]
    fn promise_is_anchor_plus_slack() {
        let mut s = sched(SlackPolicy::Constant(SimSpan::new(500)));
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO); // runs [0,100)
        let d = s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1));
        assert!(d.starts.is_empty());
        // Earliest anchor 100, slack 500 -> promise at 600.
        assert_eq!(s.promise(JobId(1)), Some(SimTime::new(600)));
    }

    #[test]
    fn job_starts_at_earliest_opportunity_not_at_promise() {
        let mut s = sched(SlackPolicy::Constant(SimSpan::new(500)));
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1)); // promised 600
                                                          // Machine frees at 100: job 1 starts right away, well before 600.
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert_eq!(d.starts, vec![JobId(1)]);
    }

    #[test]
    fn slack_window_admits_backfill_that_conservative_refuses() {
        // Conservative: job 1 reserved at 100 blocks a 200-second 2-wide
        // job (it would overlap the reservation). With slack 500, job 1's
        // rectangle sits at 600, so the long narrow job backfills at once.
        let mut s = sched(SlackPolicy::Constant(SimSpan::new(500)));
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1));
        let d = s.on_arrival(meta(2, 2, 200, 2), SimTime::new(2));
        assert_eq!(
            d.starts,
            vec![JobId(2)],
            "slack window should admit the backfill"
        );
    }

    #[test]
    fn promise_is_never_exceeded() {
        // Even when backfills consume the slack window, the job starts by
        // its promise: the rectangle at the promise was never given away.
        let mut s = sched(SlackPolicy::Constant(SimSpan::new(100)));
        s.on_arrival(meta(0, 0, 1_000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1)); // promise 1100
        assert_eq!(s.promise(JobId(1)), Some(SimTime::new(1_100)));
        // Exact completion at 1000; job 1 starts at 1000 (early) or by its
        // promise at the latest.
        let d = s.on_completion(JobId(0), SimTime::new(1_000));
        assert_eq!(d.starts, vec![JobId(1)]);
    }

    #[test]
    fn zero_slack_promise_equals_conservative_anchor() {
        let mut s = sched(SlackPolicy::Constant(SimSpan::ZERO));
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1));
        assert_eq!(s.promise(JobId(1)), Some(SimTime::new(100)));
    }

    #[test]
    fn proportional_slack_scales_with_estimate() {
        let mut s = sched(SlackPolicy::ProportionalToEstimate(2.0));
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1));
        // anchor 100 + 2*50 = 200.
        assert_eq!(s.promise(JobId(1)), Some(SimTime::new(200)));
    }

    #[test]
    fn name_reports_slack_policy() {
        assert_eq!(
            sched(SlackPolicy::ProportionalToEstimate(2.0)).name(),
            "Slack(2×est)/FCFS"
        );
    }

    #[test]
    fn due_promise_does_not_spin_same_instant_wakeups() {
        let mut s = sched(SlackPolicy::Constant(SimSpan::ZERO));
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO); // starts; est_end 100
        let d = s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1)); // promised 100
        assert_eq!(d.wakeup, Some(SimTime::new(100)));
        // Job 0 overruns; the wake at 150 finds the machine still busy.
        let d = s.on_wake(SimTime::new(150));
        assert!(d.starts.is_empty());
        assert_ne!(
            d.wakeup,
            Some(SimTime::new(150)),
            "would spin the event loop"
        );
    }

    #[test]
    fn exposes_profile_stats() {
        let mut s = sched(SlackPolicy::Constant(SimSpan::new(500)));
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1));
        let stats = s.profile_stats().expect("slack keeps a profile");
        assert!(stats.find_anchor_calls >= 2);
        assert!(stats.reserves >= 2);
    }
}
