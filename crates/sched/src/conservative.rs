//! Conservative backfilling.
//!
//! Every job receives a **start-time reservation the moment it arrives**,
//! at the earliest anchor that delays no previously existing reservation
//! (Section 2 of the paper). Because guarantees are handed out in arrival
//! order, the schedule is completely determined when estimates are exact —
//! the paper's Section 4.1 equivalence result, which this implementation
//! reproduces mechanically.
//!
//! The priority policy only matters when a job **completes earlier than its
//! estimate**: the hole it leaves lets queued jobs be *re-anchored*
//! ("compressed") to earlier start times. Jobs are re-anchored in priority
//! order, and each job's new anchor is provably never later than its old
//! guarantee (its old rectangle remains feasible throughout the pass), so
//! guarantees only improve — asserted in code.

use crate::policy::Policy;
use crate::profile::{Profile, ProfileStats};
use crate::queue::sort_keyed_with;
use crate::scheduler::{Decisions, JobMeta, Scheduler};
use obs::trace::{SharedRecorder, TraceKind};
use serde::{Deserialize, Serialize};
use simcore::{JobId, SimTime};
use std::collections::HashMap;

/// What happens to queued jobs' reservations when a hole opens (a running
/// job completed earlier than its estimate).
///
/// The paper's wording — queued jobs are "considered for backfill in the
/// priority order" — is [`Compression::Backfill`]: a job moves only if it
/// can start *immediately* in the hole; otherwise it keeps its original
/// guarantee. [`Compression::Reanchor`] is the stronger variant that
/// re-anchors every queued reservation to its earliest feasible time,
/// whether or not that is now. Both preserve all guarantees (a job never
/// moves later); the ablation bench compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Compression {
    /// Move a queued job only if it can start now (paper semantics).
    #[default]
    Backfill,
    /// Re-anchor every queued job as early as possible.
    Reanchor,
    /// Move jobs into the hole in priority order, stopping at the first
    /// that cannot start now — the head may start early but nothing jumps
    /// a blocked higher-priority job (backfilling happens at arrival only).
    HeadStart,
    /// Never move queued jobs; holes benefit only later arrivals
    /// (ablation: isolates arrival-time backfilling).
    None,
}

#[derive(Debug, Clone, Copy)]
struct Reservation {
    meta: JobMeta,
    start: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    width: u32,
    est_end: SimTime,
}

/// Conservative backfilling scheduler.
#[derive(Debug, Clone)]
pub struct ConservativeScheduler {
    policy: Policy,
    profile: Profile,
    queue: Vec<Reservation>,
    running: HashMap<JobId, Running>,
    /// Processors actually free *right now*. The profile alone is not
    /// enough: at an instant with several simultaneous completions, the
    /// profile already shows all of them done while the driver is still
    /// delivering the completion events one by one. A due reservation only
    /// starts once the processors are physically free; until then it is
    /// deferred to a same-instant wake-up.
    free: u32,
    mode: Compression,
    /// Opt-in decision-trace recorder (strictly observational).
    recorder: Option<SharedRecorder>,
    /// Opt-in per-phase profiling accumulator (strictly observational).
    phases: Option<obs::SharedPhases>,
    /// Recycled `starts` buffer from the previous event's [`Decisions`]
    /// (handed back by the driver via [`Scheduler::recycle`]); its capacity
    /// serves the next collect pass.
    starts_scratch: Vec<JobId>,
    /// Reusable keyed-sort buffer for XFactor compression passes.
    sort_scratch: Vec<(f64, Reservation)>,
}

impl ConservativeScheduler {
    /// Create for a machine with `capacity` processors, with the paper's
    /// hole-backfilling compression.
    pub fn new(capacity: u32, policy: Policy) -> Self {
        Self::with_compression(capacity, policy, Compression::Backfill)
    }

    /// Create with an explicit compression mode.
    pub fn with_compression(capacity: u32, policy: Policy, mode: Compression) -> Self {
        ConservativeScheduler {
            policy,
            profile: Profile::new(capacity),
            queue: Vec::new(),
            running: HashMap::new(),
            free: capacity,
            mode,
            recorder: None,
            phases: None,
            starts_scratch: Vec::new(),
            sort_scratch: Vec::new(),
        }
    }

    /// Record one decision event, if a recorder is attached.
    fn record(&self, now: SimTime, id: JobId, kind: TraceKind) {
        if let Some(rec) = &self.recorder {
            rec.borrow_mut().record(now.as_secs(), id.0 as u64, kind);
        }
    }

    /// The currently guaranteed start time of a queued job (tests/metrics).
    pub fn guarantee(&self, id: JobId) -> Option<SimTime> {
        self.queue.iter().find(|r| r.meta.id == id).map(|r| r.start)
    }

    fn start_job(&mut self, res: Reservation, now: SimTime) {
        debug_assert!(res.start <= now, "started before its reservation");
        self.free -= res.meta.width;
        self.running.insert(
            res.meta.id,
            Running {
                width: res.meta.width,
                est_end: now + res.meta.estimate,
            },
        );
        // The reservation rectangle simply becomes the running occupancy;
        // the profile needs no update. This relies on the job starting at
        // its reserved instant: on valid traces (runtime <= estimate) a due
        // job is deferred only by same-instant sibling completions, so it
        // starts with `now == res.start` and consumes exactly the rectangle
        // the profile carries. If a job overruns its estimate (`res.start <
        // now`), the `free` gate in collect() still prevents any capacity
        // violation — tests cover both cases.
    }

    /// Start every queued job whose reservation is due *and* whose
    /// processors are physically free, then report the next wake-up. A due
    /// job that does not fit yet is waiting on a sibling completion at this
    /// same instant; with `retry_same_instant` set, the returned
    /// same-instant wake-up retries it after the remaining events are
    /// delivered.
    ///
    /// `on_wake` passes `retry_same_instant = false`: wake-ups are the
    /// *last* event class at an instant, so everything that could free
    /// processors at `now` has already been delivered, and re-requesting
    /// `now` would spin forever (reachable when a job runs past its
    /// estimate). The deferred job instead waits for the next completion or
    /// a strictly later reservation.
    ///
    /// A single ascending pass suffices: starting a job only *consumes*
    /// processors, so a job skipped earlier in the pass can never become
    /// startable later in the same pass — rescanning from the front would
    /// find exactly the same starts in the same order.
    fn collect(&mut self, now: SimTime, retry_same_instant: bool) -> Decisions {
        let mut starts = std::mem::take(&mut self.starts_scratch);
        debug_assert!(starts.is_empty());
        if starts.capacity() > 0 {
            self.profile.note_scratch_reuse();
        }
        let mut deferred = false;
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].start <= now && self.queue[i].meta.width <= self.free {
                let res = self.queue.remove(i);
                starts.push(res.meta.id);
                self.start_job(res, now);
                // `remove` shifted the next candidate into slot `i`.
            } else {
                if self.queue[i].start <= now {
                    deferred = true;
                }
                i += 1;
            }
        }
        let wakeup = if deferred && retry_same_instant {
            Some(now)
        } else if deferred {
            // Deferred at a wake-up: nothing else frees processors at
            // `now`. Fall back to the next strictly future reservation;
            // completions and arrivals re-trigger collection on their own.
            self.queue
                .iter()
                .map(|r| r.start)
                .filter(|&s| s > now)
                .min()
        } else {
            // Not deferred: every due job started, so all remaining
            // reservations are strictly in the future.
            self.queue.iter().map(|r| r.start).min()
        };
        self.profile.trim_before(now);
        Decisions {
            preempts: Vec::new(),
            starts,
            wakeup,
        }
    }

    /// Consider queued jobs for the hole that just opened, in priority
    /// order. A job may only ever move *earlier*: its old rectangle stays
    /// feasible throughout the pass (each mover's new position was chosen
    /// against a profile still containing everyone else's guarantee), so
    /// restoring it is always possible — asserted below.
    ///
    /// For the start-now modes (`Backfill`/`HeadStart`) the decision per
    /// job is a yes/no — "can it start at `now`?" — and the full
    /// release → find_anchor → reserve round-trip is needed only when the
    /// job's own rectangle could influence the answer:
    ///
    /// * if the rectangle `[now, now + estimate)` already fits with the
    ///   job's own reservation still in place, releasing that reservation
    ///   only adds capacity, so the re-anchor would land at `now` — move
    ///   directly, one release + one reserve;
    /// * if it does not fit and the job's own rectangle is disjoint from
    ///   the candidate window (`start >= now + estimate`), releasing it
    ///   cannot change the answer — skip the round-trip entirely, zero
    ///   profile mutations;
    /// * only when the job's own rectangle overlaps the window is the full
    ///   round-trip performed.
    ///
    /// Each branch is decision-for-decision identical to the round-trip
    /// (the differential and compression property tests check this).
    fn compress(&mut self, now: SimTime) {
        self.profile.note_compress_pass();
        self.profile.note_queue_ops(0, 1, 0);
        if self.policy == Policy::XFactor && self.sort_scratch.capacity() > 0 {
            self.profile.note_scratch_reuse();
        }
        let mut scratch = std::mem::take(&mut self.sort_scratch);
        sort_keyed_with(&mut self.queue, self.policy, now, &mut scratch, |r| r.meta);
        self.sort_scratch = scratch;
        for i in 0..self.queue.len() {
            let res = self.queue[i];
            if res.start <= now {
                continue; // already due; collect() will start it
            }
            match self.mode {
                Compression::Backfill | Compression::HeadStart => {
                    // "Can it start at `now`?" without mutating anything.
                    // The release → find_anchor → reserve round-trip is
                    // equivalent to a single read-only probe:
                    //
                    // * rectangle disjoint from the candidate window
                    //   (`res.start >= now + estimate`) — releasing it
                    //   cannot change the answer, so probe the full
                    //   window as-is;
                    // * rectangle overlapping the window — after the
                    //   release, the overlap `[res.start, now + estimate)`
                    //   holds the job's own `width` back and is feasible
                    //   by construction, so the post-release anchor is
                    //   `now` exactly when `[now, res.start)` already has
                    //   `width` free *with the reservation still in
                    //   place* (the rectangle starts strictly after `now`
                    //   and cannot cover that prefix).
                    //
                    // Either way a failed probe mutates nothing: no
                    // release/re-reserve pair, no fits-memo invalidation
                    // — in a saturated system that is almost every probe
                    // of the pass. Each branch is decision-for-decision
                    // identical to the round-trip (the differential and
                    // compression property tests check this).
                    let window = if res.start < now + res.meta.estimate {
                        res.start.since(now)
                    } else {
                        res.meta.estimate
                    };
                    let moved = self.profile.fits(now, window, res.meta.width);
                    if moved {
                        self.profile
                            .release(res.start, res.meta.estimate, res.meta.width);
                        self.profile.reserve(now, res.meta.estimate, res.meta.width);
                        self.queue[i].start = now;
                        self.record(
                            now,
                            res.meta.id,
                            TraceKind::Compress {
                                moved: res.start.since(now).as_secs(),
                            },
                        );
                    }
                    if self.mode == Compression::HeadStart && !moved {
                        // Strict priority: nothing may start ahead of a
                        // blocked higher-priority job.
                        break;
                    }
                }
                Compression::Reanchor => {
                    // Same shortcut as above: fitting at `now` with the
                    // job's own rectangle still in place proves the
                    // post-release anchor is `now` (release only adds
                    // capacity and the anchor can't move before `now`),
                    // so the probe is one fits descent, not a round-trip.
                    if self.profile.fits(now, res.meta.estimate, res.meta.width) {
                        self.profile
                            .release(res.start, res.meta.estimate, res.meta.width);
                        self.profile.reserve(now, res.meta.estimate, res.meta.width);
                        self.queue[i].start = now;
                        self.record(
                            now,
                            res.meta.id,
                            TraceKind::Compress {
                                moved: res.start.since(now).as_secs(),
                            },
                        );
                        continue;
                    }
                    self.profile
                        .release(res.start, res.meta.estimate, res.meta.width);
                    let anchor = self
                        .profile
                        .find_anchor(now, res.meta.estimate, res.meta.width);
                    assert!(
                        anchor <= res.start,
                        "compression pushed {} from {} to {}",
                        res.meta.id,
                        res.start,
                        anchor
                    );
                    self.profile
                        .reserve(anchor, res.meta.estimate, res.meta.width);
                    self.queue[i].start = anchor;
                    if anchor < res.start {
                        self.record(
                            now,
                            res.meta.id,
                            TraceKind::Compress {
                                moved: res.start.since(anchor).as_secs(),
                            },
                        );
                    }
                }
                // compress() is only reached when compression is enabled.
                Compression::None => unreachable!("compress called in None mode"),
            }
        }
    }
}

impl Scheduler for ConservativeScheduler {
    fn name(&self) -> String {
        format!("Conservative/{}", self.policy)
    }

    fn on_arrival(&mut self, job: JobMeta, now: SimTime) -> Decisions {
        assert!(
            job.width <= self.profile.capacity(),
            "{} wider than machine",
            job.id
        );
        let anchor = self.profile.find_anchor(now, job.estimate, job.width);
        self.profile.reserve(anchor, job.estimate, job.width);
        self.record(
            now,
            job.id,
            TraceKind::Reserve {
                anchor: anchor.as_secs(),
            },
        );
        let t0 = obs::span::start_nested(&self.phases, obs::Phase::QueueOps);
        self.queue.push(Reservation {
            meta: job,
            start: anchor,
        });
        obs::span::finish_nested(&self.phases, obs::Phase::QueueOps, t0);
        self.collect(now, true)
    }

    fn on_completion(&mut self, id: JobId, now: SimTime) -> Decisions {
        let run = self
            .running
            .remove(&id)
            .expect("completion for unknown job");
        self.free += run.width;
        if now < run.est_end {
            // Early completion: return the unused tail of the rectangle and
            // let queued jobs compress into the hole.
            self.profile.release(now, run.est_end.since(now), run.width);
            if self.mode != Compression::None {
                let t0 = obs::span::start_nested(&self.phases, obs::Phase::Compress);
                self.compress(now);
                obs::span::finish_nested(&self.phases, obs::Phase::Compress, t0);
            }
        }
        self.collect(now, true)
    }

    fn on_wake(&mut self, now: SimTime) -> Decisions {
        // Wakes fire after all same-instant completions and arrivals:
        // a deferral observed here cannot resolve at this instant.
        self.collect(now, false)
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn profile_stats(&self) -> Option<ProfileStats> {
        Some(self.profile.stats())
    }

    fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    fn set_phases(&mut self, phases: obs::SharedPhases) {
        self.phases = Some(phases);
    }

    fn recycle(&mut self, spent: Decisions) {
        let mut starts = spent.starts;
        starts.clear();
        self.starts_scratch = starts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimSpan;

    fn meta(id: u32, arrival: u64, estimate: u64, width: u32) -> JobMeta {
        JobMeta {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    #[test]
    fn immediate_start_on_idle_machine() {
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        let d = s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        assert_eq!(d.starts, vec![JobId(0)]);
    }

    #[test]
    fn narrow_job_backfills_past_blocked_wide_job() {
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO); // runs [0,100) on 6
                                                         // Wide job 1 can't fit until 100: reserved at 100.
        let d = s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1));
        assert!(d.starts.is_empty());
        assert_eq!(s.guarantee(JobId(1)), Some(SimTime::new(100)));
        // Narrow short job 2 fits in the 2-proc sliver before 100: backfills.
        let d = s.on_arrival(meta(2, 2, 50, 2), SimTime::new(2));
        assert_eq!(d.starts, vec![JobId(2)]);
    }

    #[test]
    fn backfill_may_not_delay_existing_guarantee() {
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1)); // reserved [100,150)
                                                          // Job 2 (2 procs, 200 s) would overlap job 1's reservation if
                                                          // started now: must be anchored after 1's rectangle instead.
        let d = s.on_arrival(meta(2, 2, 200, 2), SimTime::new(2));
        assert!(d.starts.is_empty());
        let g2 = s.guarantee(JobId(2)).unwrap();
        assert!(
            g2 >= SimTime::new(150),
            "job 2 anchored at {g2}, delaying job 1"
        );
        assert_eq!(s.guarantee(JobId(1)), Some(SimTime::new(100)));
    }

    #[test]
    fn reservation_fires_via_wakeup() {
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        let d = s.on_arrival(meta(1, 1, 10, 8), SimTime::new(1));
        assert_eq!(d.wakeup, Some(SimTime::new(100)));
        // Exact completion at the estimate: the queued job starts.
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert_eq!(d.starts, vec![JobId(1)]);
    }

    #[test]
    fn early_completion_compresses_guarantees() {
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 1000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 10, 8), SimTime::new(1));
        assert_eq!(s.guarantee(JobId(1)), Some(SimTime::new(1000)));
        // Job 0 finishes at 400, far before its estimate.
        let d = s.on_completion(JobId(0), SimTime::new(400));
        assert_eq!(
            d.starts,
            vec![JobId(1)],
            "compressed job must start in the hole"
        );
    }

    #[test]
    fn compression_respects_priority_order() {
        let mut s = ConservativeScheduler::new(8, Policy::Sjf);
        s.on_arrival(meta(0, 0, 1000, 8), SimTime::ZERO);
        // Arrival order: long job 1 first, short job 2 second.
        s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1)); // reserved [1000,1500)
        s.on_arrival(meta(2, 2, 100, 8), SimTime::new(2)); // reserved [1500,1600)
        assert_eq!(s.guarantee(JobId(1)), Some(SimTime::new(1000)));
        assert_eq!(s.guarantee(JobId(2)), Some(SimTime::new(1500)));
        // Early completion at 100: SJF considers the *short* job first, and
        // it starts in the hole.
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert_eq!(d.starts, vec![JobId(2)]);
        // Paper semantics (Backfill): the long job cannot start now (the
        // short job holds the machine), so it keeps its original guarantee.
        assert_eq!(s.guarantee(JobId(1)), Some(SimTime::new(1000)));
    }

    #[test]
    fn reanchor_mode_also_improves_future_guarantees() {
        let mut s = ConservativeScheduler::with_compression(8, Policy::Sjf, Compression::Reanchor);
        s.on_arrival(meta(0, 0, 1000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1)); // reserved [1000,1500)
        s.on_arrival(meta(2, 2, 100, 8), SimTime::new(2)); // reserved [1500,1600)
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert_eq!(d.starts, vec![JobId(2)]);
        // Full re-anchoring: the long job's guarantee moves up to follow the
        // short job, even though it cannot start yet.
        assert_eq!(s.guarantee(JobId(1)), Some(SimTime::new(200)));
    }

    #[test]
    fn compression_under_fcfs_keeps_arrival_order() {
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 1000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1));
        s.on_arrival(meta(2, 2, 100, 8), SimTime::new(2));
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert_eq!(
            d.starts,
            vec![JobId(1)],
            "FCFS compresses the earlier arrival first"
        );
    }

    #[test]
    fn accurate_estimates_never_compress() {
        // With exact completions there are no holes; guarantees are final.
        let mut s = ConservativeScheduler::new(4, Policy::XFactor);
        s.on_arrival(meta(0, 0, 100, 4), SimTime::ZERO);
        s.on_arrival(meta(1, 0, 100, 4), SimTime::ZERO);
        s.on_arrival(meta(2, 0, 100, 4), SimTime::ZERO);
        assert_eq!(s.guarantee(JobId(1)), Some(SimTime::new(100)));
        assert_eq!(s.guarantee(JobId(2)), Some(SimTime::new(200)));
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert_eq!(d.starts, vec![JobId(1)]);
        assert_eq!(s.guarantee(JobId(2)), Some(SimTime::new(200)));
    }

    #[test]
    fn queue_len_tracks_waiting_jobs() {
        let mut s = ConservativeScheduler::new(4, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 4), SimTime::ZERO);
        assert_eq!(s.queue_len(), 0);
        s.on_arrival(meta(1, 1, 100, 4), SimTime::new(1));
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn name_includes_policy() {
        assert_eq!(
            ConservativeScheduler::new(4, Policy::Sjf).name(),
            "Conservative/SJF"
        );
    }

    #[test]
    fn due_but_unstartable_job_does_not_spin_same_instant_wakeups() {
        // Regression: a job that overruns its estimate (possible when the
        // scheduler is driven directly; the driver's traces forbid it)
        // leaves a due-but-unstartable reservation behind. A wake-up is the
        // last event class at its instant, so answering it with
        // `wakeup = Some(now)` can never make progress — it used to spin
        // the event loop at that instant forever.
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO); // starts; est_end 100
        let d = s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1));
        assert_eq!(d.wakeup, Some(SimTime::new(100)));
        // Job 0 never completes by 150: job 1 is due but the machine is
        // still occupied when the (stale) wake fires.
        let d = s.on_wake(SimTime::new(150));
        assert!(d.starts.is_empty());
        assert_ne!(
            d.wakeup,
            Some(SimTime::new(150)),
            "same-instant wake-up after a wake-up would spin forever"
        );
        // Repeated wakes stay stable (no wake-up churn)...
        let d = s.on_wake(SimTime::new(151));
        assert!(d.starts.is_empty());
        assert_ne!(d.wakeup, Some(SimTime::new(151)));
        // ...and the eventual completion still starts the deferred job.
        let d = s.on_completion(JobId(0), SimTime::new(200));
        assert_eq!(d.starts, vec![JobId(1)]);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn deferred_job_starts_exactly_at_reservation_instant() {
        // start_job() assumes the profile needs no update when a job
        // starts: on a valid trace a due job is deferred only by sibling
        // completions at the *same* instant, so it starts at exactly
        // `res.start` and consumes precisely the rectangle the profile
        // already carries.
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 4), SimTime::ZERO);
        s.on_arrival(meta(1, 0, 100, 4), SimTime::ZERO);
        let d = s.on_arrival(meta(2, 1, 50, 8), SimTime::new(1));
        assert_eq!(d.wakeup, Some(SimTime::new(100)));
        // First of two simultaneous completions: only 4 procs free, so the
        // due reservation defers with a same-instant retry.
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert!(d.starts.is_empty(), "only half the processors are free");
        assert_eq!(
            d.wakeup,
            Some(SimTime::new(100)),
            "retry once siblings complete"
        );
        // Second completion at the same instant: the job starts at exactly
        // its reserved time.
        let d = s.on_completion(JobId(1), SimTime::new(100));
        assert_eq!(d.starts, vec![JobId(2)]);
        // The profile still shows job 2's rectangle [100, 150) — full, then
        // free — with no post-start fixup.
        assert_eq!(s.profile.free_at(SimTime::new(125)), 0);
        assert_eq!(s.profile.free_at(SimTime::new(150)), 8);
        assert!(s.profile.invariants_ok());
    }

    #[test]
    fn late_start_past_reservation_never_overcommits() {
        // The other half of the start_job assumption: when a job *does*
        // start later than its reservation (overrun scenario), the `free`
        // gate — not the profile — is what prevents overcommitting the
        // machine.
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1)); // reserved [100,150)
                                                          // Job 0 overruns; its completion arrives at 120.
        let d = s.on_completion(JobId(0), SimTime::new(120));
        assert_eq!(
            d.starts,
            vec![JobId(1)],
            "starts late, at 120 > reserved 100"
        );
        // A new arrival while job 1 runs [120, 170): must defer to the free
        // gate even though the stale profile shows capacity from 150.
        let d = s.on_arrival(meta(2, 121, 10, 8), SimTime::new(121));
        assert!(d.starts.is_empty(), "no processors are physically free");
        let d = s.on_completion(JobId(1), SimTime::new(170));
        assert_eq!(d.starts, vec![JobId(2)]);
    }

    #[test]
    fn recorder_sees_reserves_and_compressions() {
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        let rec = obs::trace::shared(64);
        s.set_recorder(rec.clone());
        s.on_arrival(meta(0, 0, 1000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 10, 8), SimTime::new(1)); // anchored at 1000
        s.on_completion(JobId(0), SimTime::new(400)); // hole: job 1 moves to 400
        let events = rec.borrow().events();
        let kinds: Vec<(u64, &TraceKind)> = events.iter().map(|e| (e.job, &e.kind)).collect();
        assert_eq!(kinds[0], (0, &TraceKind::Reserve { anchor: 0 }));
        assert_eq!(kinds[1], (1, &TraceKind::Reserve { anchor: 1000 }));
        assert_eq!(kinds[2], (1, &TraceKind::Compress { moved: 600 }));
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn profile_stats_are_exposed_and_grow() {
        let mut s = ConservativeScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 1000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 10, 8), SimTime::new(1));
        let before = s.profile_stats().expect("conservative keeps a profile");
        assert!(before.find_anchor_calls >= 2);
        assert!(before.reserves >= 2);
        assert_eq!(before.compress_passes, 0);
        s.on_completion(JobId(0), SimTime::new(400)); // early → compress
        let after = s.profile_stats().unwrap();
        assert_eq!(after.compress_passes, 1);
        assert!(after.releases > before.releases);
    }
}
