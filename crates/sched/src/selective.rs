//! Selective backfilling — the strategy the paper's conclusion proposes.
//!
//! Conservative backfilling gives *every* job a reservation (limiting
//! backfill opportunities); EASY gives a reservation only to the queue head
//! (letting unlucky wide jobs wait unboundedly). Section 6 of the paper
//! sketches the middle ground the authors pursue in their follow-up work
//! ("Selective Reservation Strategies for Backfill Job Scheduling"): **no
//! job holds a reservation until its expected slowdown crosses a
//! threshold**, whereupon it receives — and keeps — a guaranteed start
//! time. With a judicious threshold, few reservations exist at any moment
//! (EASY-like backfill freedom) but every needy job is eventually protected
//! (conservative-like worst-case bounds).
//!
//! Expected slowdown is measured by the job's *expansion factor*
//! `(wait + estimate) / estimate`, exactly the quantity the XFactor
//! priority policy uses, so the threshold is in natural units:
//! `threshold = 2.0` means "protect a job once its wait equals its
//! estimated runtime".
//!
//! Degenerate settings recover the other two schemes: `threshold <= 1`
//! reserves on arrival (conservative), `threshold = ∞` never reserves
//! (pure free-for-all backfilling, more aggressive than EASY).

use crate::policy::Policy;
use crate::profile::{Profile, ProfileStats};
use crate::queue::{sort_keyed_with, SchedQueue};
use crate::scheduler::{Decisions, JobMeta, Scheduler};
use simcore::{JobId, SimSpan, SimTime};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Reservation {
    meta: JobMeta,
    start: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    width: u32,
    est_end: SimTime,
}

/// Selective backfilling scheduler.
#[derive(Debug, Clone)]
pub struct SelectiveScheduler {
    policy: Policy,
    threshold: f64,
    profile: Profile,
    /// Protected jobs. Deliberately a plain `Vec`: between compression
    /// passes its order (last sort + promotion appends) is event-visible
    /// through the due-start scan, so it must not be kept eagerly sorted.
    reserved: Vec<Reservation>,
    unreserved: SchedQueue,
    running: HashMap<JobId, Running>,
    /// Processors physically free right now (see the conservative
    /// scheduler: the profile runs ahead of the event stream at instants
    /// with several simultaneous completions).
    free: u32,
    /// Recycled `starts` buffer from the previous event's [`Decisions`].
    starts_scratch: Vec<JobId>,
    /// Reusable keyed-sort buffer for XFactor compression passes.
    sort_scratch: Vec<(f64, Reservation)>,
}

impl SelectiveScheduler {
    /// Create for a machine with `capacity` processors. `threshold` is the
    /// expansion-factor level at which a job is promoted to a reservation
    /// (must be ≥ 1; pass `f64::INFINITY` to disable reservations).
    pub fn new(capacity: u32, policy: Policy, threshold: f64) -> Self {
        assert!(
            threshold >= 1.0,
            "xfactor threshold must be >= 1, got {threshold}"
        );
        SelectiveScheduler {
            policy,
            threshold,
            profile: Profile::new(capacity),
            reserved: Vec::new(),
            unreserved: SchedQueue::new(policy),
            running: HashMap::new(),
            free: capacity,
            starts_scratch: Vec::new(),
            sort_scratch: Vec::new(),
        }
    }

    /// The instant at which `job`'s expansion factor reaches the threshold.
    fn crossing_time(&self, job: &JobMeta) -> SimTime {
        if self.threshold.is_infinite() {
            return SimTime::FAR_FUTURE;
        }
        // xf(t) = ((t - arrival) + est) / est >= τ  ⇔  t >= arrival + (τ-1)·est.
        let est = job.estimate.as_secs().max(1) as f64;
        let wait_needed = (self.threshold - 1.0) * est;
        job.arrival + SimSpan::new(wait_needed.ceil() as u64)
    }

    /// True if the job currently deserves a reservation.
    fn crossed(&self, job: &JobMeta, now: SimTime) -> bool {
        Policy::xfactor(job, now) >= self.threshold
    }

    fn start_running(&mut self, meta: JobMeta, now: SimTime, starts: &mut Vec<JobId>) {
        debug_assert!(meta.width <= self.free);
        self.free -= meta.width;
        self.running.insert(
            meta.id,
            Running {
                width: meta.width,
                est_end: now + meta.estimate,
            },
        );
        starts.push(meta.id);
    }

    /// Re-anchor reservations after a hole opened (early completion).
    fn compress(&mut self, now: SimTime) {
        self.profile.note_compress_pass();
        self.profile.note_queue_ops(0, 1, 0);
        if self.policy == Policy::XFactor && self.sort_scratch.capacity() > 0 {
            self.profile.note_scratch_reuse();
        }
        let mut scratch = std::mem::take(&mut self.sort_scratch);
        sort_keyed_with(&mut self.reserved, self.policy, now, &mut scratch, |r| {
            r.meta
        });
        self.sort_scratch = scratch;
        for i in 0..self.reserved.len() {
            let res = self.reserved[i];
            // If the rectangle fits at `now` with the job's own
            // reservation still in place, releasing it only adds
            // capacity, so the re-anchor would land at `now` — one fits
            // descent replaces the release/find_anchor round-trip (and
            // a reservation already at `now` needs no mutation at all).
            if res.start >= now && self.profile.fits(now, res.meta.estimate, res.meta.width) {
                if res.start > now {
                    self.profile
                        .release(res.start, res.meta.estimate, res.meta.width);
                    self.profile.reserve(now, res.meta.estimate, res.meta.width);
                    self.reserved[i].start = now;
                }
                continue;
            }
            self.profile
                .release(res.start, res.meta.estimate, res.meta.width);
            let anchor = self
                .profile
                .find_anchor(now, res.meta.estimate, res.meta.width);
            assert!(anchor <= res.start, "compression delayed a protected job");
            self.profile
                .reserve(anchor, res.meta.estimate, res.meta.width);
            self.reserved[i].start = anchor;
        }
    }

    /// Promote, start, and backfill; report the next wake-up. See
    /// the conservative scheduler for the `retry_same_instant` contract:
    /// wake-ups are the last event class at an instant, so a deferral
    /// observed during `on_wake` cannot resolve at `now` and asking for a
    /// same-instant wake-up again would spin forever.
    fn reschedule(&mut self, now: SimTime, retry_same_instant: bool) -> Decisions {
        let mut starts = std::mem::take(&mut self.starts_scratch);
        debug_assert!(starts.is_empty());
        if starts.capacity() > 0 {
            self.profile.note_scratch_reuse();
        }

        // Promote jobs whose expansion factor crossed the threshold, in
        // priority order (simultaneous crossers are anchored best-first).
        self.unreserved.prepare(now);
        let mut i = 0;
        while i < self.unreserved.len() {
            if self.crossed(&self.unreserved[i], now) {
                let meta = self.unreserved.remove(i);
                let anchor = self.profile.find_anchor(now, meta.estimate, meta.width);
                self.profile.reserve(anchor, meta.estimate, meta.width);
                self.reserved.push(Reservation {
                    meta,
                    start: anchor,
                });
            } else {
                i += 1;
            }
        }

        // Start protected jobs whose reservation is due and physically
        // fits. A due job blocked by a sibling same-instant completion is
        // retried via the same-instant wake-up below. One ascending pass
        // suffices: starting a job only consumes processors (the rectangle
        // stays where it was), so nothing skipped can become startable
        // within the pass.
        let mut deferred = false;
        let mut i = 0;
        while i < self.reserved.len() {
            if self.reserved[i].start <= now && self.reserved[i].meta.width <= self.free {
                let res = self.reserved.remove(i);
                self.start_running(res.meta, now, &mut starts);
            } else {
                if self.reserved[i].start <= now {
                    deferred = true;
                }
                i += 1;
            }
        }

        // Backfill unprotected jobs around the reservations.
        let mut i = 0;
        while i < self.unreserved.len() {
            let cand = self.unreserved[i];
            if cand.width <= self.free && self.profile.fits(now, cand.estimate, cand.width) {
                self.profile.reserve(now, cand.estimate, cand.width);
                self.unreserved.remove(i);
                self.start_running(cand, now, &mut starts);
            } else {
                i += 1;
            }
        }

        self.profile.trim_before(now);
        let wakeup = if deferred && retry_same_instant {
            Some(now)
        } else {
            // Next strictly-future reservation or threshold crossing.
            // (Outside the deferred case nothing due remains, so the
            // `> now` filter changes nothing; in the deferred-at-wake case
            // it is what prevents the same-instant spin.)
            self.reserved
                .iter()
                .map(|r| r.start)
                .chain(self.unreserved.iter().map(|j| self.crossing_time(j)))
                .filter(|&t| t > now && t < SimTime::FAR_FUTURE)
                .min()
        };
        Decisions {
            preempts: Vec::new(),
            starts,
            wakeup,
        }
    }
}

impl Scheduler for SelectiveScheduler {
    fn name(&self) -> String {
        if self.threshold.is_infinite() {
            format!("Selective(∞)/{}", self.policy)
        } else {
            format!("Selective({})/{}", self.threshold, self.policy)
        }
    }

    fn on_arrival(&mut self, job: JobMeta, now: SimTime) -> Decisions {
        assert!(
            job.width <= self.profile.capacity(),
            "{} wider than machine",
            job.id
        );
        self.unreserved.push(job);
        self.reschedule(now, true)
    }

    fn on_completion(&mut self, id: JobId, now: SimTime) -> Decisions {
        let run = self
            .running
            .remove(&id)
            .expect("completion for unknown job");
        self.free += run.width;
        if now < run.est_end {
            self.profile.release(now, run.est_end.since(now), run.width);
            self.compress(now);
        }
        self.reschedule(now, true)
    }

    fn on_wake(&mut self, now: SimTime) -> Decisions {
        self.reschedule(now, false)
    }

    fn queue_len(&self) -> usize {
        self.reserved.len() + self.unreserved.len()
    }

    fn profile_stats(&self) -> Option<ProfileStats> {
        let mut stats = self.profile.stats();
        self.unreserved.counters().merge_into(&mut stats);
        Some(stats)
    }

    fn recycle(&mut self, spent: Decisions) {
        let mut starts = spent.starts;
        starts.clear();
        self.starts_scratch = starts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u32, arrival: u64, estimate: u64, width: u32) -> JobMeta {
        JobMeta {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    #[test]
    fn idle_machine_starts_immediately() {
        let mut s = SelectiveScheduler::new(8, Policy::Fcfs, 2.0);
        let d = s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        assert_eq!(d.starts, vec![JobId(0)]);
    }

    #[test]
    fn unprotected_jobs_backfill_freely() {
        let mut s = SelectiveScheduler::new(8, Policy::Fcfs, 100.0);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1)); // waits, unprotected
                                                           // A long 2-wide job backfills at once — EASY would refuse it
                                                           // (it would delay job 1's reservation); selective has none to delay.
        let d = s.on_arrival(meta(2, 2, 9_000, 2), SimTime::new(2));
        assert_eq!(d.starts, vec![JobId(2)]);
    }

    #[test]
    fn crossing_time_formula() {
        let s = SelectiveScheduler::new(8, Policy::Fcfs, 3.0);
        let j = meta(1, 1000, 200, 1);
        // wait needed = (3-1)*200 = 400 -> crossing at 1400.
        assert_eq!(s.crossing_time(&j), SimTime::new(1400));
        let s = SelectiveScheduler::new(8, Policy::Fcfs, f64::INFINITY);
        assert_eq!(s.crossing_time(&j), SimTime::FAR_FUTURE);
    }

    #[test]
    fn job_gets_reservation_once_threshold_crossed() {
        let mut s = SelectiveScheduler::new(8, Policy::Fcfs, 2.0);
        s.on_arrival(meta(0, 0, 1_000, 8), SimTime::ZERO);
        // Job 1 (est 100): crosses at t = 1 + 100 = 101.
        let d = s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1));
        assert_eq!(
            d.wakeup,
            Some(SimTime::new(101)),
            "wake at the crossing time"
        );
        let d = s.on_wake(SimTime::new(101));
        assert!(d.starts.is_empty());
        // Now protected: a new job that would delay it must not backfill.
        let d = s.on_arrival(meta(2, 102, 2_000, 8), SimTime::new(102));
        assert!(d.starts.is_empty());
        // At job 0's (exact) completion, the protected job starts first.
        let d = s.on_completion(JobId(0), SimTime::new(1_000));
        assert_eq!(d.starts, vec![JobId(1)]);
    }

    #[test]
    fn threshold_one_reserves_on_arrival() {
        let mut s = SelectiveScheduler::new(8, Policy::Fcfs, 1.0);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1));
        // Like conservative: job 2 anchored after job 1's rectangle, so a
        // conflicting backfill is refused.
        let d = s.on_arrival(meta(2, 2, 200, 2), SimTime::new(2));
        assert!(d.starts.is_empty());
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn early_completion_compresses_protected_jobs() {
        let mut s = SelectiveScheduler::new(8, Policy::Fcfs, 1.0);
        s.on_arrival(meta(0, 0, 1_000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1));
        let d = s.on_completion(JobId(0), SimTime::new(300));
        assert_eq!(d.starts, vec![JobId(1)]);
    }

    #[test]
    fn infinite_threshold_never_reserves() {
        let mut s = SelectiveScheduler::new(8, Policy::Fcfs, f64::INFINITY);
        s.on_arrival(meta(0, 0, 1_000, 8), SimTime::ZERO);
        let d = s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1));
        assert_eq!(d.wakeup, None, "no reservations, no crossings, no wake-ups");
        assert_eq!(s.name(), "Selective(∞)/FCFS");
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn rejects_sub_one_threshold() {
        SelectiveScheduler::new(8, Policy::Fcfs, 0.5);
    }

    #[test]
    fn due_protected_job_does_not_spin_same_instant_wakeups() {
        // A protected job whose reservation is due but whose processors are
        // held by an overrunning job must not answer a wake-up with another
        // same-instant wake-up (nothing else can happen at that instant).
        let mut s = SelectiveScheduler::new(8, Policy::Fcfs, 1.0);
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO); // starts; est_end 100
        let d = s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1)); // protected at 100
        assert_eq!(d.wakeup, Some(SimTime::new(100)));
        // Job 0 overruns its estimate; the wake at 150 finds the machine busy.
        let d = s.on_wake(SimTime::new(150));
        assert!(d.starts.is_empty());
        assert_ne!(
            d.wakeup,
            Some(SimTime::new(150)),
            "would spin the event loop"
        );
        let d = s.on_completion(JobId(0), SimTime::new(200));
        assert_eq!(d.starts, vec![JobId(1)]);
    }

    #[test]
    fn exposes_profile_stats() {
        let mut s = SelectiveScheduler::new(8, Policy::Fcfs, 1.0);
        s.on_arrival(meta(0, 0, 1_000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1));
        s.on_completion(JobId(0), SimTime::new(300)); // early → compress
        let stats = s.profile_stats().expect("selective keeps a profile");
        assert!(stats.find_anchor_calls > 0);
        assert_eq!(stats.compress_passes, 1);
    }
}
