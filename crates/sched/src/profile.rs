//! The availability profile — the scheduler's "2D chart".
//!
//! The paper describes scheduling as a chart with time on one axis and
//! processors on the other; each job or reservation is a rectangle.
//! [`Profile`] is that chart's free-capacity silhouette: a stepwise
//! function from time to the number of free processors, represented as a
//! sorted list of segments. The final segment extends to infinity.
//!
//! Everything the backfilling schedulers do reduces to three operations:
//!
//! * [`Profile::find_anchor`] — the earliest instant at or after a given
//!   time where a `width × duration` rectangle fits ("where can this job's
//!   reservation go?");
//! * [`Profile::reserve`] — carve the rectangle out;
//! * [`Profile::release`] — put capacity back (cancelled reservation, or
//!   the unused tail of an over-estimated job that finished early).
//!
//! Invariants (checked by `debug_assert` internally and by property tests):
//! segments are strictly ordered in time, free counts stay within
//! `[0, capacity]`, and adjacent segments always differ (coalesced).

use simcore::{SimSpan, SimTime};

/// One step of the free-capacity silhouette: `free` processors are
/// available from `start` until the next segment's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// When this level of availability begins.
    pub start: SimTime,
    /// Free processors over the segment.
    pub free: u32,
}

/// The free-capacity timeline of a machine, including running jobs and any
/// future reservations the scheduler maintains.
///
/// ```
/// use sched::Profile;
/// use simcore::{SimSpan, SimTime};
///
/// let mut p = Profile::new(8);
/// // A 6-wide job runs for 100 s starting now.
/// p.reserve(SimTime::ZERO, SimSpan::new(100), 6);
/// // Earliest slot for an 8-wide, 50 s job: after the running job.
/// assert_eq!(p.find_anchor(SimTime::ZERO, SimSpan::new(50), 8), SimTime::new(100));
/// // A 2-wide job backfills immediately alongside it.
/// assert_eq!(p.find_anchor(SimTime::ZERO, SimSpan::new(50), 2), SimTime::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    capacity: u32,
    /// Sorted by `start`, strictly increasing, values coalesced.
    /// Non-empty: the last segment extends to infinity.
    segs: Vec<Segment>,
}

impl Profile {
    /// A fully free machine with `capacity` processors. Panics if zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "profile needs positive capacity");
        Profile { capacity, segs: vec![Segment { start: SimTime::ZERO, free: capacity }] }
    }

    /// The machine's total processor count.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The underlying segments (for inspection and tests).
    pub fn segments(&self) -> &[Segment] {
        &self.segs
    }

    /// Free processors at instant `t`.
    pub fn free_at(&self, t: SimTime) -> u32 {
        // Index of the last segment with start <= t.
        let idx = self.segs.partition_point(|s| s.start <= t);
        if idx == 0 {
            // Before all segments: the profile began fully free.
            self.capacity
        } else {
            self.segs[idx - 1].free
        }
    }

    /// True if a `width × duration` rectangle fits with its left edge
    /// exactly at `start`.
    pub fn fits(&self, start: SimTime, duration: SimSpan, width: u32) -> bool {
        self.find_anchor(start, duration, width) == start
    }

    /// The earliest instant `t >= earliest` where a `width × duration`
    /// rectangle fits. Always terminates because the profile eventually
    /// returns to an (infinitely long) final segment.
    ///
    /// Panics if `width > capacity` or the final segment has fewer than
    /// `width` free processors (a rectangle that could never fit).
    pub fn find_anchor(&self, earliest: SimTime, duration: SimSpan, width: u32) -> SimTime {
        assert!(
            width <= self.capacity,
            "width {width} exceeds capacity {}",
            self.capacity
        );
        let last_free = self.segs.last().expect("non-empty").free;
        assert!(
            width <= last_free,
            "width {width} never fits: final free level is {last_free}"
        );
        if duration.is_zero() || width == 0 {
            return earliest;
        }

        let mut anchor = earliest;
        // The region before the first segment boundary is implicitly fully
        // free (it only exists after trim_before); a rectangle fitting
        // entirely inside it anchors immediately.
        let first_start = self.segs[0].start;
        if anchor < first_start && anchor + duration <= first_start {
            return anchor;
        }

        // Scan from the segment containing (or first after) the anchor.
        // Invariant on entry to each iteration: free >= width over
        // [anchor, seg.start) — either empty, the implicit free region, or
        // previously verified segments.
        let mut idx = self.segs.partition_point(|s| s.start <= anchor).saturating_sub(1);
        loop {
            let seg = self.segs[idx];
            let seg_end = if idx + 1 < self.segs.len() {
                self.segs[idx + 1].start
            } else {
                // The final segment is infinite; asserted wide enough above.
                if seg.free >= width {
                    return anchor;
                }
                unreachable!("final segment narrower than asserted");
            };
            if seg.free >= width {
                if seg_end >= anchor + duration {
                    return anchor;
                }
            } else {
                // Blocked: restart the anchor at the end of this segment.
                anchor = seg_end;
            }
            idx += 1;
        }
    }

    /// Index of the segment containing `t`, splitting a segment at `t` if
    /// needed so a boundary exists exactly at `t`.
    fn split_at(&mut self, t: SimTime) -> usize {
        let idx = self.segs.partition_point(|s| s.start <= t);
        if idx == 0 {
            // t precedes the whole profile: prepend a fully-free segment.
            self.segs.insert(0, Segment { start: t, free: self.capacity });
            return 0;
        }
        let prev = self.segs[idx - 1];
        if prev.start == t {
            idx - 1
        } else {
            self.segs.insert(idx, Segment { start: t, free: prev.free });
            idx
        }
    }

    fn coalesce(&mut self) {
        self.segs.dedup_by(|next, prev| next.free == prev.free);
    }

    /// Subtract `width` processors over `[start, start + duration)`.
    ///
    /// Panics if that would drive any segment negative — callers must place
    /// rectangles with [`find_anchor`]/[`fits`] first (a violation is a
    /// scheduler bug, not an operational condition).
    ///
    /// [`find_anchor`]: Profile::find_anchor
    /// [`fits`]: Profile::fits
    pub fn reserve(&mut self, start: SimTime, duration: SimSpan, width: u32) {
        if duration.is_zero() || width == 0 {
            return;
        }
        let end = start + duration;
        let first = self.split_at(start);
        let last = self.split_at(end); // boundary at end; affected segs are first..last
        for seg in &mut self.segs[first..last] {
            assert!(
                seg.free >= width,
                "reservation of {width} at {} underflows segment at {} (free {})",
                start,
                seg.start,
                seg.free
            );
            seg.free -= width;
        }
        self.coalesce();
        debug_assert!(self.invariants_ok());
    }

    /// Add `width` processors back over `[start, start + duration)` —
    /// the inverse of [`reserve`](Profile::reserve).
    ///
    /// Panics if that would push any segment above capacity (releasing
    /// something that was never reserved).
    pub fn release(&mut self, start: SimTime, duration: SimSpan, width: u32) {
        if duration.is_zero() || width == 0 {
            return;
        }
        let end = start + duration;
        let first = self.split_at(start);
        let last = self.split_at(end);
        for seg in &mut self.segs[first..last] {
            assert!(
                seg.free + width <= self.capacity,
                "release of {width} at {} overflows segment at {} (free {}, capacity {})",
                start,
                seg.start,
                seg.free,
                self.capacity
            );
            seg.free += width;
        }
        self.coalesce();
        debug_assert!(self.invariants_ok());
    }

    /// Drop segment boundaries strictly before `now` (they can never matter
    /// again), keeping the level at `now` intact. Bounds memory on long runs.
    pub fn trim_before(&mut self, now: SimTime) {
        let idx = self.segs.partition_point(|s| s.start <= now);
        if idx > 1 {
            self.segs.drain(..idx - 1);
        }
        debug_assert!(self.invariants_ok());
    }

    /// Check structural invariants (used by tests; internal operations
    /// `debug_assert` it).
    pub fn invariants_ok(&self) -> bool {
        if self.segs.is_empty() {
            return false;
        }
        for w in self.segs.windows(2) {
            if w[0].start >= w[1].start || w[0].free == w[1].free {
                return false;
            }
        }
        self.segs.iter().all(|s| s.free <= self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::new(s)
    }
    fn d(s: u64) -> SimSpan {
        SimSpan::new(s)
    }

    #[test]
    fn fresh_profile_is_fully_free() {
        let p = Profile::new(16);
        assert_eq!(p.free_at(t(0)), 16);
        assert_eq!(p.free_at(t(1_000_000)), 16);
        assert!(p.invariants_ok());
        assert_eq!(p.segments().len(), 1);
    }

    #[test]
    fn reserve_carves_a_rectangle() {
        let mut p = Profile::new(10);
        p.reserve(t(100), d(50), 4);
        assert_eq!(p.free_at(t(99)), 10);
        assert_eq!(p.free_at(t(100)), 6);
        assert_eq!(p.free_at(t(149)), 6);
        assert_eq!(p.free_at(t(150)), 10);
        assert!(p.invariants_ok());
    }

    #[test]
    fn overlapping_reservations_stack() {
        let mut p = Profile::new(10);
        p.reserve(t(0), d(100), 4);
        p.reserve(t(50), d(100), 4);
        assert_eq!(p.free_at(t(25)), 6);
        assert_eq!(p.free_at(t(75)), 2);
        assert_eq!(p.free_at(t(125)), 6);
        assert_eq!(p.free_at(t(150)), 10);
    }

    #[test]
    fn release_undoes_reserve() {
        let mut p = Profile::new(8);
        let snapshot = p.clone();
        p.reserve(t(10), d(30), 5);
        p.release(t(10), d(30), 5);
        assert_eq!(p, snapshot);
    }

    #[test]
    fn partial_release_models_early_completion() {
        let mut p = Profile::new(8);
        // Job estimated to run [0, 100) with 4 procs...
        p.reserve(t(0), d(100), 4);
        // ...actually completes at 60: give back [60, 100).
        p.release(t(60), d(40), 4);
        assert_eq!(p.free_at(t(59)), 4);
        assert_eq!(p.free_at(t(60)), 8);
    }

    #[test]
    #[should_panic(expected = "underflows")]
    fn reserve_panics_on_overcommit() {
        let mut p = Profile::new(4);
        p.reserve(t(0), d(10), 3);
        p.reserve(t(5), d(10), 2);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn release_panics_on_phantom_capacity() {
        let mut p = Profile::new(4);
        p.release(t(0), d(10), 1);
    }

    #[test]
    fn zero_duration_or_width_are_noops() {
        let mut p = Profile::new(4);
        let snapshot = p.clone();
        p.reserve(t(5), d(0), 4);
        p.reserve(t(5), d(10), 0);
        p.release(t(5), d(0), 4);
        assert_eq!(p, snapshot);
    }

    #[test]
    fn find_anchor_on_empty_profile_is_immediate() {
        let p = Profile::new(8);
        assert_eq!(p.find_anchor(t(42), d(1000), 8), t(42));
    }

    #[test]
    fn find_anchor_skips_blocked_interval() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 6); // only 2 free until 100
        assert_eq!(p.find_anchor(t(0), d(10), 2), t(0));
        assert_eq!(p.find_anchor(t(0), d(10), 3), t(100));
    }

    #[test]
    fn find_anchor_needs_contiguous_fit() {
        let mut p = Profile::new(8);
        // Free window [0, 50) of 8, then blocked [50, 100), then free.
        p.reserve(t(50), d(50), 8);
        // A 60-second job cannot use the [0, 50) hole.
        assert_eq!(p.find_anchor(t(0), d(60), 1), t(100));
        // A 50-second job fits exactly in the hole.
        assert_eq!(p.find_anchor(t(0), d(50), 1), t(0));
    }

    #[test]
    fn find_anchor_spans_multiple_segments() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 2); // 6 free on [0, 100)
        p.reserve(t(100), d(100), 4); // 4 free on [100, 200)
        // Width 4 for 150 s fits at 0: covered by both segments.
        assert_eq!(p.find_anchor(t(0), d(150), 4), t(0));
        // Width 5 for 150 s: blocked on [100, 200), so anchor is 200.
        assert_eq!(p.find_anchor(t(0), d(150), 5), t(200));
    }

    #[test]
    fn find_anchor_respects_earliest_bound() {
        let p = Profile::new(8);
        assert_eq!(p.find_anchor(t(500), d(10), 1), t(500));
    }

    #[test]
    fn find_anchor_mid_segment_start() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 6);
        // Asking from t=30 for width 2 (fits alongside): anchor 30.
        assert_eq!(p.find_anchor(t(30), d(10), 2), t(30));
        // Width 3 must wait for the reservation to end.
        assert_eq!(p.find_anchor(t(30), d(10), 3), t(100));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn find_anchor_rejects_impossible_width() {
        Profile::new(4).find_anchor(t(0), d(1), 5);
    }

    #[test]
    fn fits_matches_find_anchor() {
        let mut p = Profile::new(8);
        p.reserve(t(10), d(80), 5);
        for &(start, dur, width) in
            &[(0u64, 10u64, 8u32), (0, 11, 4), (0, 11, 3), (10, 80, 3), (90, 5, 8), (5, 100, 3)]
        {
            let fits = p.fits(t(start), d(dur), width);
            let anchor = p.find_anchor(t(start), d(dur), width);
            assert_eq!(
                fits,
                anchor == t(start),
                "fits({start},{dur},{width}) = {fits} but anchor = {anchor}"
            );
        }
    }

    #[test]
    fn coalescing_keeps_profile_minimal() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 4);
        p.reserve(t(100), d(100), 4);
        // Same level on both sides of t=100: must be one segment.
        assert_eq!(p.free_at(t(50)), 4);
        assert_eq!(p.free_at(t(150)), 4);
        assert_eq!(
            p.segments().iter().filter(|s| s.free == 4).count(),
            1,
            "adjacent equal segments not coalesced: {:?}",
            p.segments()
        );
    }

    #[test]
    fn trim_before_preserves_future_shape() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(10), 1);
        p.reserve(t(20), d(10), 2);
        p.reserve(t(40), d(10), 3);
        let f50 = p.free_at(t(50));
        let f45 = p.free_at(t(45));
        p.trim_before(t(45));
        assert_eq!(p.free_at(t(45)), f45);
        assert_eq!(p.free_at(t(50)), f50);
        assert!(p.invariants_ok());
        assert!(p.segments().len() <= 3);
    }

    #[test]
    fn reserve_before_profile_origin_works() {
        // Anchoring earlier than any existing boundary (possible after
        // trim) must still work.
        let mut p = Profile::new(8);
        p.reserve(t(100), d(10), 2);
        p.trim_before(t(100));
        p.reserve(t(50), d(10), 3);
        assert_eq!(p.free_at(t(55)), 5);
        assert!(p.invariants_ok());
    }
}
