//! The availability profile — the scheduler's "2D chart".
//!
//! The paper describes scheduling as a chart with time on one axis and
//! processors on the other; each job or reservation is a rectangle.
//! [`Profile`] is that chart's free-capacity silhouette: a stepwise
//! function from time to the number of free processors, represented as a
//! sorted list of segments. The final segment extends to infinity.
//!
//! Everything the backfilling schedulers do reduces to three operations:
//!
//! * [`Profile::find_anchor`] — the earliest instant at or after a given
//!   time where a `width × duration` rectangle fits ("where can this job's
//!   reservation go?");
//! * [`Profile::reserve`] — carve the rectangle out;
//! * [`Profile::release`] — put capacity back (cancelled reservation, or
//!   the unused tail of an over-estimated job that finished early).
//!
//! # The anchor index
//!
//! `find_anchor` dominates every backfilling decision, and a naive scan
//! walks the profile one segment at a time — on a congested profile with
//! a thousand live segments, most queries walk most of it. The profile
//! keeps two acceleration layers, both pure functions of the segment list
//! rebuilt after every mutation:
//!
//! * a **run index**: for each power-of-two threshold `t` up to the
//!   capacity, the sorted maximal time intervals where `free >= t`. Every
//!   `width`-anchor must sit inside a `free >= 2^⌊log2 width⌋` run long
//!   enough to hold the rectangle, so the search binary-searches that
//!   level and hops run-to-run, skipping everything in between wholesale.
//!   A power-of-two width *equals* its threshold, making those queries a
//!   single binary search;
//! * a **block index**: per [`BLOCK`]-sized run of segments, the minimum
//!   and maximum free level. The in-run scan for non-power-of-two widths
//!   advances block-at-a-time over uniformly infeasible (`max < width`)
//!   and uniformly feasible (`min >= width`) stretches.
//!
//! A mutation is already O(n) (segment insertion shifts the vector), so
//! the O(n · log capacity) rebuild does not change the asymptotics of
//! `reserve`/`release`. Profiles at or below [`SMALL`] segments skip the
//! index entirely: a plain scan answers typical queries in a handful of
//! visits, cheaper than the index arithmetic.
//!
//! [`Profile::find_anchor_linear`] preserves the plain scan; differential
//! property tests (`tests/profile_differential.rs`) assert the two agree
//! decision-for-decision (against a naive quadratic reference as well),
//! and the `profile_ops` bench compares their cost.
//!
//! # Instrumentation
//!
//! Every profile keeps cheap operation counters ([`ProfileStats`]): anchor
//! probes, segments visited, blocks skipped, reserve/release counts,
//! compression passes, and the peak segment count. Schedulers expose them
//! via [`crate::Scheduler::profile_stats`] and the driver threads them into
//! the final [`Schedule`](../core) for reports and benches.
//!
//! Invariants (checked by `debug_assert` internally and by property tests):
//! segments are strictly ordered in time, free counts stay within
//! `[0, capacity]`, and adjacent segments always differ (coalesced).

use serde::{Deserialize, Serialize};
use simcore::{SimSpan, SimTime};
use std::cell::{Cell, RefCell};

/// One step of the free-capacity silhouette: `free` processors are
/// available from `start` until the next segment's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// When this level of availability begins.
    pub start: SimTime,
    /// Free processors over the segment.
    pub free: u32,
}

/// Segments per index block. Small enough that boundary-block scans stay
/// cheap, large enough that skipping a block skips real work.
const BLOCK: usize = 8;

/// Below this many segments the whole index is skipped: a plain scan
/// resolves typical queries in a handful of segment visits, while the run
/// lookup alone costs two extra binary searches. The index starts paying
/// off when congested profiles force scans across hundreds of segments.
const SMALL: usize = 512;

/// `floor(log2 width)` — the run-index level serving `width`. `width >= 1`.
fn level_of(width: u32) -> usize {
    (31 - width.leading_zeros()) as usize
}

/// A maximal stretch of time over which the free level stays at or above
/// one power-of-two threshold. `end` is exclusive; `u64::MAX` encodes a run
/// that reaches the profile's infinite final segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    start: SimTime,
    end: SimTime,
}

/// The acceleration structures behind [`Profile::find_anchor`], rebuilt
/// eagerly after every structural mutation:
///
/// * per-block min/max free levels over [`BLOCK`]-sized runs of the
///   segment vector, letting scans hop uniformly (in)feasible blocks;
/// * per power-of-two threshold `t = 1 << level`, the sorted list of
///   maximal time intervals where `free >= t` ([`Run`]s). A query of width
///   `w` binary-searches level `floor(log2 w)` for the first run long
///   enough to host its rectangle: for power-of-two widths that run *is*
///   the answer, otherwise it prunes the scan to the few runs that could
///   contain one.
#[derive(Debug, Clone, Default)]
struct ProfileIndex {
    min_free: Vec<u32>,
    max_free: Vec<u32>,
    /// `runs[level]` holds the maximal `free >= 1 << level` intervals,
    /// sorted and disjoint; levels run up to `floor(log2 capacity)`.
    runs: Vec<Vec<Run>>,
}

/// Memoized prefix minima for left-edge-pinned fit queries.
///
/// Backfill and compression passes ask [`Profile::fits`] the same-shaped
/// question hundreds of times per event — "does a rectangle starting at
/// `now` fit?" — against a profile that mutates only when a job actually
/// moves. For one `(silhouette, from)` pair the answer is a pure lookup:
/// `min_free[j]` is the minimum free capacity over `[from, ends[j])`, so a
/// `width × duration` rectangle fits at `from` iff the prefix minimum
/// covering `from + duration` is at least `width`. The cache is built
/// lazily in O(segments), invalidated by `version` on every mutation, and
/// answers each query with one binary search.
#[derive(Debug, Clone, Default)]
struct FitsCache {
    /// Profile version the entries were computed against.
    version: u64,
    /// Query left edge the prefix minima are anchored at.
    from: SimTime,
    /// Exclusive end of each prefix window, strictly increasing; the last
    /// entry is `SimTime::FAR_FUTURE` (the final segment never ends).
    ends: Vec<SimTime>,
    /// `min_free[j]` = minimum free capacity over `[from, ends[j])`.
    min_free: Vec<u32>,
}

impl FitsCache {
    /// Recompute the prefix minima for `profile` anchored at `from`.
    fn rebuild(&mut self, profile: &Profile, from: SimTime) {
        self.version = profile.version;
        self.from = from;
        self.ends.clear();
        self.min_free.clear();
        // First segment starting strictly after `from`; the region before
        // it (a real segment or the implicit fully-free prefix) is where
        // the query window opens.
        let i0 = profile.segs.partition_point(|s| s.start <= from);
        let mut min = if i0 == 0 {
            profile.capacity
        } else {
            profile.segs[i0 - 1].free
        };
        for seg in &profile.segs[i0..] {
            self.ends.push(seg.start);
            self.min_free.push(min);
            min = min.min(seg.free);
        }
        self.ends.push(SimTime::FAR_FUTURE);
        self.min_free.push(min);
    }

    /// Minimum free capacity over `[from, end)`.
    fn min_free_until(&self, end: SimTime) -> u32 {
        let j = self.ends.partition_point(|&e| e < end);
        self.min_free[j.min(self.min_free.len() - 1)]
    }
}

/// Operation counters of one [`Profile`] (or aggregated over several — see
/// [`ProfileStats::absorb`]). All counts are cumulative since creation or
/// the last [`Profile::reset_stats`].
///
/// `serde(default)` keeps old serialized reports (e.g. `--baseline`
/// files written before a counter existed) readable: missing counters
/// deserialize as zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct ProfileStats {
    /// Calls to [`Profile::find_anchor`] (including via `fits`).
    pub find_anchor_calls: u64,
    /// Segments examined one-by-one during anchor searches.
    pub segments_visited: u64,
    /// Whole index blocks skipped during anchor searches.
    pub blocks_skipped: u64,
    /// Calls to [`Profile::reserve`] that changed the profile.
    pub reserves: u64,
    /// Calls to [`Profile::release`] that changed the profile.
    pub releases: u64,
    /// Compression passes noted by the owning scheduler
    /// (see [`Profile::note_compress_pass`]).
    pub compress_passes: u64,
    /// Largest segment count the profile ever reached.
    pub peak_segments: u64,
    /// Queued jobs placed by incremental binary-search insertion instead
    /// of being re-sorted into place (static-key policies).
    pub queue_inserts: u64,
    /// Full queue sorts actually performed (time-dependent policies such
    /// as XFactor re-key and sort once per event).
    pub queue_sorts: u64,
    /// Per-event queue sorts skipped because the incremental order was
    /// already correct (static-key policies never re-sort).
    pub queue_sorts_avoided: u64,
    /// Running-set profile rebuilds performed from scratch.
    pub profile_rebuilds: u64,
    /// Running-set profile rebuilds served from the incrementally
    /// maintained cache instead of being rebuilt.
    pub profile_rebuilds_avoided: u64,
    /// `fits` queries answered from the memoized prefix minima.
    pub fits_cache_hits: u64,
    /// `fits` queries that had to rebuild the prefix minima (profile
    /// mutated or the query's left edge moved).
    pub fits_cache_misses: u64,
}

impl ProfileStats {
    /// Merge another profile's counters into this one: counts add, the
    /// peak takes the maximum.
    pub fn absorb(&mut self, other: &ProfileStats) {
        self.find_anchor_calls += other.find_anchor_calls;
        self.segments_visited += other.segments_visited;
        self.blocks_skipped += other.blocks_skipped;
        self.reserves += other.reserves;
        self.releases += other.releases;
        self.compress_passes += other.compress_passes;
        self.peak_segments = self.peak_segments.max(other.peak_segments);
        self.queue_inserts += other.queue_inserts;
        self.queue_sorts += other.queue_sorts;
        self.queue_sorts_avoided += other.queue_sorts_avoided;
        self.profile_rebuilds += other.profile_rebuilds;
        self.profile_rebuilds_avoided += other.profile_rebuilds_avoided;
        self.fits_cache_hits += other.fits_cache_hits;
        self.fits_cache_misses += other.fits_cache_misses;
    }

    /// Mean segments examined per anchor search (0 if none ran).
    pub fn segments_per_anchor(&self) -> f64 {
        if self.find_anchor_calls == 0 {
            0.0
        } else {
            self.segments_visited as f64 / self.find_anchor_calls as f64
        }
    }
}

/// Interior-mutable counters: `find_anchor` takes `&self`, so the probe
/// counters live in `Cell`s. Excluded from `PartialEq` — two profiles with
/// the same silhouette are equal regardless of how they were probed.
#[derive(Debug, Clone, Default)]
struct Counters {
    find_anchor_calls: Cell<u64>,
    segments_visited: Cell<u64>,
    blocks_skipped: Cell<u64>,
    reserves: Cell<u64>,
    releases: Cell<u64>,
    compress_passes: Cell<u64>,
    peak_segments: Cell<u64>,
    queue_inserts: Cell<u64>,
    queue_sorts: Cell<u64>,
    queue_sorts_avoided: Cell<u64>,
    fits_cache_hits: Cell<u64>,
    fits_cache_misses: Cell<u64>,
}

/// The free-capacity timeline of a machine, including running jobs and any
/// future reservations the scheduler maintains.
///
/// ```
/// use sched::Profile;
/// use simcore::{SimSpan, SimTime};
///
/// let mut p = Profile::new(8);
/// // A 6-wide job runs for 100 s starting now.
/// p.reserve(SimTime::ZERO, SimSpan::new(100), 6);
/// // Earliest slot for an 8-wide, 50 s job: after the running job.
/// assert_eq!(p.find_anchor(SimTime::ZERO, SimSpan::new(50), 8), SimTime::new(100));
/// // A 2-wide job backfills immediately alongside it.
/// assert_eq!(p.find_anchor(SimTime::ZERO, SimSpan::new(50), 2), SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Profile {
    capacity: u32,
    /// Sorted by `start`, strictly increasing, values coalesced.
    /// Non-empty: the last segment extends to infinity.
    segs: Vec<Segment>,
    index: ProfileIndex,
    /// Bumped by `reindex` on every mutation; invalidates `fits_cache`.
    version: u64,
    fits_cache: RefCell<FitsCache>,
    stats: Counters,
}

impl PartialEq for Profile {
    fn eq(&self, other: &Self) -> bool {
        // The index is a pure function of the segments, and the counters
        // are instrumentation: the silhouette alone defines identity.
        self.capacity == other.capacity && self.segs == other.segs
    }
}

impl Eq for Profile {}

impl Profile {
    /// A fully free machine with `capacity` processors. Panics if zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "profile needs positive capacity");
        let mut p = Profile {
            capacity,
            segs: vec![Segment {
                start: SimTime::ZERO,
                free: capacity,
            }],
            index: ProfileIndex::default(),
            version: 0,
            fits_cache: RefCell::new(FitsCache::default()),
            stats: Counters::default(),
        };
        p.reindex();
        p
    }

    /// The machine's total processor count.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The underlying segments (for inspection and tests).
    pub fn segments(&self) -> &[Segment] {
        &self.segs
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> ProfileStats {
        ProfileStats {
            find_anchor_calls: self.stats.find_anchor_calls.get(),
            segments_visited: self.stats.segments_visited.get(),
            blocks_skipped: self.stats.blocks_skipped.get(),
            reserves: self.stats.reserves.get(),
            releases: self.stats.releases.get(),
            compress_passes: self.stats.compress_passes.get(),
            peak_segments: self.stats.peak_segments.get(),
            queue_inserts: self.stats.queue_inserts.get(),
            queue_sorts: self.stats.queue_sorts.get(),
            queue_sorts_avoided: self.stats.queue_sorts_avoided.get(),
            profile_rebuilds: 0,
            profile_rebuilds_avoided: 0,
            fits_cache_hits: self.stats.fits_cache_hits.get(),
            fits_cache_misses: self.stats.fits_cache_misses.get(),
        }
    }

    /// Zero the operation counters (the peak resets to the current size).
    pub fn reset_stats(&self) {
        self.stats.find_anchor_calls.set(0);
        self.stats.segments_visited.set(0);
        self.stats.blocks_skipped.set(0);
        self.stats.reserves.set(0);
        self.stats.releases.set(0);
        self.stats.compress_passes.set(0);
        self.stats.peak_segments.set(self.segs.len() as u64);
        self.stats.queue_inserts.set(0);
        self.stats.queue_sorts.set(0);
        self.stats.queue_sorts_avoided.set(0);
        self.stats.fits_cache_hits.set(0);
        self.stats.fits_cache_misses.set(0);
    }

    /// Record one compression pass by the owning scheduler. The pass itself
    /// happens at the scheduler level; the counter lives here so a single
    /// [`ProfileStats`] carries the whole hot-path story.
    pub fn note_compress_pass(&self) {
        self.stats
            .compress_passes
            .set(self.stats.compress_passes.get() + 1);
    }

    /// Record queue-order maintenance work by the owning scheduler: jobs
    /// placed by incremental insertion, full sorts performed, and sorts
    /// skipped because the maintained order was already correct. Like
    /// [`Profile::note_compress_pass`], the events happen at the scheduler
    /// level; the counters live here so one [`ProfileStats`] carries the
    /// whole hot-path story.
    pub fn note_queue_ops(&self, inserts: u64, sorts: u64, sorts_avoided: u64) {
        self.stats
            .queue_inserts
            .set(self.stats.queue_inserts.get() + inserts);
        self.stats
            .queue_sorts
            .set(self.stats.queue_sorts.get() + sorts);
        self.stats
            .queue_sorts_avoided
            .set(self.stats.queue_sorts_avoided.get() + sorts_avoided);
    }

    /// Rebuild the block and run indexes and track the peak segment count.
    /// Called after every mutation; O(n · log capacity) with a trivial
    /// constant, alongside the O(n) segment-vector shift the mutation
    /// already paid for.
    fn reindex(&mut self) {
        self.version = self.version.wrapping_add(1);
        let blocks = self.segs.len().div_ceil(BLOCK);
        self.index.min_free.clear();
        self.index.min_free.resize(blocks, u32::MAX);
        self.index.max_free.clear();
        self.index.max_free.resize(blocks, 0);
        for (i, seg) in self.segs.iter().enumerate() {
            let b = i / BLOCK;
            self.index.min_free[b] = self.index.min_free[b].min(seg.free);
            self.index.max_free[b] = self.index.max_free[b].max(seg.free);
        }

        // Threshold runs, one level per power of two up to the capacity.
        let levels = level_of(self.capacity) + 1;
        self.index.runs.resize_with(levels, Vec::new);
        let mut open = [SimTime::ZERO; 32];
        let mut is_open = [false; 32];
        for (l, runs) in self.index.runs.iter_mut().enumerate() {
            runs.clear();
            // The region before the first boundary is implicitly fully free
            // (it only exists after trim_before), so every level starts open.
            if self.segs[0].start > SimTime::ZERO {
                open[l] = SimTime::ZERO;
                is_open[l] = true;
            }
        }
        for seg in &self.segs {
            for (l, runs) in self.index.runs.iter_mut().enumerate() {
                let feasible = seg.free >> l != 0; // free >= 1 << l
                if feasible {
                    if !is_open[l] {
                        open[l] = seg.start;
                        is_open[l] = true;
                    }
                } else if is_open[l] {
                    runs.push(Run {
                        start: open[l],
                        end: seg.start,
                    });
                    is_open[l] = false;
                }
            }
        }
        let inf = SimTime::new(u64::MAX);
        for (l, runs) in self.index.runs.iter_mut().enumerate() {
            if is_open[l] {
                runs.push(Run {
                    start: open[l],
                    end: inf,
                });
            }
        }

        let peak = self.stats.peak_segments.get().max(self.segs.len() as u64);
        self.stats.peak_segments.set(peak);
    }

    /// Free processors at instant `t`.
    pub fn free_at(&self, t: SimTime) -> u32 {
        // Index of the last segment with start <= t.
        let idx = self.segs.partition_point(|s| s.start <= t);
        if idx == 0 {
            // Before all segments: the profile began fully free.
            self.capacity
        } else {
            self.segs[idx - 1].free
        }
    }

    /// True if a `width × duration` rectangle fits with its left edge
    /// exactly at `start` — equivalently, whether the minimum free
    /// capacity over `[start, start + duration)` is at least `width`.
    ///
    /// Answers come from the [`FitsCache`] prefix minima: one binary
    /// search per query, one O(n) rebuild per mutation or left-edge
    /// change. Compression passes probe the same `now` dozens of times
    /// between mutations, so nearly every query is a cache hit.
    pub fn fits(&self, start: SimTime, duration: SimSpan, width: u32) -> bool {
        self.assert_possible(width);
        if duration.is_zero() || width == 0 {
            return true;
        }
        let mut cache = self.fits_cache.borrow_mut();
        let visited = if cache.version != self.version || cache.from != start {
            cache.rebuild(self, start);
            self.stats
                .fits_cache_misses
                .set(self.stats.fits_cache_misses.get() + 1);
            cache.min_free.len() as u64
        } else {
            self.stats
                .fits_cache_hits
                .set(self.stats.fits_cache_hits.get() + 1);
            1
        };
        self.stats
            .find_anchor_calls
            .set(self.stats.find_anchor_calls.get() + 1);
        self.stats
            .segments_visited
            .set(self.stats.segments_visited.get() + visited);
        cache.min_free_until(start + duration) >= width
    }

    /// First segment index `>= from` with `free >= width`, skipping blocks
    /// whose maximum free level rules every segment out. The caller
    /// guarantees one exists (the final segment is asserted wide enough,
    /// so the last block's max is always feasible and the skip loop stops
    /// before running off the end). Returns `None` if the first such
    /// segment starts at or past `bound` (the caller's run is exhausted).
    #[inline]
    fn next_feasible(
        &self,
        from: usize,
        width: u32,
        bound: SimTime,
        visited: &mut u64,
        skipped: &mut u64,
    ) -> Option<usize> {
        let segs = &self.segs[..];
        let n = segs.len();
        let mut k = from;
        while k < n {
            if k.is_multiple_of(BLOCK) {
                if segs[k].start >= bound {
                    return None;
                }
                if self.index.max_free[k / BLOCK] < width {
                    *skipped += 1;
                    k += BLOCK;
                    continue;
                }
            }
            *visited += 1;
            let seg = segs[k];
            if seg.start >= bound {
                return None;
            }
            if seg.free >= width {
                return Some(k);
            }
            k += 1;
        }
        None
    }

    fn assert_possible(&self, width: u32) {
        assert!(
            width <= self.capacity,
            "width {width} exceeds capacity {}",
            self.capacity
        );
        let last_free = self.segs.last().expect("non-empty").free;
        assert!(
            width <= last_free,
            "width {width} never fits: final free level is {last_free}"
        );
    }

    /// The earliest instant `t >= earliest` where a `width × duration`
    /// rectangle fits. Always terminates because the profile eventually
    /// returns to an (infinitely long) final segment.
    ///
    /// Uses the block index to hop over uniformly infeasible (and, inside a
    /// candidate run, uniformly feasible) stretches of the profile instead
    /// of walking them segment by segment.
    ///
    /// Panics if `width > capacity` or the final segment has fewer than
    /// `width` free processors (a rectangle that could never fit).
    pub fn find_anchor(&self, earliest: SimTime, duration: SimSpan, width: u32) -> SimTime {
        self.assert_possible(width);
        if duration.is_zero() || width == 0 {
            return earliest;
        }

        // Probe counts accumulate in locals and hit the `Cell`s once per
        // call: the interior-mutability bookkeeping must stay off the scan
        // itself, which is the hottest loop in the simulator.
        let mut visited: u64 = 0;
        let mut skipped: u64 = 0;
        let anchor =
            self.find_anchor_indexed(earliest, duration, width, &mut visited, &mut skipped);
        self.stats
            .find_anchor_calls
            .set(self.stats.find_anchor_calls.get() + 1);
        self.stats
            .segments_visited
            .set(self.stats.segments_visited.get() + visited);
        if skipped > 0 {
            self.stats
                .blocks_skipped
                .set(self.stats.blocks_skipped.get() + skipped);
        }
        anchor
    }

    /// The indexed search behind [`find_anchor`](Profile::find_anchor).
    ///
    /// The run index answers "where could a `width`-wide rectangle possibly
    /// live": every anchor must sit inside a maximal `free >= t` run (with
    /// `t = 2^⌊log2 width⌋ <= width`) long enough to hold `duration`. The
    /// search walks those runs in time order — skipping the (often vast)
    /// stretches between them wholesale — and, since a power-of-two width
    /// equals its threshold, resolves such queries straight from the run
    /// list. Other widths fall back to a block-accelerated segment scan
    /// *inside* each candidate run.
    fn find_anchor_indexed(
        &self,
        earliest: SimTime,
        duration: SimSpan,
        width: u32,
        visited: &mut u64,
        skipped: &mut u64,
    ) -> SimTime {
        // Small profiles: index arithmetic costs more than it saves.
        if self.segs.len() <= SMALL {
            return self.scan_plain(earliest, duration, width, visited);
        }

        let runs = &self.index.runs[level_of(width)];
        let exact = width.is_power_of_two();
        let mut ri = runs.partition_point(|r| r.end <= earliest);
        while let Some(&run) = runs.get(ri) {
            *visited += 1;
            let anchor = run.start.max(earliest);
            if run.end - anchor >= duration {
                if exact {
                    // free >= width over the whole run, by construction.
                    return anchor;
                }
                if let Some(a) = self.scan_run(anchor, run.end, duration, width, visited, skipped) {
                    return a;
                }
            }
            ri += 1;
        }
        // The final segment reaches infinity and is asserted wide enough,
        // so its run always terminates the loop above.
        unreachable!("final segment narrower than asserted");
    }

    /// The small-profile scan: the plain linear algorithm plus visit
    /// counting, with no block or run arithmetic on the hot path.
    fn scan_plain(
        &self,
        earliest: SimTime,
        duration: SimSpan,
        width: u32,
        visited: &mut u64,
    ) -> SimTime {
        let segs = &self.segs[..];
        let mut anchor = earliest;
        let first_start = segs[0].start;
        if anchor < first_start && anchor + duration <= first_start {
            return anchor;
        }
        let mut idx = segs
            .partition_point(|s| s.start <= anchor)
            .saturating_sub(1);
        loop {
            *visited += 1;
            let seg = segs[idx];
            let seg_end = if idx + 1 < segs.len() {
                segs[idx + 1].start
            } else {
                // The final segment is infinite; asserted wide enough.
                if seg.free >= width {
                    return anchor;
                }
                unreachable!("final segment narrower than asserted");
            };
            if seg.free >= width {
                if seg_end >= anchor + duration {
                    return anchor;
                }
            } else {
                anchor = seg_end;
            }
            idx += 1;
        }
    }

    /// Scan `[anchor0, run_end)` for the earliest `width`-anchor, knowing
    /// nothing at or past `run_end` is feasible (so a rectangle must end by
    /// then). Establishes a feasible candidate segment (hopping infeasible
    /// blocks via the max index), verifies only the segments overlapping
    /// `[anchor, anchor + duration)` (hopping uniformly feasible blocks via
    /// the min index), and restarts past any blockage. Returns `None` once
    /// no anchor in the window can work.
    fn scan_run(
        &self,
        anchor0: SimTime,
        run_end: SimTime,
        duration: SimSpan,
        width: u32,
        visited: &mut u64,
        skipped: &mut u64,
    ) -> Option<SimTime> {
        let segs = &self.segs[..];
        let n = segs.len();
        let mut anchor = anchor0;
        // The region before the first segment boundary is implicitly fully
        // free (it only exists after trim_before); a rectangle fitting
        // entirely inside it anchors immediately. One that spills into the
        // first segment is handled by the scan below: the implicit region
        // never blocks, so the candidate run simply starts at `anchor`.
        let first_start = segs[0].start;
        if anchor < first_start && anchor + duration <= first_start {
            return Some(anchor);
        }

        let mut idx = segs
            .partition_point(|s| s.start <= anchor)
            .saturating_sub(1);
        loop {
            // Establish a candidate: `segs[idx]` must host the anchor.
            *visited += 1;
            if segs[idx].free < width {
                idx = self.next_feasible(idx + 1, width, run_end, visited, skipped)?;
                anchor = segs[idx].start;
            }
            let target = anchor + duration;
            if target > run_end {
                // Anchors only move later; none left in this window.
                return None;
            }
            // Verify the candidate only as far as `target`: every segment
            // overlapping [anchor, target) must stay feasible.
            let mut k = idx + 1;
            loop {
                if k >= n || segs[k].start >= target {
                    return Some(anchor); // the rectangle fits
                }
                if k.is_multiple_of(BLOCK) && self.index.min_free[k / BLOCK] >= width {
                    // A uniformly feasible block cannot blockade; hop it.
                    *skipped += 1;
                    k += BLOCK;
                    continue;
                }
                *visited += 1;
                if segs[k].free < width {
                    break; // blocked: the candidate dies at segs[k]
                }
                k += 1;
            }
            // Restart the search after the blockage.
            idx = self.next_feasible(k + 1, width, run_end, visited, skipped)?;
            anchor = segs[idx].start;
        }
    }

    /// The pre-index linear anchor scan, kept verbatim as a reference:
    /// the differential property test asserts it agrees with
    /// [`find_anchor`](Profile::find_anchor) decision-for-decision, and the
    /// `profile_ops` bench measures what the index buys. Maintains the same
    /// panics; does not update the probe counters.
    pub fn find_anchor_linear(&self, earliest: SimTime, duration: SimSpan, width: u32) -> SimTime {
        self.assert_possible(width);
        if duration.is_zero() || width == 0 {
            return earliest;
        }

        let mut anchor = earliest;
        let first_start = self.segs[0].start;
        if anchor < first_start && anchor + duration <= first_start {
            return anchor;
        }

        // Scan from the segment containing (or first after) the anchor.
        // Invariant on entry to each iteration: free >= width over
        // [anchor, seg.start) — either empty, the implicit free region, or
        // previously verified segments.
        let mut idx = self
            .segs
            .partition_point(|s| s.start <= anchor)
            .saturating_sub(1);
        loop {
            let seg = self.segs[idx];
            let seg_end = if idx + 1 < self.segs.len() {
                self.segs[idx + 1].start
            } else {
                // The final segment is infinite; asserted wide enough above.
                if seg.free >= width {
                    return anchor;
                }
                unreachable!("final segment narrower than asserted");
            };
            if seg.free >= width {
                if seg_end >= anchor + duration {
                    return anchor;
                }
            } else {
                // Blocked: restart the anchor at the end of this segment.
                anchor = seg_end;
            }
            idx += 1;
        }
    }

    /// Index of the segment containing `t`, splitting a segment at `t` if
    /// needed so a boundary exists exactly at `t`.
    fn split_at(&mut self, t: SimTime) -> usize {
        let idx = self.segs.partition_point(|s| s.start <= t);
        if idx == 0 {
            // t precedes the whole profile: prepend a fully-free segment.
            self.segs.insert(
                0,
                Segment {
                    start: t,
                    free: self.capacity,
                },
            );
            return 0;
        }
        let prev = self.segs[idx - 1];
        if prev.start == t {
            idx - 1
        } else {
            self.segs.insert(
                idx,
                Segment {
                    start: t,
                    free: prev.free,
                },
            );
            idx
        }
    }

    fn coalesce(&mut self) {
        self.segs.dedup_by(|next, prev| next.free == prev.free);
    }

    /// Subtract `width` processors over `[start, start + duration)`.
    ///
    /// Panics if that would drive any segment negative — callers must place
    /// rectangles with [`find_anchor`]/[`fits`] first (a violation is a
    /// scheduler bug, not an operational condition).
    ///
    /// [`find_anchor`]: Profile::find_anchor
    /// [`fits`]: Profile::fits
    pub fn reserve(&mut self, start: SimTime, duration: SimSpan, width: u32) {
        if duration.is_zero() || width == 0 {
            return;
        }
        self.stats.reserves.set(self.stats.reserves.get() + 1);
        let end = start + duration;
        let first = self.split_at(start);
        let last = self.split_at(end); // boundary at end; affected segs are first..last
        for seg in &mut self.segs[first..last] {
            assert!(
                seg.free >= width,
                "reservation of {width} at {} underflows segment at {} (free {})",
                start,
                seg.start,
                seg.free
            );
            seg.free -= width;
        }
        self.coalesce();
        self.reindex();
        debug_assert!(self.invariants_ok());
    }

    /// Add `width` processors back over `[start, start + duration)` —
    /// the inverse of [`reserve`](Profile::reserve).
    ///
    /// Panics if that would push any segment above capacity (releasing
    /// something that was never reserved).
    pub fn release(&mut self, start: SimTime, duration: SimSpan, width: u32) {
        if duration.is_zero() || width == 0 {
            return;
        }
        self.stats.releases.set(self.stats.releases.get() + 1);
        let end = start + duration;
        let first = self.split_at(start);
        let last = self.split_at(end);
        for seg in &mut self.segs[first..last] {
            assert!(
                seg.free + width <= self.capacity,
                "release of {width} at {} overflows segment at {} (free {}, capacity {})",
                start,
                seg.start,
                seg.free,
                self.capacity
            );
            seg.free += width;
        }
        self.coalesce();
        self.reindex();
        debug_assert!(self.invariants_ok());
    }

    /// True iff `self` and `other` describe the same free-capacity step
    /// function over `[from, ∞)`. Segment *boundaries* may differ (a
    /// differently trimmed past, a redundant boundary below `from`); only
    /// the silhouette the anchor search actually sees matters. This is the
    /// equivalence the cached-running-profile schedulers rely on: their
    /// incrementally maintained profile is `same_future` with a scratch
    /// rebuild at every event (asserted in debug builds), which makes every
    /// `find_anchor`/`fits` answer — and hence every scheduling decision —
    /// identical.
    pub fn same_future(&self, other: &Profile, from: SimTime) -> bool {
        if self.capacity != other.capacity {
            return false;
        }
        // Two step functions are equal over [from, ∞) iff they agree at
        // `from` and at every boundary of either that lies beyond it.
        let boundaries = self
            .segs
            .iter()
            .chain(other.segs.iter())
            .map(|s| s.start)
            .filter(|&s| s > from);
        std::iter::once(from)
            .chain(boundaries)
            .all(|t| self.free_at(t) == other.free_at(t))
    }

    /// Drop segment boundaries strictly before `now` (they can never matter
    /// again), keeping the level at `now` intact. Bounds memory on long runs.
    pub fn trim_before(&mut self, now: SimTime) {
        let idx = self.segs.partition_point(|s| s.start <= now);
        if idx > 1 {
            self.segs.drain(..idx - 1);
            self.reindex();
        }
        debug_assert!(self.invariants_ok());
    }

    /// Check structural invariants (used by tests; internal operations
    /// `debug_assert` it).
    pub fn invariants_ok(&self) -> bool {
        if self.segs.is_empty() {
            return false;
        }
        for w in self.segs.windows(2) {
            if w[0].start >= w[1].start || w[0].free == w[1].free {
                return false;
            }
        }
        if !self.segs.iter().all(|s| s.free <= self.capacity) {
            return false;
        }
        // The index must mirror the segments exactly.
        let blocks = self.segs.len().div_ceil(BLOCK);
        if self.index.min_free.len() != blocks || self.index.max_free.len() != blocks {
            return false;
        }
        if !self.segs.chunks(BLOCK).enumerate().all(|(b, chunk)| {
            let min = chunk.iter().map(|s| s.free).min().expect("non-empty chunk");
            let max = chunk.iter().map(|s| s.free).max().expect("non-empty chunk");
            self.index.min_free[b] == min && self.index.max_free[b] == max
        }) {
            return false;
        }
        // Each run level must list exactly the maximal `free >= 1 << level`
        // intervals (with the implicit fully-free region before the first
        // boundary included, and `u64::MAX` closing a run that reaches the
        // infinite final segment).
        if self.index.runs.len() != level_of(self.capacity) + 1 {
            return false;
        }
        self.index.runs.iter().enumerate().all(|(level, runs)| {
            let mut expect: Vec<Run> = Vec::new();
            let mut open: Option<SimTime> = None;
            if self.segs[0].start > SimTime::ZERO {
                open = Some(SimTime::ZERO);
            }
            for seg in &self.segs {
                let feasible = seg.free >> level != 0;
                match (feasible, open) {
                    (true, None) => open = Some(seg.start),
                    (false, Some(start)) => {
                        expect.push(Run {
                            start,
                            end: seg.start,
                        });
                        open = None;
                    }
                    _ => {}
                }
            }
            if let Some(start) = open {
                expect.push(Run {
                    start,
                    end: SimTime::new(u64::MAX),
                });
            }
            runs == &expect
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::new(s)
    }
    fn d(s: u64) -> SimSpan {
        SimSpan::new(s)
    }

    #[test]
    fn fresh_profile_is_fully_free() {
        let p = Profile::new(16);
        assert_eq!(p.free_at(t(0)), 16);
        assert_eq!(p.free_at(t(1_000_000)), 16);
        assert!(p.invariants_ok());
        assert_eq!(p.segments().len(), 1);
    }

    #[test]
    fn reserve_carves_a_rectangle() {
        let mut p = Profile::new(10);
        p.reserve(t(100), d(50), 4);
        assert_eq!(p.free_at(t(99)), 10);
        assert_eq!(p.free_at(t(100)), 6);
        assert_eq!(p.free_at(t(149)), 6);
        assert_eq!(p.free_at(t(150)), 10);
        assert!(p.invariants_ok());
    }

    #[test]
    fn overlapping_reservations_stack() {
        let mut p = Profile::new(10);
        p.reserve(t(0), d(100), 4);
        p.reserve(t(50), d(100), 4);
        assert_eq!(p.free_at(t(25)), 6);
        assert_eq!(p.free_at(t(75)), 2);
        assert_eq!(p.free_at(t(125)), 6);
        assert_eq!(p.free_at(t(150)), 10);
    }

    #[test]
    fn release_undoes_reserve() {
        let mut p = Profile::new(8);
        let snapshot = p.clone();
        p.reserve(t(10), d(30), 5);
        p.release(t(10), d(30), 5);
        assert_eq!(p, snapshot);
    }

    #[test]
    fn partial_release_models_early_completion() {
        let mut p = Profile::new(8);
        // Job estimated to run [0, 100) with 4 procs...
        p.reserve(t(0), d(100), 4);
        // ...actually completes at 60: give back [60, 100).
        p.release(t(60), d(40), 4);
        assert_eq!(p.free_at(t(59)), 4);
        assert_eq!(p.free_at(t(60)), 8);
    }

    #[test]
    fn partial_release_coalesces_adjacent_equal_segments() {
        // Regression: releasing the elapsed-tail of a rectangle must merge
        // the restored span with its equal neighbours and never push any
        // segment above capacity.
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 4); // [0,100) at 4 free
        p.reserve(t(0), d(60), 4); // [0,60) at 0 free
                                   // The [0,60) job "ends" at 60 having consumed its whole rectangle;
                                   // the [0,100) job completes early at 60: give back [60,100).
        p.release(t(60), d(40), 4);
        // [60,100) returns to 8 free — the same level as [100,∞), so the
        // boundary at 100 must vanish.
        assert_eq!(
            p.segments(),
            &[
                Segment {
                    start: t(0),
                    free: 0
                },
                Segment {
                    start: t(60),
                    free: 8
                }
            ],
            "adjacent equal segments must coalesce across the released span"
        );
        assert!(p.segments().iter().all(|s| s.free <= p.capacity()));
        assert!(p.invariants_ok());
    }

    #[test]
    #[should_panic(expected = "underflows")]
    fn reserve_panics_on_overcommit() {
        let mut p = Profile::new(4);
        p.reserve(t(0), d(10), 3);
        p.reserve(t(5), d(10), 2);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn release_panics_on_phantom_capacity() {
        let mut p = Profile::new(4);
        p.release(t(0), d(10), 1);
    }

    #[test]
    fn zero_duration_or_width_are_noops() {
        let mut p = Profile::new(4);
        let snapshot = p.clone();
        p.reserve(t(5), d(0), 4);
        p.reserve(t(5), d(10), 0);
        p.release(t(5), d(0), 4);
        assert_eq!(p, snapshot);
    }

    #[test]
    fn find_anchor_on_empty_profile_is_immediate() {
        let p = Profile::new(8);
        assert_eq!(p.find_anchor(t(42), d(1000), 8), t(42));
    }

    #[test]
    fn find_anchor_skips_blocked_interval() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 6); // only 2 free until 100
        assert_eq!(p.find_anchor(t(0), d(10), 2), t(0));
        assert_eq!(p.find_anchor(t(0), d(10), 3), t(100));
    }

    #[test]
    fn find_anchor_needs_contiguous_fit() {
        let mut p = Profile::new(8);
        // Free window [0, 50) of 8, then blocked [50, 100), then free.
        p.reserve(t(50), d(50), 8);
        // A 60-second job cannot use the [0, 50) hole.
        assert_eq!(p.find_anchor(t(0), d(60), 1), t(100));
        // A 50-second job fits exactly in the hole.
        assert_eq!(p.find_anchor(t(0), d(50), 1), t(0));
    }

    #[test]
    fn find_anchor_spans_multiple_segments() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 2); // 6 free on [0, 100)
        p.reserve(t(100), d(100), 4); // 4 free on [100, 200)
                                      // Width 4 for 150 s fits at 0: covered by both segments.
        assert_eq!(p.find_anchor(t(0), d(150), 4), t(0));
        // Width 5 for 150 s: blocked on [100, 200), so anchor is 200.
        assert_eq!(p.find_anchor(t(0), d(150), 5), t(200));
    }

    #[test]
    fn find_anchor_respects_earliest_bound() {
        let p = Profile::new(8);
        assert_eq!(p.find_anchor(t(500), d(10), 1), t(500));
    }

    #[test]
    fn find_anchor_mid_segment_start() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 6);
        // Asking from t=30 for width 2 (fits alongside): anchor 30.
        assert_eq!(p.find_anchor(t(30), d(10), 2), t(30));
        // Width 3 must wait for the reservation to end.
        assert_eq!(p.find_anchor(t(30), d(10), 3), t(100));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn find_anchor_rejects_impossible_width() {
        Profile::new(4).find_anchor(t(0), d(1), 5);
    }

    #[test]
    fn fits_matches_find_anchor() {
        let mut p = Profile::new(8);
        p.reserve(t(10), d(80), 5);
        for &(start, dur, width) in &[
            (0u64, 10u64, 8u32),
            (0, 11, 4),
            (0, 11, 3),
            (10, 80, 3),
            (90, 5, 8),
            (5, 100, 3),
        ] {
            let fits = p.fits(t(start), d(dur), width);
            let anchor = p.find_anchor(t(start), d(dur), width);
            assert_eq!(
                fits,
                anchor == t(start),
                "fits({start},{dur},{width}) = {fits} but anchor = {anchor}"
            );
        }
    }

    #[test]
    fn indexed_and_linear_anchors_agree_on_dense_profile() {
        // A profile long enough to bypass the small-profile cutoff and span
        // many index blocks, with levels that force both block-skip paths
        // (uniformly infeasible and uniformly feasible runs for mid-range
        // widths) and the run-index walk.
        let mut p = Profile::new(64);
        for i in 0..(2 * SMALL as u64) {
            let width = 1 + ((i * 7 + 3) % 60) as u32;
            p.reserve(
                t(i * 10),
                d(10 + (i % 13) * 5),
                width.min(p.free_at(t(i * 10))),
            );
        }
        assert!(
            p.segments().len() > SMALL,
            "want a profile past the index cutoff"
        );
        for earliest in (0..2 * SMALL as u64 * 10).step_by(53) {
            for &width in &[1u32, 7, 23, 40, 64] {
                for &dur in &[1u64, 50, 400, 5_000] {
                    assert_eq!(
                        p.find_anchor(t(earliest), d(dur), width),
                        p.find_anchor_linear(t(earliest), d(dur), width),
                        "diverged at earliest={earliest} dur={dur} width={width}"
                    );
                }
            }
        }
    }

    #[test]
    fn fits_cache_matches_anchor_scan_on_large_profiles() {
        // Past the SMALL cutoff `fits` answers from the prefix-minima
        // cache; every answer must equal the anchor-scan definition, for
        // shifting left edges and across mutations.
        let mut p = Profile::new(64);
        for i in 0..(2 * SMALL as u64) {
            let width = 1 + ((i * 7 + 3) % 60) as u32;
            p.reserve(
                t(i * 10),
                d(10 + (i % 13) * 5),
                width.min(p.free_at(t(i * 10))),
            );
        }
        assert!(p.segments().len() > SMALL);
        let check = |p: &Profile| {
            for start in (0..2 * SMALL as u64 * 10).step_by(97) {
                for &width in &[1u32, 7, 23, 40, 64] {
                    for &dur in &[1u64, 50, 400, 5_000, 200_000] {
                        let expect = p.find_anchor(t(start), d(dur), width) == t(start);
                        assert_eq!(
                            p.fits(t(start), d(dur), width),
                            expect,
                            "diverged at start={start} dur={dur} width={width}"
                        );
                        // The memoized repeat must agree with the rebuild.
                        assert_eq!(p.fits(t(start), d(dur), width), expect);
                    }
                }
            }
        };
        check(&p);
        // Mutations must invalidate the cache, not leave stale answers.
        let anchor = p.find_anchor(t(35), d(400), 1);
        p.reserve(anchor, d(400), 1);
        p.release(t(1_000), d(200), 1);
        check(&p);
    }

    #[test]
    fn stats_count_operations() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 4);
        p.reserve(t(200), d(100), 4);
        p.release(t(50), d(50), 4);
        p.find_anchor(t(0), d(10), 8);
        p.find_anchor(t(0), d(10), 2);
        p.note_compress_pass();
        let s = p.stats();
        assert_eq!(s.reserves, 2);
        assert_eq!(s.releases, 1);
        assert_eq!(s.find_anchor_calls, 2);
        assert_eq!(s.compress_passes, 1);
        assert!(s.segments_visited >= 2, "anchor scans examine segments");
        assert!(s.peak_segments >= 3);
        assert!(s.segments_per_anchor() > 0.0);
        p.reset_stats();
        let s = p.stats();
        assert_eq!(s.find_anchor_calls, 0);
        assert_eq!(s.reserves, 0);
        assert_eq!(s.peak_segments, p.segments().len() as u64);
    }

    #[test]
    fn stats_ignore_noop_calls_and_equality_ignores_stats() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(0), 4); // no-op
        p.release(t(0), d(10), 0); // no-op
        assert_eq!(p.stats().reserves, 0);
        assert_eq!(p.stats().releases, 0);
        let q = Profile::new(8);
        q.find_anchor(t(0), d(5), 1); // probe only q
        assert_eq!(p, q, "probe counters must not affect equality");
    }

    #[test]
    fn stats_absorb_sums_counts_and_maxes_peak() {
        let mut a = ProfileStats {
            find_anchor_calls: 2,
            peak_segments: 5,
            ..Default::default()
        };
        let b = ProfileStats {
            find_anchor_calls: 3,
            reserves: 1,
            peak_segments: 9,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.find_anchor_calls, 5);
        assert_eq!(a.reserves, 1);
        assert_eq!(a.peak_segments, 9);
    }

    #[test]
    fn coalescing_keeps_profile_minimal() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 4);
        p.reserve(t(100), d(100), 4);
        // Same level on both sides of t=100: must be one segment.
        assert_eq!(p.free_at(t(50)), 4);
        assert_eq!(p.free_at(t(150)), 4);
        assert_eq!(
            p.segments().iter().filter(|s| s.free == 4).count(),
            1,
            "adjacent equal segments not coalesced: {:?}",
            p.segments()
        );
    }

    #[test]
    fn trim_before_preserves_future_shape() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(10), 1);
        p.reserve(t(20), d(10), 2);
        p.reserve(t(40), d(10), 3);
        let f50 = p.free_at(t(50));
        let f45 = p.free_at(t(45));
        p.trim_before(t(45));
        assert_eq!(p.free_at(t(45)), f45);
        assert_eq!(p.free_at(t(50)), f50);
        assert!(p.invariants_ok());
        assert!(p.segments().len() <= 3);
    }

    #[test]
    fn same_future_ignores_past_and_segmentation() {
        let mut a = Profile::new(8);
        a.reserve(t(0), d(10), 3); // past noise
        a.reserve(t(100), d(50), 4);
        let mut b = Profile::new(8);
        b.reserve(t(100), d(50), 4);
        assert!(!a.same_future(&b, t(5)), "pasts differ at t=5");
        assert!(a.same_future(&b, t(10)), "futures agree from t=10");
        b.trim_before(t(120)); // drops the boundary at 100, keeps the level
        assert!(
            a.same_future(&b, t(120)),
            "trimming must not break equality"
        );
        b.reserve(t(130), d(5), 1);
        assert!(!a.same_future(&b, t(120)));
        assert!(!a.same_future(&Profile::new(16), t(0)), "capacity differs");
    }

    #[test]
    fn reserve_before_profile_origin_works() {
        // Anchoring earlier than any existing boundary (possible after
        // trim) must still work.
        let mut p = Profile::new(8);
        p.reserve(t(100), d(10), 2);
        p.trim_before(t(100));
        p.reserve(t(50), d(10), 3);
        assert_eq!(p.free_at(t(55)), 5);
        assert!(p.invariants_ok());
    }
}
