//! The availability profile — the scheduler's "2D chart".
//!
//! The paper describes scheduling as a chart with time on one axis and
//! processors on the other; each job or reservation is a rectangle.
//! [`Profile`] is that chart's free-capacity silhouette: a stepwise
//! function from time to the number of free processors, represented as a
//! sorted list of segments. The final segment extends to infinity.
//!
//! Everything the backfilling schedulers do reduces to three operations:
//!
//! * [`Profile::find_anchor`] — the earliest instant at or after a given
//!   time where a `width × duration` rectangle fits ("where can this job's
//!   reservation go?");
//! * [`Profile::reserve`] — carve the rectangle out;
//! * [`Profile::release`] — put capacity back (cancelled reservation, or
//!   the unused tail of an over-estimated job that finished early).
//!
//! # The segment-tree index
//!
//! `find_anchor` and `fits` dominate every backfilling decision, and a
//! naive scan walks the profile one segment at a time — on a congested
//! profile with a thousand live segments, most queries walk most of it.
//! The profile therefore maintains an augmented segment tree (`SegTree`)
//! over the segment vector: an implicit binary tree whose leaves are the
//! segments and whose every node stores the **minimum and maximum free
//! level** of its span. Three O(log n) descents answer everything the
//! anchor search needs:
//!
//! * *first feasible* — the first segment at or after an index with
//!   `free >= width` (descend where `max >= width`), used to establish
//!   anchor candidates and to leap whole infeasible runs at once;
//! * *first infeasible* — the first segment at or after an index with
//!   `free < width` (descend where `min < width`), used to verify a
//!   candidate window in one probe instead of a segment-by-segment walk;
//! * *range minimum* — the minimum free level over a window, which is the
//!   entire `fits` question.
//!
//! Mutations keep the tree synchronized incrementally: a reserve/release
//! that moves no segment boundary refreshes only the touched leaves and
//! their O(log n) ancestor path (`SegTree::update_range`); one that
//! inserts or removes a boundary re-derives the shifted suffix
//! (`SegTree::resync_from`) — bounded by the O(n) index shift the order
//! chain itself already paid for, and far cheaper than the old
//! per-mutation rebuild of per-threshold run lists. Profiles at or below
//! `SMALL` segments answer `find_anchor` with a plain scan (fewer
//! instructions than the descents for a handful of segments); the tree is
//! maintained at every size so `fits` and the invariant checks can always
//! use it.
//!
//! # The slab arena and the order chain
//!
//! Segments do not live in a shifting `Vec<Segment>`. They live in a
//! **slab arena** (`slab: Vec<Segment>`) at stable slots, and a separate
//! **order chain** (`order: Vec<u32>`) lists the live slots in time
//! order. A structural mutation — `split_at` inserting a boundary,
//! coalescing removing one — shifts 4-byte slot indices in the chain
//! instead of memmoving 16-byte `Segment`s, and the `Segment` values
//! themselves never move: slots freed by coalescing or trimming are
//! recycled through a free list (`free_slots`), so a steady-state
//! simulation stops allocating for segment churn entirely. The segment
//! tree stays positional over the chain (leaf `i` aggregates
//! `slab[order[i]]`), so its suffix re-derivation walks indices, and
//! `order_bytes_shifted` in [`ProfileStats`] records the index traffic
//! that replaced whole-segment memmoves.
//!
//! [`Profile::find_anchor_linear`] preserves the pre-index plain scan;
//! differential property tests (`tests/profile_differential.rs`) assert
//! the two agree decision-for-decision (against a naive quadratic
//! reference as well), and the `profile_ops` bench compares their cost.
//!
//! # Instrumentation
//!
//! Every profile keeps cheap operation counters ([`ProfileStats`]): anchor
//! probes, segments visited by plain scans, tree descents and nodes
//! touched, incremental-vs-rebuild tree updates, reserve/release counts,
//! compression passes, and the peak segment count. Schedulers expose them
//! via [`crate::Scheduler::profile_stats`] and the driver threads them into
//! the final [`Schedule`](../core) for reports and benches.
//!
//! Invariants (checked by `debug_assert` internally and by property tests):
//! segments are strictly ordered in time, free counts stay within
//! `[0, capacity]`, adjacent segments always differ (coalesced), and the
//! tree's per-node aggregates equal a from-scratch rebuild.

use serde::{Deserialize, Serialize};
use simcore::{SimSpan, SimTime};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// One step of the free-capacity silhouette: `free` processors are
/// available from `start` until the next segment's start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// When this level of availability begins.
    pub start: SimTime,
    /// Free processors over the segment.
    pub free: u32,
}

/// At or below this many segments `find_anchor` uses the plain scan: a
/// typical query resolves in a handful of segment visits, fewer
/// instructions than two tree descents. (`fits` and the structural
/// invariants use the tree at every size — it is always maintained.)
const SMALL: usize = 64;

/// Process-wide generation counter for silhouette tokens. Every profile
/// mutation — on any profile, including clones — draws a fresh value, so
/// two distinct silhouettes can never share a generation and a stale
/// `FitsCache` can never be accepted (the old scheme's per-profile
/// `version: u64` could collide across clones in principle).
static GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// One segment-tree node: the minimum and maximum free level over the
/// leaves of its span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    min: u32,
    max: u32,
}

/// Padding value for leaves beyond the real segment count: matches no
/// feasibility predicate (`max >= width` needs `width >= 1`; `min < width`
/// needs `width <= capacity < u32::MAX`), so queries never step off the
/// real profile.
const PAD: Node = Node {
    min: u32::MAX,
    max: 0,
};

/// The augmented segment tree behind [`Profile::find_anchor`] and
/// [`Profile::fits`].
///
/// Implicit array layout: the root is node 1, node `v`'s children are
/// `2v` and `2v + 1`, and leaf `i` (segment `i`) lives at `size + i`
/// where `size` is the smallest power of two ≥ the segment count. Each
/// node aggregates the min/max free level of its leaves; unoccupied
/// leaves hold [`PAD`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct SegTree {
    /// Number of leaves backed by real segments.
    len: usize,
    /// Leaf capacity: smallest power of two ≥ `len` (0 only when empty).
    size: usize,
    /// `2 * size` nodes; index 0 is unused.
    nodes: Vec<Node>,
}

impl SegTree {
    fn leaf(seg: &Segment) -> Node {
        Node {
            min: seg.free,
            max: seg.free,
        }
    }

    fn merge(a: Node, b: Node) -> Node {
        Node {
            min: a.min.min(b.min),
            max: a.max.max(b.max),
        }
    }

    /// Rebuild from scratch: O(size). Leaf `i` aggregates
    /// `slab[order[i]]` — the tree is positional over the order chain.
    fn rebuild(&mut self, slab: &[Segment], order: &[u32]) {
        self.len = order.len();
        self.size = order.len().next_power_of_two();
        self.nodes.clear();
        self.nodes.resize(2 * self.size, PAD);
        for (i, &ix) in order.iter().enumerate() {
            self.nodes[self.size + i] = Self::leaf(&slab[ix as usize]);
        }
        for v in (1..self.size).rev() {
            self.nodes[v] = Self::merge(self.nodes[2 * v], self.nodes[2 * v + 1]);
        }
    }

    /// Refresh leaves `[first, last)` after a value-only mutation (no
    /// boundary moved), then re-derive their O(log n) ancestor paths.
    fn update_range(&mut self, slab: &[Segment], order: &[u32], first: usize, last: usize) {
        debug_assert!(first < last && last <= self.len);
        for (i, &ix) in order[first..last].iter().enumerate() {
            self.nodes[self.size + first + i] = Self::leaf(&slab[ix as usize]);
        }
        let mut l = self.size + first;
        let mut r = self.size + last - 1;
        while l > 1 {
            l >>= 1;
            r >>= 1;
            for v in l..=r {
                self.nodes[v] = Self::merge(self.nodes[2 * v], self.nodes[2 * v + 1]);
            }
        }
    }

    /// Re-derive leaves `from..` and every ancestor above them, after an
    /// insertion or removal shifted the suffix of the order chain.
    /// Falls back to a full rebuild when the leaf capacity changed.
    fn resync_from(&mut self, slab: &[Segment], order: &[u32], from: usize) {
        let size = order.len().next_power_of_two();
        if size != self.size {
            self.rebuild(slab, order);
            return;
        }
        self.len = order.len();
        for i in from..self.size {
            self.nodes[self.size + i] = match order.get(i) {
                Some(&ix) => Self::leaf(&slab[ix as usize]),
                None => PAD,
            };
        }
        let mut l = self.size + from;
        let mut r = 2 * self.size - 1;
        while l > 1 {
            l >>= 1;
            r >>= 1;
            for v in l..=r {
                self.nodes[v] = Self::merge(self.nodes[2 * v], self.nodes[2 * v + 1]);
            }
        }
    }

    /// First leaf `>= from` with `free >= width` — the next segment a
    /// `width`-wide rectangle could anchor in.
    fn first_at_least(&self, from: usize, width: u32, nodes: &mut u64) -> Option<usize> {
        self.first_leaf(from, |n| n.max >= width, nodes)
    }

    /// First leaf `>= from` with `free < width` — the next segment that
    /// blocks a `width`-wide rectangle.
    fn first_below(&self, from: usize, width: u32, nodes: &mut u64) -> Option<usize> {
        self.first_leaf(from, |n| n.min < width, nodes)
    }

    /// One O(log n) descent: the first leaf at or after `from` whose
    /// aggregate satisfies `pred`. Climbs right from the starting leaf,
    /// probing each next-subtree-to-the-right until one can contain a
    /// match, then descends to its leftmost matching leaf.
    fn first_leaf(
        &self,
        from: usize,
        pred: impl Fn(&Node) -> bool,
        count: &mut u64,
    ) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut v = self.size + from;
        *count += 1;
        if pred(&self.nodes[v]) {
            return Some(from);
        }
        loop {
            // Climb while `v` is a right child; from a left child the next
            // unexplored span is exactly the right sibling's subtree.
            while v & 1 == 1 {
                v >>= 1;
            }
            if v == 0 {
                return None; // climbed past the root: nothing matches
            }
            v += 1;
            *count += 1;
            if !pred(&self.nodes[v]) {
                continue;
            }
            // An aggregate match guarantees a matching leaf below; PAD
            // leaves never match, so the leaf found is always real.
            while v < self.size {
                v <<= 1;
                *count += 1;
                if !pred(&self.nodes[v]) {
                    v += 1;
                }
            }
            return Some(v - self.size);
        }
    }

    /// Minimum free level over leaves `[l, r)` (MAX when empty).
    fn range_min(&self, l: usize, r: usize, count: &mut u64) -> u32 {
        let mut min = u32::MAX;
        let mut l = self.size + l;
        let mut r = self.size + r.min(self.len);
        while l < r {
            if l & 1 == 1 {
                *count += 1;
                min = min.min(self.nodes[l].min);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                *count += 1;
                min = min.min(self.nodes[r].min);
            }
            l >>= 1;
            r >>= 1;
        }
        min
    }
}

/// Memoized prefix minima for left-edge-pinned fit queries.
///
/// Backfill and compression passes ask [`Profile::fits`] the same-shaped
/// question hundreds of times per event — "does a rectangle starting at
/// `now` fit?". Two regimes matter:
///
/// * between mutations (a backfill scan rejecting candidate after
///   candidate) the profile is frozen, so for one `(silhouette, from)`
///   pair the answer is a pure lookup: `min_free[j]` is the minimum free
///   capacity over `[from, ends[j])`, and a rectangle fits iff the prefix
///   minimum covering `from + duration` is at least `width`;
/// * across mutations (a compression pass that moves a job and re-probes)
///   every memoized answer is dead on arrival, so rebuilding the O(n)
///   prefix table per probe is pure waste — those probes are answered by
///   one O(log n) tree descent instead, and the table is rebuilt only
///   once a second probe arrives against the *same* generation and left
///   edge (proof the profile has gone quiet).
///
/// Validity is keyed on the profile's process-globally-unique generation
/// token, so a cache carried along by [`Profile::clone`] can never be
/// mistaken for current after either copy mutates; debug builds
/// additionally pin a silhouette checksum and assert it on every hit.
#[derive(Debug, Clone, Default)]
struct FitsCache {
    /// Generation the entries were computed against.
    generation: u64,
    /// Query left edge the prefix minima are anchored at.
    from: SimTime,
    /// Silhouette checksum at rebuild (debug builds only; 0 in release),
    /// asserted on every hit: a stale cache must be impossible, not just
    /// unlikely.
    checksum: u64,
    /// Generation/left-edge of the last tree-answered miss; a repeat
    /// triggers the memoizing rebuild.
    miss_generation: u64,
    miss_from: SimTime,
    /// Exclusive end of each prefix window, strictly increasing; the last
    /// entry is `SimTime::FAR_FUTURE` (the final segment never ends).
    ends: Vec<SimTime>,
    /// `min_free[j]` = minimum free capacity over `[from, ends[j])`.
    min_free: Vec<u32>,
}

impl FitsCache {
    /// Recompute the prefix minima for `profile` anchored at `from`.
    fn rebuild(&mut self, profile: &Profile, from: SimTime) {
        self.generation = profile.generation;
        self.from = from;
        self.checksum = if cfg!(debug_assertions) {
            profile.silhouette_checksum()
        } else {
            0
        };
        self.ends.clear();
        self.min_free.clear();
        // First segment starting strictly after `from`; the region before
        // it (a real segment or the implicit fully-free prefix) is where
        // the query window opens.
        let i0 = profile.upper_bound(from);
        let mut min = if i0 == 0 {
            profile.capacity
        } else {
            profile.seg(i0 - 1).free
        };
        for pos in i0..profile.seg_count() {
            let seg = profile.seg(pos);
            self.ends.push(seg.start);
            self.min_free.push(min);
            min = min.min(seg.free);
        }
        self.ends.push(SimTime::FAR_FUTURE);
        self.min_free.push(min);
    }

    /// Minimum free capacity over `[from, end)`.
    fn min_free_until(&self, end: SimTime) -> u32 {
        let j = self.ends.partition_point(|&e| e < end);
        self.min_free[j.min(self.min_free.len() - 1)]
    }

    /// Whether a `width`-wide rectangle over `[from, end)` fits. The
    /// prefix minima are non-increasing, so the extreme entries bound
    /// every answer: a probe wider than the first window's minimum fails
    /// for *any* end, one no wider than the full-horizon minimum fits for
    /// any end. Both are O(1), and in a saturated system (free capacity
    /// at `from` near zero) almost every compression probe dies on the
    /// first compare — the binary search runs only for the sliver of
    /// probes whose answer actually depends on `end`.
    fn admits(&self, end: SimTime, width: u32) -> bool {
        if self.min_free[0] < width {
            return false;
        }
        if self.min_free[self.min_free.len() - 1] >= width {
            return true;
        }
        self.min_free_until(end) >= width
    }
}

/// Operation counters of one [`Profile`] (or aggregated over several — see
/// [`ProfileStats::absorb`]). All counts are cumulative since creation or
/// the last [`Profile::reset_stats`].
///
/// `serde(default)` keeps old serialized reports (e.g. `--baseline`
/// files written before a counter existed) readable: missing counters
/// deserialize as zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct ProfileStats {
    /// Calls to [`Profile::find_anchor`] (including via `fits`).
    pub find_anchor_calls: u64,
    /// Segments examined one-by-one by plain (small-profile) scans.
    pub segments_visited: u64,
    /// O(log n) segment-tree descents (anchor establishment, window
    /// verification, `fits` range probes).
    pub tree_descents: u64,
    /// Tree nodes touched across all descents; divided by
    /// `tree_descents` this is the realized descent depth.
    pub tree_nodes_visited: u64,
    /// Mutations absorbed by leaf + ancestor-path updates (no segment
    /// boundary moved).
    pub tree_incremental_updates: u64,
    /// Mutations that re-derived a suffix of the tree (or all of it):
    /// boundary inserted/removed, or the past trimmed away.
    pub tree_rebuilds: u64,
    /// Calls to [`Profile::reserve`] that changed the profile.
    pub reserves: u64,
    /// Calls to [`Profile::release`] that changed the profile.
    pub releases: u64,
    /// Compression passes noted by the owning scheduler
    /// (see [`Profile::note_compress_pass`]).
    pub compress_passes: u64,
    /// Largest segment count the profile ever reached.
    pub peak_segments: u64,
    /// Queued jobs placed by incremental binary-search insertion instead
    /// of being re-sorted into place (static-key policies).
    pub queue_inserts: u64,
    /// Full queue sorts actually performed (time-dependent policies such
    /// as XFactor re-key and sort once per event).
    pub queue_sorts: u64,
    /// Per-event queue sorts skipped because the incremental order was
    /// already correct (static-key policies never re-sort).
    pub queue_sorts_avoided: u64,
    /// Running-set profile rebuilds performed from scratch.
    pub profile_rebuilds: u64,
    /// Running-set profile rebuilds served from the incrementally
    /// maintained cache instead of being rebuilt.
    pub profile_rebuilds_avoided: u64,
    /// `fits` queries answered from the memoized prefix minima.
    pub fits_cache_hits: u64,
    /// `fits` queries the memo could not answer (profile mutated or the
    /// query's left edge moved); answered by a tree descent, or by the
    /// memoizing rebuild on a repeat.
    pub fits_cache_misses: u64,
    /// Bytes of order-chain index traffic from structural mutations
    /// (boundary inserts/removes, trims) — the 4-byte-per-segment shifts
    /// that replaced whole-`Segment` memmoves in the slab layout.
    pub order_bytes_shifted: u64,
    /// Segment slots recycled from the slab free list instead of growing
    /// the arena (steady state allocates nothing for segment churn).
    pub slab_slot_reuses: u64,
    /// Scheduler scratch buffers reused across events instead of being
    /// freshly allocated (see [`Profile::note_scratch_reuse`]).
    pub scratch_reuses: u64,
}

impl ProfileStats {
    /// Merge another profile's counters into this one: counts add, the
    /// peak takes the maximum.
    pub fn absorb(&mut self, other: &ProfileStats) {
        self.find_anchor_calls += other.find_anchor_calls;
        self.segments_visited += other.segments_visited;
        self.tree_descents += other.tree_descents;
        self.tree_nodes_visited += other.tree_nodes_visited;
        self.tree_incremental_updates += other.tree_incremental_updates;
        self.tree_rebuilds += other.tree_rebuilds;
        self.reserves += other.reserves;
        self.releases += other.releases;
        self.compress_passes += other.compress_passes;
        self.peak_segments = self.peak_segments.max(other.peak_segments);
        self.queue_inserts += other.queue_inserts;
        self.queue_sorts += other.queue_sorts;
        self.queue_sorts_avoided += other.queue_sorts_avoided;
        self.profile_rebuilds += other.profile_rebuilds;
        self.profile_rebuilds_avoided += other.profile_rebuilds_avoided;
        self.fits_cache_hits += other.fits_cache_hits;
        self.fits_cache_misses += other.fits_cache_misses;
        self.order_bytes_shifted += other.order_bytes_shifted;
        self.slab_slot_reuses += other.slab_slot_reuses;
        self.scratch_reuses += other.scratch_reuses;
    }

    /// Mean segments examined per anchor search (0 if none ran). Counts
    /// only plain-scan visits: past the cutoff the tree answers in
    /// node touches, tracked by [`ProfileStats::nodes_per_descent`].
    pub fn segments_per_anchor(&self) -> f64 {
        if self.find_anchor_calls == 0 {
            0.0
        } else {
            self.segments_visited as f64 / self.find_anchor_calls as f64
        }
    }

    /// Mean tree nodes touched per descent (0 if none ran) — the
    /// realized O(log n).
    pub fn nodes_per_descent(&self) -> f64 {
        if self.tree_descents == 0 {
            0.0
        } else {
            self.tree_nodes_visited as f64 / self.tree_descents as f64
        }
    }
}

/// Interior-mutable counters: `find_anchor` takes `&self`, so the probe
/// counters live in `Cell`s. Excluded from `PartialEq` — two profiles with
/// the same silhouette are equal regardless of how they were probed.
#[derive(Debug, Clone, Default)]
struct Counters {
    find_anchor_calls: Cell<u64>,
    segments_visited: Cell<u64>,
    tree_descents: Cell<u64>,
    tree_nodes_visited: Cell<u64>,
    tree_incremental_updates: Cell<u64>,
    tree_rebuilds: Cell<u64>,
    reserves: Cell<u64>,
    releases: Cell<u64>,
    compress_passes: Cell<u64>,
    peak_segments: Cell<u64>,
    queue_inserts: Cell<u64>,
    queue_sorts: Cell<u64>,
    queue_sorts_avoided: Cell<u64>,
    fits_cache_hits: Cell<u64>,
    fits_cache_misses: Cell<u64>,
    order_bytes_shifted: Cell<u64>,
    slab_slot_reuses: Cell<u64>,
    scratch_reuses: Cell<u64>,
}

fn bump(cell: &Cell<u64>, by: u64) {
    cell.set(cell.get() + by);
}

/// The free-capacity timeline of a machine, including running jobs and any
/// future reservations the scheduler maintains.
///
/// ```
/// use sched::Profile;
/// use simcore::{SimSpan, SimTime};
///
/// let mut p = Profile::new(8);
/// // A 6-wide job runs for 100 s starting now.
/// p.reserve(SimTime::ZERO, SimSpan::new(100), 6);
/// // Earliest slot for an 8-wide, 50 s job: after the running job.
/// assert_eq!(p.find_anchor(SimTime::ZERO, SimSpan::new(50), 8), SimTime::new(100));
/// // A 2-wide job backfills immediately alongside it.
/// assert_eq!(p.find_anchor(SimTime::ZERO, SimSpan::new(50), 2), SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Profile {
    capacity: u32,
    /// Segment arena: stable slots that are never shifted. Which slots
    /// are live, and in what time order, is `order`'s business; dead
    /// slots wait in `free_slots` for reuse.
    slab: Vec<Segment>,
    /// Recyclable slab slots (indices of segments removed by coalescing
    /// or trimming).
    free_slots: Vec<u32>,
    /// The order chain: live slab slots sorted by segment start, strictly
    /// increasing, values coalesced. Non-empty: the last segment extends
    /// to infinity. Structural mutations shift these 4-byte indices, not
    /// the 16-byte segments.
    order: Vec<u32>,
    /// Min/max-augmented segment tree, positional over `order`, kept
    /// synchronized by every mutation.
    tree: SegTree,
    /// Process-globally-unique silhouette token, refreshed from
    /// [`GENERATION`] on every mutation; validates `fits_cache`.
    generation: u64,
    fits_cache: RefCell<FitsCache>,
    stats: Counters,
}

impl PartialEq for Profile {
    fn eq(&self, other: &Self) -> bool {
        // The tree is a pure function of the segments, and the counters
        // (plus the slab's slot assignment and free list) are
        // representation: the silhouette alone defines identity.
        self.capacity == other.capacity
            && self.order.len() == other.order.len()
            && (0..self.order.len()).all(|i| self.seg(i) == other.seg(i))
    }
}

impl Eq for Profile {}

impl Profile {
    /// A fully free machine with `capacity` processors. Panics if zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "profile needs positive capacity");
        let slab = vec![Segment {
            start: SimTime::ZERO,
            free: capacity,
        }];
        let order = vec![0u32];
        let mut tree = SegTree::default();
        tree.rebuild(&slab, &order);
        let p = Profile {
            capacity,
            slab,
            free_slots: Vec::new(),
            order,
            tree,
            generation: next_generation(),
            fits_cache: RefCell::new(FitsCache::default()),
            stats: Counters::default(),
        };
        p.stats.peak_segments.set(1);
        p
    }

    /// The machine's total processor count.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The segments in time order (for inspection and tests; assembled
    /// from the slab on each call — the hot paths never build this).
    pub fn segments(&self) -> Vec<Segment> {
        self.order
            .iter()
            .map(|&ix| self.slab[ix as usize])
            .collect()
    }

    /// The ordered segment at position `pos` (copied out of the slab).
    #[inline]
    fn seg(&self, pos: usize) -> Segment {
        self.slab[self.order[pos] as usize]
    }

    /// Number of live segments.
    #[inline]
    fn seg_count(&self) -> usize {
        self.order.len()
    }

    /// Position of the first ordered segment with `start > t` (the
    /// `partition_point(start <= t)` of the old contiguous layout).
    #[inline]
    fn upper_bound(&self, t: SimTime) -> usize {
        let slab = &self.slab;
        self.order
            .partition_point(|&ix| slab[ix as usize].start <= t)
    }

    /// Position of the first ordered segment with `start >= t`.
    #[inline]
    fn lower_bound(&self, t: SimTime) -> usize {
        let slab = &self.slab;
        self.order
            .partition_point(|&ix| slab[ix as usize].start < t)
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> ProfileStats {
        ProfileStats {
            find_anchor_calls: self.stats.find_anchor_calls.get(),
            segments_visited: self.stats.segments_visited.get(),
            tree_descents: self.stats.tree_descents.get(),
            tree_nodes_visited: self.stats.tree_nodes_visited.get(),
            tree_incremental_updates: self.stats.tree_incremental_updates.get(),
            tree_rebuilds: self.stats.tree_rebuilds.get(),
            reserves: self.stats.reserves.get(),
            releases: self.stats.releases.get(),
            compress_passes: self.stats.compress_passes.get(),
            peak_segments: self.stats.peak_segments.get(),
            queue_inserts: self.stats.queue_inserts.get(),
            queue_sorts: self.stats.queue_sorts.get(),
            queue_sorts_avoided: self.stats.queue_sorts_avoided.get(),
            profile_rebuilds: 0,
            profile_rebuilds_avoided: 0,
            fits_cache_hits: self.stats.fits_cache_hits.get(),
            fits_cache_misses: self.stats.fits_cache_misses.get(),
            order_bytes_shifted: self.stats.order_bytes_shifted.get(),
            slab_slot_reuses: self.stats.slab_slot_reuses.get(),
            scratch_reuses: self.stats.scratch_reuses.get(),
        }
    }

    /// Zero the operation counters (the peak resets to the current size).
    pub fn reset_stats(&self) {
        self.stats.find_anchor_calls.set(0);
        self.stats.segments_visited.set(0);
        self.stats.tree_descents.set(0);
        self.stats.tree_nodes_visited.set(0);
        self.stats.tree_incremental_updates.set(0);
        self.stats.tree_rebuilds.set(0);
        self.stats.reserves.set(0);
        self.stats.releases.set(0);
        self.stats.compress_passes.set(0);
        self.stats.peak_segments.set(self.order.len() as u64);
        self.stats.queue_inserts.set(0);
        self.stats.queue_sorts.set(0);
        self.stats.queue_sorts_avoided.set(0);
        self.stats.fits_cache_hits.set(0);
        self.stats.fits_cache_misses.set(0);
        self.stats.order_bytes_shifted.set(0);
        self.stats.slab_slot_reuses.set(0);
        self.stats.scratch_reuses.set(0);
    }

    /// Record one compression pass by the owning scheduler. The pass itself
    /// happens at the scheduler level; the counter lives here so a single
    /// [`ProfileStats`] carries the whole hot-path story.
    pub fn note_compress_pass(&self) {
        bump(&self.stats.compress_passes, 1);
    }

    /// Record queue-order maintenance work by the owning scheduler: jobs
    /// placed by incremental insertion, full sorts performed, and sorts
    /// skipped because the maintained order was already correct. Like
    /// [`Profile::note_compress_pass`], the events happen at the scheduler
    /// level; the counters live here so one [`ProfileStats`] carries the
    /// whole hot-path story.
    pub fn note_queue_ops(&self, inserts: u64, sorts: u64, sorts_avoided: u64) {
        bump(&self.stats.queue_inserts, inserts);
        bump(&self.stats.queue_sorts, sorts);
        bump(&self.stats.queue_sorts_avoided, sorts_avoided);
    }

    /// Record one scheduler scratch-buffer reuse: a hot-loop pass (a
    /// compression sweep, the EASY backfill scan) that filled a retained
    /// buffer instead of allocating a fresh one. Like
    /// [`Profile::note_compress_pass`], the event happens at the
    /// scheduler level; the counter lives here so one [`ProfileStats`]
    /// carries the whole hot-path story.
    pub fn note_scratch_reuse(&self) {
        bump(&self.stats.scratch_reuses, 1);
    }

    /// FNV-1a over the silhouette (capacity + every boundary/level pair).
    /// Debug builds pin this into the `FitsCache` and assert it on every
    /// hit, so an incorrectly accepted stale cache fails loudly instead of
    /// silently corrupting decisions.
    fn silhouette_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.capacity as u64);
        for &ix in &self.order {
            let s = self.slab[ix as usize];
            mix(s.start.as_secs());
            mix(s.free as u64);
        }
        h
    }

    /// Free processors at instant `t`.
    pub fn free_at(&self, t: SimTime) -> u32 {
        // Position of the last segment with start <= t.
        let idx = self.upper_bound(t);
        if idx == 0 {
            // Before all segments: the profile began fully free.
            self.capacity
        } else {
            self.seg(idx - 1).free
        }
    }

    /// True if a `width × duration` rectangle fits with its left edge
    /// exactly at `start` — equivalently, whether the minimum free
    /// capacity over `[start, start + duration)` is at least `width`.
    ///
    /// Between mutations, answers come from the `FitsCache` prefix
    /// minima: one binary search per query. Immediately after a mutation
    /// the memo is dead, and the first probe is answered by one O(log n)
    /// tree descent instead of an O(n) rebuild — a compression pass that
    /// mutates between probes never rebuilds the memo at all, while a
    /// stable backfill scan re-memoizes on its second probe.
    pub fn fits(&self, start: SimTime, duration: SimSpan, width: u32) -> bool {
        self.assert_possible(width);
        if duration.is_zero() || width == 0 {
            return true;
        }
        bump(&self.stats.find_anchor_calls, 1);
        let end = start + duration;
        let mut cache = self.fits_cache.borrow_mut();
        if cache.generation == self.generation && cache.from == start {
            debug_assert_eq!(
                cache.checksum,
                self.silhouette_checksum(),
                "stale fits cache accepted: generation token collision"
            );
            bump(&self.stats.fits_cache_hits, 1);
            return cache.admits(end, width);
        }
        bump(&self.stats.fits_cache_misses, 1);
        if cache.miss_generation == self.generation && cache.miss_from == start {
            // Second probe against an unchanged (silhouette, left edge):
            // the profile has gone quiet, so memoizing pays off now.
            cache.rebuild(self, start);
            return cache.admits(end, width);
        }
        cache.miss_generation = self.generation;
        cache.miss_from = start;
        let mut nodes = 0u64;
        let ok = self.fits_by_tree(start, end, width, &mut nodes);
        bump(&self.stats.tree_descents, 1);
        bump(&self.stats.tree_nodes_visited, nodes);
        ok
    }

    /// The `fits` question answered directly from the tree: the segment
    /// hosting `start` (or the implicit free prefix) must be feasible, and
    /// the minimum free level over the segments opening inside
    /// `(start, end)` must be at least `width`. Two binary searches plus
    /// one range-min descent.
    fn fits_by_tree(&self, start: SimTime, end: SimTime, width: u32, nodes: &mut u64) -> bool {
        let i0 = self.upper_bound(start);
        let host_free = if i0 == 0 {
            self.capacity
        } else {
            self.seg(i0 - 1).free
        };
        if host_free < width {
            return false;
        }
        let j = self.lower_bound(end);
        i0 >= j || self.tree.range_min(i0, j, nodes) >= width
    }

    fn assert_possible(&self, width: u32) {
        assert!(
            width <= self.capacity,
            "width {width} exceeds capacity {}",
            self.capacity
        );
        let last_free = self.seg(self.seg_count() - 1).free;
        assert!(
            width <= last_free,
            "width {width} never fits: final free level is {last_free}"
        );
    }

    /// The earliest instant `t >= earliest` where a `width × duration`
    /// rectangle fits. Always terminates because the profile eventually
    /// returns to an (infinitely long) final segment.
    ///
    /// Past the `SMALL` cutoff the search runs on the segment tree:
    /// one descent finds the next feasible anchor host, one descent
    /// verifies the whole candidate window (or names the segment that
    /// blocks it), so each candidate costs O(log n) instead of a walk.
    ///
    /// Panics if `width > capacity` or the final segment has fewer than
    /// `width` free processors (a rectangle that could never fit).
    pub fn find_anchor(&self, earliest: SimTime, duration: SimSpan, width: u32) -> SimTime {
        self.assert_possible(width);
        if duration.is_zero() || width == 0 {
            return earliest;
        }

        // Probe counts accumulate in locals and hit the `Cell`s once per
        // call: the interior-mutability bookkeeping must stay off the scan
        // itself, which is the hottest loop in the simulator.
        let anchor = if self.seg_count() <= SMALL {
            let mut visited = 0u64;
            let anchor = self.scan_plain(earliest, duration, width, &mut visited);
            bump(&self.stats.segments_visited, visited);
            anchor
        } else {
            let mut descents = 0u64;
            let mut nodes = 0u64;
            let anchor =
                self.find_anchor_tree(earliest, duration, width, &mut descents, &mut nodes);
            bump(&self.stats.tree_descents, descents);
            bump(&self.stats.tree_nodes_visited, nodes);
            anchor
        };
        bump(&self.stats.find_anchor_calls, 1);
        anchor
    }

    /// The tree-indexed search behind [`find_anchor`](Profile::find_anchor).
    ///
    /// Invariant maintained throughout: `anchor` is feasible up to (not
    /// including) segment `check` — the host segment holding `anchor` has
    /// `free >= width`, as does everything between it and `check`. Each
    /// loop iteration answers "which segment blocks the window first?"
    /// with a single descent; a blockage moves the anchor to the start of
    /// the first feasible segment past the whole infeasible run (a second
    /// descent), which is exactly where the linear scan would next settle.
    fn find_anchor_tree(
        &self,
        earliest: SimTime,
        duration: SimSpan,
        width: u32,
        descents: &mut u64,
        nodes: &mut u64,
    ) -> SimTime {
        let first_start = self.seg(0).start;
        let mut anchor = earliest;
        // The region before the first boundary is implicitly fully free
        // (it only exists after trim_before); a rectangle fitting entirely
        // inside it anchors immediately. One that spills into the first
        // segment starts its verification at segment 0: the implicit
        // region itself never blocks.
        if anchor < first_start && anchor + duration <= first_start {
            return anchor;
        }
        let mut check = if anchor < first_start {
            0
        } else {
            let host = self.upper_bound(anchor) - 1;
            if self.seg(host).free >= width {
                host + 1
            } else {
                // The requested instant is blocked: the earliest possible
                // anchor is the next feasible segment's start.
                *descents += 1;
                let idx = self
                    .tree
                    .first_at_least(host + 1, width, nodes)
                    .expect("final segment narrower than asserted");
                anchor = self.seg(idx).start;
                idx + 1
            }
        };
        loop {
            *descents += 1;
            match self.tree.first_below(check, width, nodes) {
                // The first blocking segment opens inside the candidate
                // window: every instant in [anchor, end-of-blockage) dies
                // on it, so restart at the first feasible segment past
                // the infeasible run.
                Some(k) if self.seg(k).start < anchor + duration => {
                    *descents += 1;
                    let idx = self
                        .tree
                        .first_at_least(k + 1, width, nodes)
                        .expect("final segment narrower than asserted");
                    anchor = self.seg(idx).start;
                    check = idx + 1;
                }
                // No blockage before the window closes: the rectangle fits.
                _ => return anchor,
            }
        }
    }

    /// The small-profile scan: the plain linear algorithm plus visit
    /// counting, with no tree arithmetic on the hot path.
    fn scan_plain(
        &self,
        earliest: SimTime,
        duration: SimSpan,
        width: u32,
        visited: &mut u64,
    ) -> SimTime {
        let mut anchor = earliest;
        let first_start = self.seg(0).start;
        if anchor < first_start && anchor + duration <= first_start {
            return anchor;
        }
        let mut idx = self.upper_bound(anchor).saturating_sub(1);
        loop {
            *visited += 1;
            let seg = self.seg(idx);
            let seg_end = if idx + 1 < self.seg_count() {
                self.seg(idx + 1).start
            } else {
                // The final segment is infinite; asserted wide enough.
                if seg.free >= width {
                    return anchor;
                }
                unreachable!("final segment narrower than asserted");
            };
            if seg.free >= width {
                if seg_end >= anchor + duration {
                    return anchor;
                }
            } else {
                anchor = seg_end;
            }
            idx += 1;
        }
    }

    /// The pre-index linear anchor scan, kept verbatim as a reference:
    /// the differential property test asserts it agrees with
    /// [`find_anchor`](Profile::find_anchor) decision-for-decision, and the
    /// `profile_ops` bench measures what the tree buys. Maintains the same
    /// panics; does not update the probe counters.
    pub fn find_anchor_linear(&self, earliest: SimTime, duration: SimSpan, width: u32) -> SimTime {
        self.assert_possible(width);
        if duration.is_zero() || width == 0 {
            return earliest;
        }

        let mut anchor = earliest;
        let first_start = self.seg(0).start;
        if anchor < first_start && anchor + duration <= first_start {
            return anchor;
        }

        // Scan from the segment containing (or first after) the anchor.
        // Invariant on entry to each iteration: free >= width over
        // [anchor, seg.start) — either empty, the implicit free region, or
        // previously verified segments.
        let mut idx = self.upper_bound(anchor).saturating_sub(1);
        loop {
            let seg = self.seg(idx);
            let seg_end = if idx + 1 < self.seg_count() {
                self.seg(idx + 1).start
            } else {
                // The final segment is infinite; asserted wide enough above.
                if seg.free >= width {
                    return anchor;
                }
                unreachable!("final segment narrower than asserted");
            };
            if seg.free >= width {
                if seg_end >= anchor + duration {
                    return anchor;
                }
            } else {
                // Blocked: restart the anchor at the end of this segment.
                anchor = seg_end;
            }
            idx += 1;
        }
    }

    /// Place `seg` in a slab slot — a recycled one when the free list has
    /// any — and return its index. The segment values themselves never
    /// move after this.
    fn alloc_slot(&mut self, seg: Segment) -> u32 {
        match self.free_slots.pop() {
            Some(ix) => {
                self.slab[ix as usize] = seg;
                bump(&self.stats.slab_slot_reuses, 1);
                ix
            }
            None => {
                self.slab.push(seg);
                (self.slab.len() - 1) as u32
            }
        }
    }

    /// Insert slot `ix` at order position `pos`, charging the 4-byte
    /// suffix shift to the bytes-moved gauge.
    fn order_insert(&mut self, pos: usize, ix: u32) {
        let shifted = (self.order.len() - pos) * std::mem::size_of::<u32>();
        bump(&self.stats.order_bytes_shifted, shifted as u64);
        self.order.insert(pos, ix);
    }

    /// Remove the segment at order position `pos`, recycling its slot.
    fn order_remove(&mut self, pos: usize) {
        let shifted = (self.order.len() - pos - 1) * std::mem::size_of::<u32>();
        bump(&self.stats.order_bytes_shifted, shifted as u64);
        let ix = self.order.remove(pos);
        self.free_slots.push(ix);
    }

    /// Order position of the segment containing `t`, splitting a segment
    /// at `t` if needed so a boundary exists exactly at `t`. The flag
    /// reports whether a boundary was inserted (a structural change the
    /// tree cannot absorb with a value-only update).
    fn split_at(&mut self, t: SimTime) -> (usize, bool) {
        let pos = self.upper_bound(t);
        if pos == 0 {
            // t precedes the whole profile (possible after trim_before):
            // the region before the first segment is implicitly fully free.
            let first = self.order[0] as usize;
            if self.slab[first].free == self.capacity {
                // A fully-free segment already opens the profile: moving
                // its boundary left to `t` is the same silhouette, and
                // inserting instead would create an adjacent-equal pair
                // in the middle of the mutation range, where boundary
                // coalescing would never look.
                self.slab[first].start = t;
                return (0, false);
            }
            let ix = self.alloc_slot(Segment {
                start: t,
                free: self.capacity,
            });
            self.order_insert(0, ix);
            return (0, true);
        }
        let prev = self.seg(pos - 1);
        if prev.start == t {
            (pos - 1, false)
        } else {
            let ix = self.alloc_slot(Segment {
                start: t,
                free: prev.free,
            });
            self.order_insert(pos, ix);
            (pos, true)
        }
    }

    /// Re-coalesce after a range update. Segments inside the range all
    /// moved by the same delta, so previously distinct neighbours stay
    /// distinct: only the two boundary pairs — `(first - 1, first)` and
    /// `(last - 1, last)` — can newly coincide. Checks exactly those,
    /// removing the later segment of an equal pair (keeping the earlier
    /// start, as a full `dedup` would). Returns true when anything was
    /// removed (a structural change for the tree).
    fn coalesce_boundaries(&mut self, first: usize, last: usize) -> bool {
        let mut removed = false;
        if last < self.order.len() && self.seg(last - 1).free == self.seg(last).free {
            self.order_remove(last);
            removed = true;
        }
        if first > 0 && self.seg(first - 1).free == self.seg(first).free {
            self.order_remove(first);
            removed = true;
        }
        removed
    }

    /// Post-mutation bookkeeping: fresh generation token (invalidating
    /// the fits memo), tree synchronization — incremental when no segment
    /// boundary moved, suffix re-derivation otherwise — and the peak
    /// gauge.
    fn after_mutation(&mut self, first: usize, last: usize, structural: bool) {
        self.generation = next_generation();
        if structural {
            self.tree.resync_from(&self.slab, &self.order, first);
            bump(&self.stats.tree_rebuilds, 1);
        } else {
            self.tree.update_range(&self.slab, &self.order, first, last);
            bump(&self.stats.tree_incremental_updates, 1);
        }
        let peak = self.stats.peak_segments.get().max(self.order.len() as u64);
        self.stats.peak_segments.set(peak);
        debug_assert!(self.invariants_ok());
    }

    /// Subtract `width` processors over `[start, start + duration)`.
    ///
    /// Panics if that would drive any segment negative — callers must place
    /// rectangles with [`find_anchor`]/[`fits`] first (a violation is a
    /// scheduler bug, not an operational condition).
    ///
    /// [`find_anchor`]: Profile::find_anchor
    /// [`fits`]: Profile::fits
    pub fn reserve(&mut self, start: SimTime, duration: SimSpan, width: u32) {
        if duration.is_zero() || width == 0 {
            return;
        }
        bump(&self.stats.reserves, 1);
        let end = start + duration;
        let (first, ins_a) = self.split_at(start);
        let (last, ins_b) = self.split_at(end); // affected segs are first..last
        for pos in first..last {
            let ix = self.order[pos] as usize;
            let seg = &mut self.slab[ix];
            assert!(
                seg.free >= width,
                "reservation of {width} at {} underflows segment at {} (free {})",
                start,
                seg.start,
                seg.free
            );
            seg.free -= width;
        }
        let removed = self.coalesce_boundaries(first, last);
        self.after_mutation(first, last, ins_a || ins_b || removed);
    }

    /// Add `width` processors back over `[start, start + duration)` —
    /// the inverse of [`reserve`](Profile::reserve).
    ///
    /// Panics if that would push any segment above capacity (releasing
    /// something that was never reserved).
    pub fn release(&mut self, start: SimTime, duration: SimSpan, width: u32) {
        if duration.is_zero() || width == 0 {
            return;
        }
        bump(&self.stats.releases, 1);
        let end = start + duration;
        let (first, ins_a) = self.split_at(start);
        let (last, ins_b) = self.split_at(end);
        for pos in first..last {
            let ix = self.order[pos] as usize;
            let seg = &mut self.slab[ix];
            assert!(
                seg.free + width <= self.capacity,
                "release of {width} at {} overflows segment at {} (free {}, capacity {})",
                start,
                seg.start,
                seg.free,
                self.capacity
            );
            seg.free += width;
        }
        let removed = self.coalesce_boundaries(first, last);
        self.after_mutation(first, last, ins_a || ins_b || removed);
    }

    /// True iff `self` and `other` describe the same free-capacity step
    /// function over `[from, ∞)`. Segment *boundaries* may differ (a
    /// differently trimmed past, a redundant boundary below `from`); only
    /// the silhouette the anchor search actually sees matters. This is the
    /// equivalence the cached-running-profile schedulers rely on: their
    /// incrementally maintained profile is `same_future` with a scratch
    /// rebuild at every event (asserted in debug builds), which makes every
    /// `find_anchor`/`fits` answer — and hence every scheduling decision —
    /// identical.
    pub fn same_future(&self, other: &Profile, from: SimTime) -> bool {
        if self.capacity != other.capacity {
            return false;
        }
        // Two step functions are equal over [from, ∞) iff they agree at
        // `from` and at every boundary of either that lies beyond it.
        let boundaries = self
            .order
            .iter()
            .map(|&ix| self.slab[ix as usize].start)
            .chain(other.order.iter().map(|&ix| other.slab[ix as usize].start))
            .filter(|&s| s > from);
        std::iter::once(from)
            .chain(boundaries)
            .all(|t| self.free_at(t) == other.free_at(t))
    }

    /// Drop segment boundaries strictly before `now` (they can never matter
    /// again), keeping the level at `now` intact. Bounds memory on long runs.
    pub fn trim_before(&mut self, now: SimTime) {
        let idx = self.upper_bound(now);
        if idx > 1 {
            self.free_slots.extend_from_slice(&self.order[..idx - 1]);
            let shifted = (self.order.len() - (idx - 1)) * std::mem::size_of::<u32>();
            bump(&self.stats.order_bytes_shifted, shifted as u64);
            self.order.drain(..idx - 1);
            self.generation = next_generation();
            self.tree.rebuild(&self.slab, &self.order);
            bump(&self.stats.tree_rebuilds, 1);
        }
        debug_assert!(self.invariants_ok());
    }

    /// Check structural invariants (used by tests; internal operations
    /// `debug_assert` it): segment ordering/coalescing/bounds, and the
    /// tree's per-node aggregates against a from-scratch rebuild.
    pub fn invariants_ok(&self) -> bool {
        if self.order.is_empty() {
            return false;
        }
        // Order indices must be in-bounds, unique, and disjoint from the
        // free list (a slot cannot be both live and recyclable).
        let mut live = vec![false; self.slab.len()];
        for &ix in &self.order {
            let Some(slot) = live.get_mut(ix as usize) else {
                return false;
            };
            if std::mem::replace(slot, true) {
                return false;
            }
        }
        if self
            .free_slots
            .iter()
            .any(|&ix| self.slab.get(ix as usize).is_none() || live[ix as usize])
        {
            return false;
        }
        for pos in 1..self.order.len() {
            let (a, b) = (self.seg(pos - 1), self.seg(pos));
            if a.start >= b.start || a.free == b.free {
                return false;
            }
        }
        if !(0..self.order.len()).all(|pos| self.seg(pos).free <= self.capacity) {
            return false;
        }
        // Every node aggregate must equal what a rebuild would compute —
        // the incremental update paths may take no shortcuts.
        let mut expect = SegTree::default();
        expect.rebuild(&self.slab, &self.order);
        self.tree == expect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::new(s)
    }
    fn d(s: u64) -> SimSpan {
        SimSpan::new(s)
    }

    #[test]
    fn fresh_profile_is_fully_free() {
        let p = Profile::new(16);
        assert_eq!(p.free_at(t(0)), 16);
        assert_eq!(p.free_at(t(1_000_000)), 16);
        assert!(p.invariants_ok());
        assert_eq!(p.segments().len(), 1);
    }

    #[test]
    fn reserve_carves_a_rectangle() {
        let mut p = Profile::new(10);
        p.reserve(t(100), d(50), 4);
        assert_eq!(p.free_at(t(99)), 10);
        assert_eq!(p.free_at(t(100)), 6);
        assert_eq!(p.free_at(t(149)), 6);
        assert_eq!(p.free_at(t(150)), 10);
        assert!(p.invariants_ok());
    }

    #[test]
    fn overlapping_reservations_stack() {
        let mut p = Profile::new(10);
        p.reserve(t(0), d(100), 4);
        p.reserve(t(50), d(100), 4);
        assert_eq!(p.free_at(t(25)), 6);
        assert_eq!(p.free_at(t(75)), 2);
        assert_eq!(p.free_at(t(125)), 6);
        assert_eq!(p.free_at(t(150)), 10);
    }

    #[test]
    fn release_undoes_reserve() {
        let mut p = Profile::new(8);
        let snapshot = p.clone();
        p.reserve(t(10), d(30), 5);
        p.release(t(10), d(30), 5);
        assert_eq!(p, snapshot);
    }

    #[test]
    fn partial_release_models_early_completion() {
        let mut p = Profile::new(8);
        // Job estimated to run [0, 100) with 4 procs...
        p.reserve(t(0), d(100), 4);
        // ...actually completes at 60: give back [60, 100).
        p.release(t(60), d(40), 4);
        assert_eq!(p.free_at(t(59)), 4);
        assert_eq!(p.free_at(t(60)), 8);
    }

    #[test]
    fn partial_release_coalesces_adjacent_equal_segments() {
        // Regression: releasing the elapsed-tail of a rectangle must merge
        // the restored span with its equal neighbours and never push any
        // segment above capacity.
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 4); // [0,100) at 4 free
        p.reserve(t(0), d(60), 4); // [0,60) at 0 free
                                   // The [0,60) job "ends" at 60 having consumed its whole rectangle;
                                   // the [0,100) job completes early at 60: give back [60,100).
        p.release(t(60), d(40), 4);
        // [60,100) returns to 8 free — the same level as [100,∞), so the
        // boundary at 100 must vanish.
        assert_eq!(
            p.segments(),
            &[
                Segment {
                    start: t(0),
                    free: 0
                },
                Segment {
                    start: t(60),
                    free: 8
                }
            ],
            "adjacent equal segments must coalesce across the released span"
        );
        assert!(p.segments().iter().all(|s| s.free <= p.capacity()));
        assert!(p.invariants_ok());
    }

    #[test]
    #[should_panic(expected = "underflows")]
    fn reserve_panics_on_overcommit() {
        let mut p = Profile::new(4);
        p.reserve(t(0), d(10), 3);
        p.reserve(t(5), d(10), 2);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn release_panics_on_phantom_capacity() {
        let mut p = Profile::new(4);
        p.release(t(0), d(10), 1);
    }

    #[test]
    fn zero_duration_or_width_are_noops() {
        let mut p = Profile::new(4);
        let snapshot = p.clone();
        p.reserve(t(5), d(0), 4);
        p.reserve(t(5), d(10), 0);
        p.release(t(5), d(0), 4);
        assert_eq!(p, snapshot);
    }

    #[test]
    fn find_anchor_on_empty_profile_is_immediate() {
        let p = Profile::new(8);
        assert_eq!(p.find_anchor(t(42), d(1000), 8), t(42));
    }

    #[test]
    fn find_anchor_skips_blocked_interval() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 6); // only 2 free until 100
        assert_eq!(p.find_anchor(t(0), d(10), 2), t(0));
        assert_eq!(p.find_anchor(t(0), d(10), 3), t(100));
    }

    #[test]
    fn find_anchor_needs_contiguous_fit() {
        let mut p = Profile::new(8);
        // Free window [0, 50) of 8, then blocked [50, 100), then free.
        p.reserve(t(50), d(50), 8);
        // A 60-second job cannot use the [0, 50) hole.
        assert_eq!(p.find_anchor(t(0), d(60), 1), t(100));
        // A 50-second job fits exactly in the hole.
        assert_eq!(p.find_anchor(t(0), d(50), 1), t(0));
    }

    #[test]
    fn find_anchor_spans_multiple_segments() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 2); // 6 free on [0, 100)
        p.reserve(t(100), d(100), 4); // 4 free on [100, 200)
                                      // Width 4 for 150 s fits at 0: covered by both segments.
        assert_eq!(p.find_anchor(t(0), d(150), 4), t(0));
        // Width 5 for 150 s: blocked on [100, 200), so anchor is 200.
        assert_eq!(p.find_anchor(t(0), d(150), 5), t(200));
    }

    #[test]
    fn find_anchor_respects_earliest_bound() {
        let p = Profile::new(8);
        assert_eq!(p.find_anchor(t(500), d(10), 1), t(500));
    }

    #[test]
    fn find_anchor_mid_segment_start() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 6);
        // Asking from t=30 for width 2 (fits alongside): anchor 30.
        assert_eq!(p.find_anchor(t(30), d(10), 2), t(30));
        // Width 3 must wait for the reservation to end.
        assert_eq!(p.find_anchor(t(30), d(10), 3), t(100));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn find_anchor_rejects_impossible_width() {
        Profile::new(4).find_anchor(t(0), d(1), 5);
    }

    #[test]
    fn fits_matches_find_anchor() {
        let mut p = Profile::new(8);
        p.reserve(t(10), d(80), 5);
        for &(start, dur, width) in &[
            (0u64, 10u64, 8u32),
            (0, 11, 4),
            (0, 11, 3),
            (10, 80, 3),
            (90, 5, 8),
            (5, 100, 3),
        ] {
            let fits = p.fits(t(start), d(dur), width);
            let anchor = p.find_anchor(t(start), d(dur), width);
            assert_eq!(
                fits,
                anchor == t(start),
                "fits({start},{dur},{width}) = {fits} but anchor = {anchor}"
            );
        }
    }

    #[test]
    fn indexed_and_linear_anchors_agree_on_dense_profile() {
        // A profile long enough to bypass the small-profile cutoff and
        // exercise the tree descents: mixed widths force both the
        // first-feasible establishment and the first-infeasible window
        // verification over many candidates.
        let mut p = Profile::new(64);
        for i in 0..(8 * SMALL as u64) {
            let width = 1 + ((i * 7 + 3) % 60) as u32;
            p.reserve(
                t(i * 10),
                d(10 + (i % 13) * 5),
                width.min(p.free_at(t(i * 10))),
            );
        }
        assert!(
            p.segments().len() > SMALL,
            "want a profile past the tree cutoff"
        );
        for earliest in (0..8 * SMALL as u64 * 10).step_by(53) {
            for &width in &[1u32, 7, 23, 40, 64] {
                for &dur in &[1u64, 50, 400, 5_000] {
                    assert_eq!(
                        p.find_anchor(t(earliest), d(dur), width),
                        p.find_anchor_linear(t(earliest), d(dur), width),
                        "diverged at earliest={earliest} dur={dur} width={width}"
                    );
                }
            }
        }
    }

    #[test]
    fn fits_cache_matches_anchor_scan_on_large_profiles() {
        // Past the SMALL cutoff `fits` answers come from tree descents and
        // the prefix-minima memo; every answer must equal the anchor-scan
        // definition, for shifting left edges and across mutations.
        let mut p = Profile::new(64);
        for i in 0..(8 * SMALL as u64) {
            let width = 1 + ((i * 7 + 3) % 60) as u32;
            p.reserve(
                t(i * 10),
                d(10 + (i % 13) * 5),
                width.min(p.free_at(t(i * 10))),
            );
        }
        assert!(p.segments().len() > SMALL);
        let check = |p: &Profile| {
            for start in (0..8 * SMALL as u64 * 10).step_by(97) {
                for &width in &[1u32, 7, 23, 40, 64] {
                    for &dur in &[1u64, 50, 400, 5_000, 200_000] {
                        let expect = p.find_anchor(t(start), d(dur), width) == t(start);
                        assert_eq!(
                            p.fits(t(start), d(dur), width),
                            expect,
                            "diverged at start={start} dur={dur} width={width}"
                        );
                        // The memoized repeat must agree with the rebuild.
                        assert_eq!(p.fits(t(start), d(dur), width), expect);
                    }
                }
            }
        };
        check(&p);
        // Mutations must invalidate the cache, not leave stale answers.
        let anchor = p.find_anchor(t(35), d(400), 1);
        p.reserve(anchor, d(400), 1);
        p.release(t(1_000), d(200), 1);
        check(&p);
    }

    #[test]
    fn cloned_profiles_never_share_stale_fits_answers() {
        // The memo travels with `clone`; a mutation of either copy draws a
        // process-globally fresh generation, so neither can ever accept
        // the other's (or its own pre-mutation) cached minima.
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 4);
        assert!(p.fits(t(0), d(50), 4)); // warm the memo (4 free on [0,100))
        assert!(p.fits(t(0), d(50), 4)); // second probe memoizes
        let mut q = p.clone();
        q.reserve(t(0), d(50), 4); // q: 0 free on [0,50)
        assert!(!q.fits(t(0), d(50), 1), "stale clone cache accepted");
        assert!(!q.fits(t(0), d(50), 1));
        assert!(p.fits(t(0), d(50), 4), "p's own memo must stay valid");
        p.reserve(t(0), d(50), 4);
        assert!(!p.fits(t(0), d(50), 1), "post-mutation memo accepted");
    }

    #[test]
    fn incremental_updates_and_rebuilds_are_both_exercised() {
        let mut p = Profile::new(16);
        // Fresh boundaries: structural (suffix resync).
        p.reserve(t(100), d(50), 4);
        let s = p.stats();
        assert_eq!(s.tree_rebuilds, 1);
        assert_eq!(s.tree_incremental_updates, 0);
        // Same rectangle again: both boundaries exist, no coalescing
        // (levels on each side differ) — value-only incremental update.
        p.reserve(t(100), d(50), 4);
        let s = p.stats();
        assert_eq!(s.tree_rebuilds, 1);
        assert_eq!(s.tree_incremental_updates, 1);
        assert!(p.invariants_ok());
        // Releasing one layer back: still value-only.
        p.release(t(100), d(50), 4);
        assert_eq!(p.stats().tree_incremental_updates, 2);
        // Releasing the last layer coalesces both boundaries away:
        // structural again.
        p.release(t(100), d(50), 4);
        let s = p.stats();
        assert_eq!(s.tree_rebuilds, 2);
        assert_eq!(p.segments().len(), 1);
        assert!(p.invariants_ok());
    }

    #[test]
    fn stats_count_operations() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 4);
        p.reserve(t(200), d(100), 4);
        p.release(t(50), d(50), 4);
        p.find_anchor(t(0), d(10), 8);
        p.find_anchor(t(0), d(10), 2);
        p.note_compress_pass();
        let s = p.stats();
        assert_eq!(s.reserves, 2);
        assert_eq!(s.releases, 1);
        assert_eq!(s.find_anchor_calls, 2);
        assert_eq!(s.compress_passes, 1);
        assert!(s.segments_visited >= 2, "anchor scans examine segments");
        assert!(s.peak_segments >= 3);
        assert!(s.segments_per_anchor() > 0.0);
        assert!(
            s.tree_incremental_updates + s.tree_rebuilds >= 3,
            "every mutation synchronizes the tree"
        );
        p.reset_stats();
        let s = p.stats();
        assert_eq!(s.find_anchor_calls, 0);
        assert_eq!(s.reserves, 0);
        assert_eq!(s.tree_rebuilds, 0);
        assert_eq!(s.peak_segments, p.segments().len() as u64);
    }

    #[test]
    fn tree_descents_are_counted_past_the_cutoff() {
        let mut p = Profile::new(8);
        for i in 0..(4 * SMALL as u64) {
            p.reserve(t(i * 100), d(50), 1 + (i % 7) as u32);
        }
        assert!(p.segments().len() > SMALL);
        p.reset_stats();
        p.find_anchor(t(0), d(10_000), 8);
        let s = p.stats();
        assert!(s.tree_descents > 0, "tree path must count descents");
        // Every descent touches at least its starting leaf, except a
        // probe past the final segment (which answers from bounds alone).
        assert!(s.tree_nodes_visited + 1 >= s.tree_descents);
        assert!(s.tree_nodes_visited > 0);
        assert!(s.nodes_per_descent() > 0.0);
        assert_eq!(s.segments_visited, 0, "no plain scan past the cutoff");
    }

    #[test]
    fn stats_ignore_noop_calls_and_equality_ignores_stats() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(0), 4); // no-op
        p.release(t(0), d(10), 0); // no-op
        assert_eq!(p.stats().reserves, 0);
        assert_eq!(p.stats().releases, 0);
        let q = Profile::new(8);
        q.find_anchor(t(0), d(5), 1); // probe only q
        assert_eq!(p, q, "probe counters must not affect equality");
    }

    #[test]
    fn stats_absorb_sums_counts_and_maxes_peak() {
        let mut a = ProfileStats {
            find_anchor_calls: 2,
            peak_segments: 5,
            tree_descents: 1,
            ..Default::default()
        };
        let b = ProfileStats {
            find_anchor_calls: 3,
            reserves: 1,
            peak_segments: 9,
            tree_descents: 4,
            tree_nodes_visited: 12,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.find_anchor_calls, 5);
        assert_eq!(a.reserves, 1);
        assert_eq!(a.peak_segments, 9);
        assert_eq!(a.tree_descents, 5);
        assert_eq!(a.tree_nodes_visited, 12);
    }

    #[test]
    fn coalescing_keeps_profile_minimal() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(100), 4);
        p.reserve(t(100), d(100), 4);
        // Same level on both sides of t=100: must be one segment.
        assert_eq!(p.free_at(t(50)), 4);
        assert_eq!(p.free_at(t(150)), 4);
        assert_eq!(
            p.segments().iter().filter(|s| s.free == 4).count(),
            1,
            "adjacent equal segments not coalesced: {:?}",
            p.segments()
        );
    }

    #[test]
    fn trim_before_preserves_future_shape() {
        let mut p = Profile::new(8);
        p.reserve(t(0), d(10), 1);
        p.reserve(t(20), d(10), 2);
        p.reserve(t(40), d(10), 3);
        let f50 = p.free_at(t(50));
        let f45 = p.free_at(t(45));
        p.trim_before(t(45));
        assert_eq!(p.free_at(t(45)), f45);
        assert_eq!(p.free_at(t(50)), f50);
        assert!(p.invariants_ok());
        assert!(p.segments().len() <= 3);
    }

    #[test]
    fn same_future_ignores_past_and_segmentation() {
        let mut a = Profile::new(8);
        a.reserve(t(0), d(10), 3); // past noise
        a.reserve(t(100), d(50), 4);
        let mut b = Profile::new(8);
        b.reserve(t(100), d(50), 4);
        assert!(!a.same_future(&b, t(5)), "pasts differ at t=5");
        assert!(a.same_future(&b, t(10)), "futures agree from t=10");
        b.trim_before(t(120)); // drops the boundary at 100, keeps the level
        assert!(
            a.same_future(&b, t(120)),
            "trimming must not break equality"
        );
        b.reserve(t(130), d(5), 1);
        assert!(!a.same_future(&b, t(120)));
        assert!(!a.same_future(&Profile::new(16), t(0)), "capacity differs");
    }

    #[test]
    fn reserve_before_profile_origin_works() {
        // Anchoring earlier than any existing boundary (possible after
        // trim) must still work.
        let mut p = Profile::new(8);
        p.reserve(t(100), d(10), 2);
        p.trim_before(t(100));
        p.reserve(t(50), d(10), 3);
        assert_eq!(p.free_at(t(55)), 5);
        assert!(p.invariants_ok());
    }
}
