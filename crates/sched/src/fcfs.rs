//! The no-backfill baseline scheduler.
//!
//! Jobs are started strictly in priority order: the head of the queue
//! starts as soon as enough processors are free, and **nothing behind it
//! may jump ahead** — if the head doesn't fit, the machine drains until it
//! does. This is the classic FCFS space-sharing scheduler whose poor
//! utilization motivated backfilling in the first place (Section 2 of the
//! paper); it is the control arm for every backfilling comparison.

use crate::policy::Policy;
use crate::queue::SchedQueue;
use crate::scheduler::{Decisions, JobMeta, Scheduler};
use simcore::{JobId, SimTime};
use std::collections::HashMap;

/// Priority-ordered scheduler without backfilling.
#[derive(Debug, Clone)]
pub struct FcfsScheduler {
    policy: Policy,
    capacity: u32,
    free: u32,
    queue: SchedQueue,
    running: HashMap<JobId, u32>,
}

impl FcfsScheduler {
    /// Create for a machine with `capacity` processors.
    pub fn new(capacity: u32, policy: Policy) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        FcfsScheduler {
            policy,
            capacity,
            free: capacity,
            queue: SchedQueue::new(policy),
            running: HashMap::new(),
        }
    }

    fn reschedule(&mut self, now: SimTime) -> Decisions {
        self.queue.prepare(now);
        let mut starts = Vec::new();
        while let Some(head) = self.queue.front() {
            if head.width > self.free {
                break; // strict: nothing may pass the blocked head
            }
            let head = self.queue.pop_front().expect("front() was Some");
            self.free -= head.width;
            self.running.insert(head.id, head.width);
            starts.push(head.id);
        }
        Decisions::start(starts)
    }
}

impl Scheduler for FcfsScheduler {
    fn name(&self) -> String {
        format!("NoBackfill/{}", self.policy)
    }

    fn on_arrival(&mut self, job: JobMeta, now: SimTime) -> Decisions {
        assert!(job.width <= self.capacity, "{} wider than machine", job.id);
        self.queue.push(job);
        self.reschedule(now)
    }

    fn on_completion(&mut self, id: JobId, now: SimTime) -> Decisions {
        let width = self
            .running
            .remove(&id)
            .expect("completion for unknown job");
        self.free += width;
        self.reschedule(now)
    }

    fn on_wake(&mut self, now: SimTime) -> Decisions {
        self.reschedule(now)
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimSpan;

    fn meta(id: u32, arrival: u64, estimate: u64, width: u32) -> JobMeta {
        JobMeta {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    #[test]
    fn starts_immediately_when_fits() {
        let mut s = FcfsScheduler::new(8, Policy::Fcfs);
        let d = s.on_arrival(meta(0, 0, 100, 4), SimTime::ZERO);
        assert_eq!(d.starts, vec![JobId(0)]);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn blocked_head_blocks_everything_behind_it() {
        let mut s = FcfsScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO);
        // Head needs 4 > 2 free; the 1-wide job behind must NOT start.
        let d = s.on_arrival(meta(1, 1, 100, 4), SimTime::new(1));
        assert!(d.starts.is_empty());
        let d = s.on_arrival(meta(2, 2, 10, 1), SimTime::new(2));
        assert!(
            d.starts.is_empty(),
            "no-backfill scheduler must not backfill"
        );
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn completion_unblocks_in_order() {
        let mut s = FcfsScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 100, 4), SimTime::new(1));
        s.on_arrival(meta(2, 2, 100, 4), SimTime::new(2));
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert_eq!(d.starts, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn sjf_reorders_queue() {
        let mut s = FcfsScheduler::new(8, Policy::Sjf);
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 900, 8), SimTime::new(1));
        s.on_arrival(meta(2, 2, 100, 8), SimTime::new(2));
        let d = s.on_completion(JobId(0), SimTime::new(100));
        // Shorter job 2 starts despite arriving later.
        assert_eq!(d.starts, vec![JobId(2)]);
    }

    #[test]
    fn wake_is_harmless() {
        let mut s = FcfsScheduler::new(8, Policy::Fcfs);
        let d = s.on_wake(SimTime::new(5));
        assert!(d.starts.is_empty());
    }

    #[test]
    fn name_includes_policy() {
        assert_eq!(
            FcfsScheduler::new(4, Policy::XFactor).name(),
            "NoBackfill/XF"
        );
    }

    #[test]
    #[should_panic(expected = "wider than machine")]
    fn rejects_impossible_job() {
        let mut s = FcfsScheduler::new(4, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 10, 5), SimTime::ZERO);
    }
}
