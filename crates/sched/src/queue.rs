//! Incrementally maintained priority queues for the event-loop hot path.
//!
//! Every scheduler keeps its waiting jobs in priority order, and the
//! original implementations re-established that order with a full
//! `Policy::sort` at **every** event — O(n log n) comparisons per arrival,
//! completion and wake-up, with `Policy::xfactor` recomputed inside every
//! single comparison. [`SchedQueue`] replaces that with work proportional
//! to what actually changed:
//!
//! * **Static-key policies** (FCFS, SJF, LJF, WidestFirst): the comparator
//!   ignores `now`, so a job's relative priority never changes while it
//!   waits. The queue stays permanently sorted — each arrival is placed by
//!   binary search ([`SchedQueue::push`]) and [`SchedQueue::prepare`]
//!   becomes a counted no-op. Because the order is *total* (ties break by
//!   arrival then id), the sorted sequence of any job set is unique, so
//!   the incrementally maintained order is exactly what `Policy::sort`
//!   would produce.
//! * **XFactor** is time-dependent (jobs age at different rates), so a
//!   sort per distinct event instant is unavoidable — but the key is a
//!   pure function of `(job, now)`, so it is computed **once per job**
//!   into a cache and the queue is sorted with `sort_unstable_by` over the
//!   cached keys (the total order makes unstable sorting safe). Repeat
//!   events at the same instant reuse the existing order when nothing was
//!   inserted in between.
//!
//! Dequeues come off a `VecDeque`: the schedulers' phase-1 "start from the
//! head while it fits" loop pops in O(1) where `Vec::remove(0)` shifted
//! the whole queue, and mid-queue backfill removals cost
//! O(min(i, n − i)).
//!
//! The maintained order is asserted against `Policy::sort` in debug
//! builds, by the unit tests below, and by the cross-policy property test
//! (`tests/queue_order.rs` in the core crate) that drives arrivals,
//! starts and completions through both representations in lockstep.

use crate::policy::Policy;
use crate::profile::ProfileStats;
use crate::scheduler::JobMeta;
use simcore::SimTime;
use std::cmp::Ordering;
use std::collections::VecDeque;

/// Queue-maintenance counters, the scheduler-level counterpart of
/// [`ProfileStats`]' profile-operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Jobs enqueued (binary-search insertions for static-key policies).
    pub inserts: u64,
    /// Full sorts actually performed (XFactor re-keys once per instant).
    pub sorts: u64,
    /// [`SchedQueue::prepare`] calls that reused the maintained order.
    pub sorts_avoided: u64,
}

impl QueueCounters {
    /// Fold these counters into a [`ProfileStats`] snapshot, the single
    /// aggregate the driver threads into reports and benches.
    pub fn merge_into(&self, stats: &mut ProfileStats) {
        stats.queue_inserts += self.inserts;
        stats.queue_sorts += self.sorts;
        stats.queue_sorts_avoided += self.sorts_avoided;
    }
}

/// A policy-ordered queue of waiting jobs (see the module docs for the
/// incremental-maintenance contract).
///
/// The order observed through [`front`](SchedQueue::front)/indexing is
/// only guaranteed to match `Policy::sort` **after**
/// [`prepare`](SchedQueue::prepare) has been called for the current
/// instant; removals ([`pop_front`](SchedQueue::pop_front),
/// [`remove`](SchedQueue::remove)) preserve it, insertions under XFactor
/// invalidate it until the next `prepare`.
#[derive(Debug, Clone)]
pub struct SchedQueue {
    policy: Policy,
    items: VecDeque<JobMeta>,
    /// Scratch for the XFactor cached-key fallback sort, reused across
    /// events so the per-event allocation disappears once the queue stops
    /// growing.
    scratch: Vec<(f64, JobMeta)>,
    /// Per-instant XFactor keys, index-aligned with `items` (the in-place
    /// repair swaps both in lockstep).
    keys: Vec<f64>,
    /// The instant the queue was last sorted for (XFactor only): a repeat
    /// `prepare` at the same instant with no interleaved insertion reuses
    /// the order (keys are a pure function of `(job, now)`).
    sorted_at: Option<SimTime>,
    counters: QueueCounters,
}

impl SchedQueue {
    /// An empty queue ordered by `policy`.
    pub fn new(policy: Policy) -> Self {
        SchedQueue {
            policy,
            items: VecDeque::new(),
            scratch: Vec::new(),
            keys: Vec::new(),
            sorted_at: None,
            counters: QueueCounters::default(),
        }
    }

    /// The ordering policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate the queue in its current order.
    pub fn iter(&self) -> impl Iterator<Item = &JobMeta> {
        self.items.iter()
    }

    /// Operation counters since creation.
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    /// Enqueue a job. Static-key policies place it directly at its sorted
    /// position (binary search + shift); XFactor appends and defers
    /// ordering to the next [`prepare`](SchedQueue::prepare).
    pub fn push(&mut self, job: JobMeta) {
        self.counters.inserts += 1;
        if self.policy == Policy::XFactor {
            self.items.push_back(job);
            self.sorted_at = None;
        } else {
            // First index whose job orders strictly after the newcomer;
            // `compare` ignores `now` for static-key policies, and the
            // total order (arrival/id tie-breaks) makes the position — and
            // hence the whole sequence — identical to a full sort.
            let idx = self.items.partition_point(|q| {
                self.policy.compare(q, &job, SimTime::ZERO) != Ordering::Greater
            });
            self.items.insert(idx, job);
        }
    }

    /// Establish priority order for the instant `now`. No-op for
    /// static-key policies (the order is maintained by `push`) and for
    /// repeat calls at an unchanged instant; otherwise one cached-key sort.
    pub fn prepare(&mut self, now: SimTime) {
        if self.policy != Policy::XFactor || self.sorted_at == Some(now) {
            self.counters.sorts_avoided += 1;
            debug_assert!(self.is_sorted(now), "maintained queue order diverged");
            return;
        }
        // Fresh keys for the current instant, aligned with `items` and kept
        // aligned through every swap below.
        self.keys.clear();
        self.keys
            .extend(self.items.iter().map(|j| Policy::xfactor(j, now)));

        // A pair of waiting jobs swaps XFactor rank at most once (their
        // keys are lines in `now`, crossing at one instant), and a fresh
        // arrival's key is the global minimum 1.0, so it is appended
        // already in place. The order from the previous event is therefore
        // almost sorted, and an in-place insertion sort repairs it in
        // O(n + inversions) — no scratch copy, no writeback — instead of
        // the full O(n log n) cached-key sort. Exactly `Policy::compare`'s
        // XFactor branch (key looked up, not recomputed per comparison);
        // the order is total, so any correct sort yields the same unique
        // sequence as the stable `Policy::sort`.
        let n = self.items.len();
        let budget = 8 * n + 64;
        let mut swaps = 0usize;
        let mut repaired = true;
        'repair: for i in 1..n {
            let mut j = i;
            while j > 0 {
                let o = self.keys[j]
                    .total_cmp(&self.keys[j - 1])
                    .then_with(|| self.items[j - 1].arrival.cmp(&self.items[j].arrival))
                    .then_with(|| self.items[j - 1].id.cmp(&self.items[j].id));
                if o != Ordering::Greater {
                    break;
                }
                self.items.swap(j - 1, j);
                self.keys.swap(j - 1, j);
                swaps += 1;
                if swaps > budget {
                    repaired = false;
                    break 'repair;
                }
                j -= 1;
            }
        }
        if !repaired {
            // Heavy churn: fall back to the full cached-key sort. `keys`
            // stayed aligned with `items` through the partial repair.
            self.scratch.clear();
            self.scratch
                .extend(self.keys.iter().copied().zip(self.items.iter().copied()));
            self.scratch.sort_unstable_by(|a, b| {
                b.0.total_cmp(&a.0)
                    .then_with(|| a.1.arrival.cmp(&b.1.arrival))
                    .then_with(|| a.1.id.cmp(&b.1.id))
            });
            for (slot, &(_, job)) in self.items.iter_mut().zip(&self.scratch) {
                *slot = job;
            }
        }
        self.sorted_at = Some(now);
        self.counters.sorts += 1;
    }

    /// The highest-priority job, if any (order as of the last `prepare`).
    pub fn front(&self) -> Option<&JobMeta> {
        self.items.front()
    }

    /// Dequeue the highest-priority job in O(1).
    pub fn pop_front(&mut self) -> Option<JobMeta> {
        self.items.pop_front()
    }

    /// Remove and return the job at `index`, preserving the order of the
    /// rest (a backfill pick from the middle of the queue).
    pub fn remove(&mut self, index: usize) -> JobMeta {
        self.items.remove(index).expect("queue index out of bounds")
    }

    /// The queue as a plain vector in its current order (tests and
    /// differential references).
    pub fn to_vec(&self) -> Vec<JobMeta> {
        self.items.iter().copied().collect()
    }

    fn is_sorted(&self, now: SimTime) -> bool {
        self.items
            .iter()
            .zip(self.items.iter().skip(1))
            .all(|(a, b)| self.policy.compare(a, b, now) != Ordering::Greater)
    }
}

impl std::ops::Index<usize> for SchedQueue {
    type Output = JobMeta;

    fn index(&self, index: usize) -> &JobMeta {
        &self.items[index]
    }
}

/// Sort reservation-like entries into `Policy` priority order at `now`,
/// computing each XFactor key **once per entry** instead of once per
/// comparison (the conservative and selective schedulers sort their
/// reservation queues only on compression passes, where appended arrivals
/// rule out incremental maintenance). Exactly equivalent to
/// `sort_by(Policy::compare)`: the cached keys equal the recomputed ones,
/// and the total order makes the unstable sort's result unique.
pub fn sort_keyed<T: Copy>(
    items: &mut [T],
    policy: Policy,
    now: SimTime,
    meta: impl Fn(&T) -> JobMeta,
) {
    sort_keyed_with(items, policy, now, &mut Vec::new(), meta);
}

/// [`sort_keyed`] with a caller-owned scratch buffer for the keyed copy,
/// so a scheduler that compresses on every early completion pays the
/// key-buffer allocation once instead of per pass. The scratch is cleared
/// on entry; its contents never affect the order.
pub fn sort_keyed_with<T: Copy>(
    items: &mut [T],
    policy: Policy,
    now: SimTime,
    scratch: &mut Vec<(f64, T)>,
    meta: impl Fn(&T) -> JobMeta,
) {
    if policy != Policy::XFactor {
        items.sort_by(|a, b| policy.compare(&meta(a), &meta(b), now));
        return;
    }
    scratch.clear();
    scratch.extend(items.iter().map(|t| (Policy::xfactor(&meta(t), now), *t)));
    scratch.sort_unstable_by(|a, b| {
        let (ma, mb) = (meta(&a.1), meta(&b.1));
        b.0.total_cmp(&a.0)
            .then_with(|| ma.arrival.cmp(&mb.arrival))
            .then_with(|| ma.id.cmp(&mb.id))
    });
    for (slot, &(_, t)) in items.iter_mut().zip(scratch.iter()) {
        *slot = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{JobId, SimSpan};

    const ALL: [Policy; 5] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::XFactor,
        Policy::Ljf,
        Policy::WidestFirst,
    ];

    fn meta(id: u32, arrival: u64, estimate: u64, width: u32) -> JobMeta {
        JobMeta {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    fn jobs() -> Vec<JobMeta> {
        vec![
            meta(0, 0, 500, 8),
            meta(1, 5, 100, 2),
            meta(2, 5, 100, 2), // id tie-break with 1
            meta(3, 9, 7_000, 64),
            meta(4, 12, 1, 1),
            meta(5, 40, 100, 16),
        ]
    }

    #[test]
    fn maintained_order_matches_policy_sort_under_churn() {
        for policy in ALL {
            let mut q = SchedQueue::new(policy);
            let mut reference: Vec<JobMeta> = Vec::new();
            let mut now = SimTime::ZERO;
            for (step, job) in jobs().into_iter().enumerate() {
                now = job.arrival;
                q.push(job);
                reference.push(job);
                q.prepare(now);
                policy.sort(&mut reference, now);
                assert_eq!(q.to_vec(), reference, "{policy} diverged at step {step}");
                // Churn: pop the head every other step, like phase-1 starts.
                if step % 2 == 1 {
                    let popped = q.pop_front().unwrap();
                    assert_eq!(popped, reference.remove(0), "{policy} popped wrong head");
                }
            }
            // Later instant: re-prepare must match a fresh sort.
            now += SimSpan::new(10_000);
            q.prepare(now);
            policy.sort(&mut reference, now);
            assert_eq!(q.to_vec(), reference, "{policy} diverged after aging");
        }
    }

    #[test]
    fn mid_queue_removal_preserves_order() {
        for policy in ALL {
            let mut q = SchedQueue::new(policy);
            for job in jobs() {
                q.push(job);
            }
            let now = SimTime::new(100);
            q.prepare(now);
            let mut reference = q.to_vec();
            let removed = q.remove(2);
            assert_eq!(removed, reference.remove(2));
            assert_eq!(q.to_vec(), reference, "{policy} reordered on removal");
            assert_eq!(q.len(), 5);
            assert_eq!(q.front(), reference.first());
        }
    }

    #[test]
    fn static_policies_never_sort_and_xfactor_reuses_same_instant_order() {
        let mut q = SchedQueue::new(Policy::Sjf);
        for job in jobs() {
            q.push(job);
            q.prepare(SimTime::new(50));
        }
        let c = q.counters();
        assert_eq!(c.inserts, 6);
        assert_eq!(c.sorts, 0, "static-key policies must never sort");
        assert_eq!(c.sorts_avoided, 6);

        let mut q = SchedQueue::new(Policy::XFactor);
        for job in jobs() {
            q.push(job);
        }
        q.prepare(SimTime::new(50));
        q.pop_front(); // removals keep the order valid...
        q.prepare(SimTime::new(50)); // ...so the same instant re-sorts nothing
        q.prepare(SimTime::new(60)); // a new instant re-keys
        q.push(meta(9, 60, 10, 1)); // an insertion invalidates even the same instant
        q.prepare(SimTime::new(60));
        let c = q.counters();
        assert_eq!(c.sorts, 3);
        assert_eq!(c.sorts_avoided, 1);
    }

    #[test]
    fn counters_fold_into_profile_stats() {
        let mut stats = ProfileStats {
            queue_inserts: 5,
            ..Default::default()
        };
        QueueCounters {
            inserts: 2,
            sorts: 3,
            sorts_avoided: 4,
        }
        .merge_into(&mut stats);
        assert_eq!(stats.queue_inserts, 7);
        assert_eq!(stats.queue_sorts, 3);
        assert_eq!(stats.queue_sorts_avoided, 4);
    }

    #[test]
    fn sort_keyed_matches_policy_compare_sort() {
        #[derive(Debug, Clone, Copy, PartialEq)]
        struct Entry {
            meta: JobMeta,
            payload: u64,
        }
        for policy in ALL {
            for now_s in [0u64, 40, 5_000] {
                let now = SimTime::new(now_s);
                let mut entries: Vec<Entry> = jobs()
                    .into_iter()
                    .map(|m| Entry {
                        meta: m,
                        payload: m.id.0 as u64 * 31,
                    })
                    .collect();
                let mut reference = entries.clone();
                sort_keyed(&mut entries, policy, now, |e| e.meta);
                reference.sort_by(|a, b| policy.compare(&a.meta, &b.meta, now));
                assert_eq!(entries, reference, "{policy} diverged at now={now_s}");
            }
        }
    }

    #[test]
    fn empty_queue_is_well_behaved() {
        let mut q = SchedQueue::new(Policy::XFactor);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.front(), None);
        assert_eq!(q.pop_front(), None);
        q.prepare(SimTime::ZERO);
        assert_eq!(q.to_vec(), Vec::new());
    }
}
