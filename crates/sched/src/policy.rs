//! Queue-priority policies.
//!
//! Backfilling schedulers keep a queue of waiting jobs; the *priority
//! policy* decides the order in which queued jobs are considered — who is
//! "head of the queue" (and so gets the reservation under EASY), and who
//! gets first pick of backfill holes. The paper studies three:
//!
//! * **FCFS** — priority is wait time: strict arrival order.
//! * **SJF** — Shortest Job First: priority is inversely proportional to
//!   the *estimated* runtime.
//! * **XFactor** — expansion factor: priority is
//!   `(wait + estimated runtime) / estimated runtime`, which starts at 1
//!   and grows fastest for short jobs, giving them an SJF-like boost while
//!   still aging long waiters toward the front.
//!
//! Two auxiliary policies (LJF and Widest-First) are included for ablation
//! studies. All orderings are total: ties break by arrival time and then
//! job id, so schedules are deterministic.

use crate::scheduler::JobMeta;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::cmp::Ordering;

/// A queue-priority policy.
///
/// ```
/// use sched::{JobMeta, Policy};
/// use simcore::{JobId, SimSpan, SimTime};
///
/// let long = JobMeta { id: JobId(0), arrival: SimTime::ZERO,
///                      estimate: SimSpan::from_hours(10), width: 4 };
/// let short = JobMeta { id: JobId(1), arrival: SimTime::new(30),
///                       estimate: SimSpan::from_mins(5), width: 4 };
/// let mut queue = vec![long, short];
/// Policy::Sjf.sort(&mut queue, SimTime::new(60));
/// assert_eq!(queue[0].id, JobId(1), "shortest estimated job first");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// First-Come First-Served: order by arrival.
    Fcfs,
    /// Shortest (estimated) Job First.
    Sjf,
    /// Expansion-factor priority (highest xfactor first).
    XFactor,
    /// Longest (estimated) Job First — ablation.
    Ljf,
    /// Widest job first — ablation.
    WidestFirst,
}

impl Policy {
    /// The three policies the paper evaluates.
    pub const PAPER: [Policy; 3] = [Policy::Fcfs, Policy::Sjf, Policy::XFactor];

    /// Short display label, matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fcfs => "FCFS",
            Policy::Sjf => "SJF",
            Policy::XFactor => "XF",
            Policy::Ljf => "LJF",
            Policy::WidestFirst => "WIDEST",
        }
    }

    /// The expansion factor of a job at `now`:
    /// `(wait + estimate) / estimate ≥ 1`.
    pub fn xfactor(job: &JobMeta, now: SimTime) -> f64 {
        let wait = now.since(job.arrival).as_secs_f64();
        let est = job.estimate.as_secs().max(1) as f64;
        (wait + est) / est
    }

    /// Compare two queued jobs at time `now`; `Less` means `a` has higher
    /// priority (comes first). Total order for any fixed `now`.
    pub fn compare(self, a: &JobMeta, b: &JobMeta, now: SimTime) -> Ordering {
        let primary = match self {
            Policy::Fcfs => Ordering::Equal, // arrival tie-break decides
            Policy::Sjf => a.estimate.cmp(&b.estimate),
            Policy::XFactor => Self::xfactor(b, now).total_cmp(&Self::xfactor(a, now)),
            Policy::Ljf => b.estimate.cmp(&a.estimate),
            Policy::WidestFirst => b.width.cmp(&a.width),
        };
        primary
            .then(a.arrival.cmp(&b.arrival))
            .then(a.id.cmp(&b.id))
    }

    /// Sort a queue into priority order (highest priority first) at `now`.
    pub fn sort(self, queue: &mut [JobMeta], now: SimTime) {
        queue.sort_by(|a, b| self.compare(a, b, now));
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{JobId, SimSpan};

    fn meta(id: u32, arrival: u64, estimate: u64, width: u32) -> JobMeta {
        JobMeta {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let mut q = vec![meta(1, 50, 10, 1), meta(2, 10, 9999, 1), meta(3, 30, 1, 1)];
        Policy::Fcfs.sort(&mut q, SimTime::new(100));
        let ids: Vec<u32> = q.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn sjf_orders_by_estimate() {
        let mut q = vec![meta(1, 0, 500, 1), meta(2, 10, 100, 1), meta(3, 20, 300, 1)];
        Policy::Sjf.sort(&mut q, SimTime::new(100));
        let ids: Vec<u32> = q.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn sjf_ties_break_by_arrival() {
        let mut q = vec![meta(2, 20, 100, 1), meta(1, 10, 100, 1)];
        Policy::Sjf.sort(&mut q, SimTime::new(100));
        assert_eq!(q[0].id.0, 1);
    }

    #[test]
    fn xfactor_value_is_one_at_arrival_and_grows() {
        let j = meta(1, 100, 1000, 1);
        assert!((Policy::xfactor(&j, SimTime::new(100)) - 1.0).abs() < 1e-12);
        assert!((Policy::xfactor(&j, SimTime::new(1100)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn xfactor_rises_faster_for_short_jobs() {
        let short = meta(1, 0, 100, 1);
        let long = meta(2, 0, 10_000, 1);
        let now = SimTime::new(500);
        assert!(Policy::xfactor(&short, now) > Policy::xfactor(&long, now));
        let mut q = vec![long, short];
        Policy::XFactor.sort(&mut q, now);
        assert_eq!(q[0].id.0, 1, "short job should lead under XF");
    }

    #[test]
    fn xfactor_equal_jobs_tie_break_by_arrival_then_id() {
        // Same estimate, same arrival: id decides.
        let mut q = vec![meta(5, 0, 100, 1), meta(3, 0, 100, 1)];
        Policy::XFactor.sort(&mut q, SimTime::new(50));
        assert_eq!(q[0].id.0, 3);
    }

    #[test]
    fn xfactor_guards_zero_estimate() {
        let j = meta(1, 0, 0, 1);
        let x = Policy::xfactor(&j, SimTime::new(10));
        assert!(x.is_finite());
        assert!((x - 11.0).abs() < 1e-12); // (10 + 1) / 1
    }

    #[test]
    fn ljf_is_reverse_of_sjf() {
        let mut a = vec![meta(1, 0, 500, 1), meta(2, 0, 100, 1)];
        let mut b = a.clone();
        Policy::Sjf.sort(&mut a, SimTime::ZERO);
        Policy::Ljf.sort(&mut b, SimTime::ZERO);
        assert_eq!(a[0].id, b[1].id);
        assert_eq!(a[1].id, b[0].id);
    }

    #[test]
    fn widest_first_orders_by_width() {
        let mut q = vec![meta(1, 0, 10, 4), meta(2, 0, 10, 64), meta(3, 0, 10, 16)];
        Policy::WidestFirst.sort(&mut q, SimTime::ZERO);
        let widths: Vec<u32> = q.iter().map(|j| j.width).collect();
        assert_eq!(widths, vec![64, 16, 4]);
    }

    #[test]
    fn ordering_is_total_and_antisymmetric() {
        let now = SimTime::new(123);
        let jobs = vec![
            meta(1, 0, 50, 2),
            meta(2, 5, 50, 2),
            meta(3, 5, 70, 1),
            meta(4, 9, 10, 8),
        ];
        for p in [
            Policy::Fcfs,
            Policy::Sjf,
            Policy::XFactor,
            Policy::Ljf,
            Policy::WidestFirst,
        ] {
            for a in &jobs {
                assert_eq!(p.compare(a, a, now), Ordering::Equal);
                for b in &jobs {
                    let ab = p.compare(a, b, now);
                    let ba = p.compare(b, a, now);
                    assert_eq!(ab, ba.reverse(), "{p}: not antisymmetric");
                    if a.id != b.id {
                        assert_ne!(ab, Ordering::Equal, "{p}: distinct jobs compared equal");
                    }
                }
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Policy::Fcfs.to_string(), "FCFS");
        assert_eq!(Policy::Sjf.to_string(), "SJF");
        assert_eq!(Policy::XFactor.to_string(), "XF");
        assert_eq!(Policy::PAPER.len(), 3);
    }
}
