//! # sched — parallel job scheduling policies
//!
//! The paper's subject matter: queue-priority policies and backfilling
//! strategies for space-shared parallel machines.
//!
//! * [`profile`] — the availability profile (the "2D chart"): the core
//!   data structure every backfilling scheduler manipulates;
//! * [`policy`] — FCFS / SJF / XFactor queue priorities (plus ablations);
//! * [`scheduler`] — the event-driven [`Scheduler`] interface;
//! * [`fcfs`] — the no-backfill baseline;
//! * [`conservative`] — reservation-per-job backfilling with priority-
//!   ordered compression on early completions;
//! * [`easy`] — aggressive (EASY) backfilling with a single pivot
//!   reservation;
//! * [`selective`] — the paper's proposed middle ground: reservations only
//!   for jobs whose expansion factor crosses a threshold;
//! * [`slack`] — slack-based backfilling (Talby & Feitelson), the paper's
//!   reference \[13\]: every job holds a promise with built-in slack;
//! * [`depth`] — reservation-depth backfilling: protect the top *k* queued
//!   jobs, the EASY↔conservative continuum of Chiang et al.;
//! * [`preemptive`] — EASY with selective preemption of running jobs (the
//!   authors' companion strategy, their reference \[6\]);
//! * [`queue`] — incrementally maintained priority queues shared by the
//!   schedulers' event-loop hot paths.

#![warn(missing_docs)]

pub mod conservative;
pub mod depth;
pub mod easy;
pub mod fcfs;
pub mod policy;
pub mod preemptive;
pub mod profile;
pub mod queue;
pub mod scheduler;
pub mod selective;
pub mod slack;

pub use conservative::{Compression, ConservativeScheduler};
pub use depth::DepthScheduler;
pub use easy::EasyScheduler;
pub use fcfs::FcfsScheduler;
pub use policy::Policy;
pub use preemptive::PreemptiveScheduler;
pub use profile::{Profile, ProfileStats, Segment};
pub use queue::{sort_keyed, QueueCounters, SchedQueue};
pub use scheduler::{Decisions, JobMeta, Scheduler};
pub use selective::SelectiveScheduler;
pub use slack::{SlackPolicy, SlackScheduler};
