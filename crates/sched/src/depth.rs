//! Reservation-depth backfilling — the continuum between EASY and
//! conservative.
//!
//! EASY protects exactly one queued job (the pivot); conservative protects
//! all of them. Chiang, Arpaci-Dusseau & Vernon's re-evaluation of
//! reservation policies studies the natural generalization: protect the
//! **top `k` jobs of the priority queue** with reservations and let
//! everything else backfill around them. `k = 1` reproduces EASY's
//! semantics; large `k` approaches conservative's (without its
//! arrival-order guarantee handout).
//!
//! Reservations here are *recomputed from scratch at every event* in
//! priority order — the "dynamic reservations" style — so this scheduler
//! also serves as the re-planning counterpart to the conservative
//! scheduler's persistent-guarantee bookkeeping.

use crate::policy::Policy;
use crate::profile::{Profile, ProfileStats};
use crate::queue::SchedQueue;
use crate::scheduler::{Decisions, JobMeta, Scheduler};
use simcore::{JobId, SimTime};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Running {
    width: u32,
    est_end: SimTime,
}

/// Depth-`k` reservation backfilling scheduler.
#[derive(Debug, Clone)]
pub struct DepthScheduler {
    policy: Policy,
    depth: usize,
    capacity: u32,
    free: u32,
    queue: SchedQueue,
    running: HashMap<JobId, Running>,
    /// Mirror of the running set's remaining estimated occupancy, updated
    /// on every start and completion instead of rebuilt per event.
    cached: Profile,
    /// Accumulated counters from the throwaway per-event profiles.
    stats: ProfileStats,
}

impl DepthScheduler {
    /// Create for a machine with `capacity` processors, protecting the top
    /// `depth` queued jobs (`depth >= 1`).
    pub fn new(capacity: u32, policy: Policy, depth: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(depth >= 1, "reservation depth must be at least 1");
        DepthScheduler {
            policy,
            depth,
            capacity,
            free: capacity,
            queue: SchedQueue::new(policy),
            running: HashMap::new(),
            cached: Profile::new(capacity),
            stats: ProfileStats::default(),
        }
    }

    fn start(&mut self, job: JobMeta, now: SimTime, starts: &mut Vec<JobId>) {
        debug_assert!(job.width <= self.free);
        self.free -= job.width;
        self.cached.reserve(now, job.estimate, job.width);
        self.running.insert(
            job.id,
            Running {
                width: job.width,
                est_end: now + job.estimate,
            },
        );
        starts.push(job.id);
    }

    /// From-scratch rebuild: the differential reference for `cached`.
    #[cfg(debug_assertions)]
    fn rebuilt_running_profile(&self, now: SimTime) -> Profile {
        let mut p = Profile::new(self.capacity);
        for run in self.running.values() {
            if run.est_end > now {
                p.reserve(now, run.est_end.since(now), run.width);
            }
        }
        p
    }

    fn reschedule(&mut self, now: SimTime) -> Decisions {
        let mut starts = Vec::new();
        self.cached.trim_before(now);
        self.queue.prepare(now);

        // Phase 1: start from the head while it fits (identical to EASY).
        while let Some(head) = self.queue.front() {
            if head.width > self.free {
                break;
            }
            let head = self.queue.pop_front().expect("front() was Some");
            self.start(head, now, &mut starts);
        }
        if self.queue.is_empty() {
            return Decisions::start(starts);
        }

        // Phase 2: the top `depth` blocked jobs receive reservations, in
        // priority order, each at its earliest anchor given the running
        // jobs and the reservations placed before it.
        #[cfg(debug_assertions)]
        {
            self.stats.profile_rebuilds += 1;
            debug_assert!(
                self.cached
                    .same_future(&self.rebuilt_running_profile(now), now),
                "cached running profile diverged from rebuild at {now}"
            );
        }
        self.stats.profile_rebuilds_avoided += 1;
        let mut profile = self.cached.clone();
        profile.reset_stats();
        let protected = self.depth.min(self.queue.len());
        for job in self.queue.iter().take(protected) {
            let anchor = profile.find_anchor(now, job.estimate, job.width);
            profile.reserve(anchor, job.estimate, job.width);
        }

        // Phase 3: the rest may backfill iff their rectangle fits *now*
        // without touching any reservation.
        let mut i = protected;
        while i < self.queue.len() {
            let cand = self.queue[i];
            if cand.width <= self.free && profile.fits(now, cand.estimate, cand.width) {
                profile.reserve(now, cand.estimate, cand.width);
                self.queue.remove(i);
                self.start(cand, now, &mut starts);
            } else {
                i += 1;
            }
        }
        self.stats.compress_passes += 1; // one replanning pass per event
        self.stats.absorb(&profile.stats());
        Decisions::start(starts)
    }
}

impl Scheduler for DepthScheduler {
    fn name(&self) -> String {
        format!("Depth({})/{}", self.depth, self.policy)
    }

    fn on_arrival(&mut self, job: JobMeta, now: SimTime) -> Decisions {
        assert!(job.width <= self.capacity, "{} wider than machine", job.id);
        self.queue.push(job);
        self.reschedule(now)
    }

    fn on_completion(&mut self, id: JobId, now: SimTime) -> Decisions {
        let run = self
            .running
            .remove(&id)
            .expect("completion for unknown job");
        self.free += run.width;
        if run.est_end > now {
            self.cached.release(now, run.est_end.since(now), run.width);
        }
        self.reschedule(now)
    }

    fn on_wake(&mut self, now: SimTime) -> Decisions {
        self.reschedule(now)
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn profile_stats(&self) -> Option<ProfileStats> {
        let mut stats = self.stats;
        stats.absorb(&self.cached.stats());
        self.queue.counters().merge_into(&mut stats);
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::easy::EasyScheduler;
    use simcore::SimSpan;

    fn meta(id: u32, arrival: u64, estimate: u64, width: u32) -> JobMeta {
        JobMeta {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    /// Feed the same event sequence to two schedulers; assert identical
    /// decisions throughout.
    fn lockstep(mut a: impl Scheduler, mut b: impl Scheduler) {
        let script: Vec<(u64, JobMeta)> = vec![
            (0, meta(0, 0, 100, 6)),
            (1, meta(1, 1, 500, 8)),
            (2, meta(2, 2, 90, 2)),
            (3, meta(3, 3, 200, 2)),
            (5, meta(4, 5, 50, 1)),
        ];
        let mut running: Vec<(u64, JobId)> = Vec::new(); // (end, id) by estimate
        for (t, job) in script {
            let now = SimTime::new(t);
            let da = a.on_arrival(job, now);
            let db = b.on_arrival(job, now);
            assert_eq!(da.starts, db.starts, "diverged at arrival t={t}");
            for &id in &da.starts {
                running.push((t + job.estimate.as_secs(), id));
            }
        }
        running.sort();
        while let Some((t, id)) = running.first().copied() {
            running.remove(0);
            let now = SimTime::new(t);
            let da = a.on_completion(id, now);
            let db = b.on_completion(id, now);
            assert_eq!(da.starts, db.starts, "diverged at completion t={t}");
            for &sid in &da.starts {
                // Estimates equal runtimes in this script; look the job up
                // by replaying is overkill — starts always happen at `now`
                // and the script's estimates are known by id.
                let est = [100, 500, 90, 200, 50][sid.0 as usize];
                running.push((t + est, sid));
            }
            running.sort();
        }
    }

    #[test]
    fn depth_one_matches_easy_decision_for_decision() {
        lockstep(
            DepthScheduler::new(8, Policy::Fcfs, 1),
            EasyScheduler::new(8, Policy::Fcfs),
        );
    }

    #[test]
    fn deeper_reservations_block_more_backfill() {
        // Running: 6-wide until 100. Queue: 6-wide pivot (anchor 100,
        // 2 spare procs) then 8-wide second (anchor 200). A 2-wide 250 s
        // candidate runs [3, 253): it rides the pivot's spare processors
        // (harmless at depth 1) but overlaps the 8-wide reservation at
        // [200, 253) — exactly what depth 2 must refuse.
        let setup = |depth| {
            let mut s = DepthScheduler::new(8, Policy::Fcfs, depth);
            s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO); // running [0,100)
            s.on_arrival(meta(1, 1, 100, 6), SimTime::new(1)); // anchor 100, spare 2
            s.on_arrival(meta(2, 2, 100, 8), SimTime::new(2)); // anchor 200
            s
        };
        let mut d1 = setup(1);
        let got = d1.on_arrival(meta(3, 3, 250, 2), SimTime::new(3));
        assert_eq!(
            got.starts,
            vec![JobId(3)],
            "depth 1 should admit (only pivot protected)"
        );

        let mut d2 = setup(2);
        let got = d2.on_arrival(meta(3, 3, 250, 2), SimTime::new(3));
        assert!(
            got.starts.is_empty(),
            "depth 2 must protect the second reservation"
        );
    }

    #[test]
    fn large_depth_protects_everyone() {
        let mut s = DepthScheduler::new(8, Policy::Fcfs, usize::MAX);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 50, 8), SimTime::new(1));
        // Like conservative: a 200 s 2-wide job would delay job 1 -> refused.
        let d = s.on_arrival(meta(2, 2, 200, 2), SimTime::new(2));
        assert!(d.starts.is_empty());
    }

    #[test]
    fn name_reports_depth() {
        assert_eq!(
            DepthScheduler::new(4, Policy::Sjf, 3).name(),
            "Depth(3)/SJF"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_depth() {
        DepthScheduler::new(4, Policy::Fcfs, 0);
    }
}
