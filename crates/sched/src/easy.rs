//! Aggressive (EASY) backfilling.
//!
//! Only **one** job holds a reservation at any time: the job at the head of
//! the priority queue (the *pivot*). Everything else may leap ahead, as
//! long as starting it now does not delay the pivot's reservation — the
//! classic EASY rule from the ANL/IBM SP scheduler (Lifka 1995), evaluated
//! by Mu'alem & Feitelson and by this paper under FCFS, SJF and XFactor
//! queue priorities.
//!
//! Mechanically, at every arrival and completion the scheduler:
//! 1. establishes priority order via the incrementally maintained
//!    [`SchedQueue`] (static-key policies stay permanently sorted; XFactor
//!    re-keys once per distinct event instant);
//! 2. starts jobs from the head while they fit in the free processors;
//! 3. gives the first job that does not fit (the pivot) a reservation at
//!    the earliest anchor in the profile of running jobs;
//! 4. scans the rest of the queue in priority order and starts any job
//!    that fits *now* without overlapping the pivot's rectangle.
//!
//! Step 4's check is exact, not the two-condition shortcut: a candidate
//! backfills iff its own rectangle fits at `now` in the profile that
//! already contains the running jobs, the pivot's reservation, and the
//! backfills accepted earlier in this pass.

use crate::policy::Policy;
use crate::profile::{Profile, ProfileStats};
use crate::queue::SchedQueue;
use crate::scheduler::{Decisions, JobMeta, Scheduler};
use obs::trace::{SharedRecorder, TraceKind};
use simcore::{JobId, SimTime};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Running {
    width: u32,
    est_end: SimTime,
}

/// EASY / aggressive backfilling scheduler.
#[derive(Debug, Clone)]
pub struct EasyScheduler {
    policy: Policy,
    capacity: u32,
    free: u32,
    queue: SchedQueue,
    running: HashMap<JobId, Running>,
    /// Mirror of the running set's remaining estimated occupancy, updated
    /// on every start and completion instead of rebuilt per event. The
    /// rebuild stays as a debug-mode differential reference.
    cached: Profile,
    /// Accumulated counters from the throwaway per-event profiles.
    stats: ProfileStats,
    /// Opt-in decision-trace recorder (strictly observational).
    recorder: Option<SharedRecorder>,
    /// Opt-in per-phase profiling accumulator (strictly observational).
    phases: Option<obs::SharedPhases>,
    /// The last `(pivot, anchor)` pair recorded, so the trace carries one
    /// `Reserve` per distinct pivot reservation instead of one per event.
    last_pivot: Option<(JobId, SimTime)>,
    /// Recycled `starts` buffer from the previous event's [`Decisions`]
    /// (handed back by the driver via [`Scheduler::recycle`]).
    starts_scratch: Vec<JobId>,
}

impl EasyScheduler {
    /// Create for a machine with `capacity` processors.
    pub fn new(capacity: u32, policy: Policy) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        EasyScheduler {
            policy,
            capacity,
            free: capacity,
            queue: SchedQueue::new(policy),
            running: HashMap::new(),
            cached: Profile::new(capacity),
            stats: ProfileStats::default(),
            recorder: None,
            phases: None,
            last_pivot: None,
            starts_scratch: Vec::new(),
        }
    }

    fn start(&mut self, job: JobMeta, now: SimTime, starts: &mut Vec<JobId>) {
        debug_assert!(job.width <= self.free);
        self.free -= job.width;
        self.cached.reserve(now, job.estimate, job.width);
        self.running.insert(
            job.id,
            Running {
                width: job.width,
                est_end: now + job.estimate,
            },
        );
        starts.push(job.id);
    }

    /// Profile of the *running* jobs' remaining estimated occupancy,
    /// rebuilt from scratch: the differential reference for `cached`.
    #[cfg(debug_assertions)]
    fn rebuilt_running_profile(&self, now: SimTime) -> Profile {
        let mut p = Profile::new(self.capacity);
        for run in self.running.values() {
            if run.est_end > now {
                p.reserve(now, run.est_end.since(now), run.width);
            }
            // A job past its estimate (impossible here, since estimates
            // bound runtimes) would simply not constrain the future.
        }
        p
    }

    fn reschedule(&mut self, now: SimTime) -> Decisions {
        let mut starts = std::mem::take(&mut self.starts_scratch);
        debug_assert!(starts.is_empty());
        if starts.capacity() > 0 {
            self.stats.scratch_reuses += 1;
        }
        self.cached.trim_before(now);
        self.queue.prepare(now);

        // Phase 1: start from the head while it fits.
        while let Some(head) = self.queue.front() {
            if head.width > self.free {
                break;
            }
            let head = self.queue.pop_front().expect("front() was Some");
            self.start(head, now, &mut starts);
        }
        if self.queue.is_empty() {
            return Decisions::start(starts);
        }
        self.stats.compress_passes += 1; // one backfill pass per event

        // Phase 2: the blocked head becomes the pivot and gets the unique
        // reservation.
        let pivot = self.queue[0];
        #[cfg(debug_assertions)]
        {
            self.stats.profile_rebuilds += 1;
            debug_assert!(
                self.cached
                    .same_future(&self.rebuilt_running_profile(now), now),
                "cached running profile diverged from rebuild at {now}"
            );
        }
        self.stats.profile_rebuilds_avoided += 1;
        let anchor = self.cached.find_anchor(now, pivot.estimate, pivot.width);
        // `anchor == now` is possible even though the pivot did not start
        // in phase 1: the profile (built from *estimated* ends) may already
        // count a job done whose completion event, at this same instant, is
        // still queued behind this one. The pivot starts when that sibling
        // completion is delivered; meanwhile its reservation blocks unsafe
        // backfills exactly as it should.
        //
        // The pivot's rectangle goes into the *cached* running profile for
        // the duration of the pass (and comes back out at the end), instead
        // of into a throwaway clone: the probed silhouette is identical, so
        // every backfill decision is too, but the clone's allocations and
        // the doubled reserve bookkeeping disappear from the hot path.
        self.cached.reserve(anchor, pivot.estimate, pivot.width);
        if let Some(rec) = &self.recorder {
            // One Reserve per distinct pivot reservation, not per pass.
            if self.last_pivot != Some((pivot.id, anchor)) {
                self.last_pivot = Some((pivot.id, anchor));
                rec.borrow_mut().record(
                    now.as_secs(),
                    pivot.id.0 as u64,
                    TraceKind::Reserve {
                        anchor: anchor.as_secs(),
                    },
                );
            }
        }

        // Phase 3: backfill the rest in priority order. Accepted backfills
        // are added to the profile so later candidates see them.
        let scan_t0 = obs::span::start_nested(&self.phases, obs::Phase::Backfill);
        let mut i = 1;
        while i < self.queue.len() {
            let cand = self.queue[i];
            if cand.width <= self.free && self.cached.fits(now, cand.estimate, cand.width) {
                self.queue.remove(i);
                if let Some(rec) = &self.recorder {
                    // The hole this candidate slotted into runs from `now`
                    // to the pivot's protected anchor.
                    rec.borrow_mut().record(
                        now.as_secs(),
                        cand.id.0 as u64,
                        TraceKind::Backfill {
                            filled_hole: anchor.since(now).as_secs(),
                        },
                    );
                }
                self.start(cand, now, &mut starts);
            } else {
                i += 1;
            }
        }
        // The pass is over: the pivot is not running, so its rectangle
        // leaves the running profile again.
        self.cached.release(anchor, pivot.estimate, pivot.width);
        obs::span::finish_nested(&self.phases, obs::Phase::Backfill, scan_t0);
        Decisions::start(starts)
    }
}

impl Scheduler for EasyScheduler {
    fn name(&self) -> String {
        format!("EASY/{}", self.policy)
    }

    fn on_arrival(&mut self, job: JobMeta, now: SimTime) -> Decisions {
        assert!(job.width <= self.capacity, "{} wider than machine", job.id);
        let t0 = obs::span::start_nested(&self.phases, obs::Phase::QueueOps);
        self.queue.push(job);
        obs::span::finish_nested(&self.phases, obs::Phase::QueueOps, t0);
        self.reschedule(now)
    }

    fn on_completion(&mut self, id: JobId, now: SimTime) -> Decisions {
        let run = self
            .running
            .remove(&id)
            .expect("completion for unknown job");
        self.free += run.width;
        // Return the job's not-yet-elapsed estimated occupancy; an overrun
        // job (est_end <= now) holds nothing in the profile's future.
        if run.est_end > now {
            self.cached.release(now, run.est_end.since(now), run.width);
        }
        self.reschedule(now)
    }

    fn on_wake(&mut self, now: SimTime) -> Decisions {
        self.reschedule(now)
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn profile_stats(&self) -> Option<ProfileStats> {
        let mut stats = self.stats;
        stats.absorb(&self.cached.stats());
        self.queue.counters().merge_into(&mut stats);
        Some(stats)
    }

    fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    fn set_phases(&mut self, phases: obs::SharedPhases) {
        self.phases = Some(phases);
    }

    fn recycle(&mut self, spent: Decisions) {
        let mut starts = spent.starts;
        starts.clear();
        self.starts_scratch = starts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimSpan;

    fn meta(id: u32, arrival: u64, estimate: u64, width: u32) -> JobMeta {
        JobMeta {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    #[test]
    fn short_job_backfills_without_delaying_pivot() {
        let mut s = EasyScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO); // running [0,100)
        s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1)); // pivot, anchor 100
                                                           // 2 procs free until 100. Job 2: 2 procs, 90 s -> ends at 92 < 100.
        let d = s.on_arrival(meta(2, 2, 90, 2), SimTime::new(2));
        assert_eq!(d.starts, vec![JobId(2)]);
    }

    #[test]
    fn backfill_that_would_delay_pivot_is_refused_then_sidestepped() {
        let mut s = EasyScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1)); // pivot at 100
                                                           // Job 2 wants 2 procs for 200 s: would run past 100 using procs the
                                                           // pivot needs (pivot needs all 8). Refused.
        let d = s.on_arrival(meta(2, 2, 200, 2), SimTime::new(2));
        assert!(d.starts.is_empty());
    }

    #[test]
    fn long_backfill_on_pivot_spare_processors_is_allowed() {
        let mut s = EasyScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 500, 6), SimTime::new(1)); // pivot: 6 procs at 100
                                                           // Job 2: 2 procs for 1000 s. Pivot leaves 2 spare procs, so running
                                                           // past the pivot's start is fine — the EASY "extra processors" rule.
        let d = s.on_arrival(meta(2, 2, 1000, 2), SimTime::new(2));
        assert_eq!(d.starts, vec![JobId(2)]);
    }

    #[test]
    fn only_head_is_protected_under_fcfs() {
        let mut s = EasyScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1)); // pivot at 100
        s.on_arrival(meta(2, 2, 100, 8), SimTime::new(2)); // second in queue: no guarantee
                                                           // Job 3 (1 proc, 95 s) fits before the pivot's anchor: backfills,
                                                           // even though it may delay job 2.
        let d = s.on_arrival(meta(3, 3, 95, 1), SimTime::new(3));
        assert!(
            d.starts.is_empty(),
            "8-wide pivot needs the whole machine; nothing is free"
        );
        // Free the machine at 100; pivot starts; job 2 becomes pivot.
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert_eq!(d.starts, vec![JobId(1)]);
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn sjf_picks_new_head_dynamically() {
        let mut s = EasyScheduler::new(8, Policy::Sjf);
        s.on_arrival(meta(0, 0, 100, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 900, 8), SimTime::new(1));
        s.on_arrival(meta(2, 2, 50, 8), SimTime::new(2));
        // At completion, SJF queue is [2 (50 s), 1 (900 s)]: job 2 starts.
        let d = s.on_completion(JobId(0), SimTime::new(100));
        assert_eq!(d.starts, vec![JobId(2)]);
    }

    #[test]
    fn xfactor_ages_long_waiters_to_the_front() {
        let mut s = EasyScheduler::new(8, Policy::XFactor);
        s.on_arrival(meta(0, 0, 10_000, 8), SimTime::ZERO);
        // Long job waits from t=0; short job arrives much later.
        s.on_arrival(meta(1, 0, 10_000, 8), SimTime::ZERO);
        s.on_arrival(meta(2, 9_999, 100, 8), SimTime::new(9_999));
        // At t=10000: xf(1) = (10000+10000)/10000 = 2;
        // xf(2) = (1+100)/100 = 1.01. Job 1 leads despite being long.
        let d = s.on_completion(JobId(0), SimTime::new(10_000));
        assert_eq!(d.starts, vec![JobId(1)]);
    }

    #[test]
    fn multiple_backfills_stack_correctly() {
        let mut s = EasyScheduler::new(8, Policy::Fcfs);
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1)); // pivot at 100
                                                           // Two 1-proc 50 s jobs both fit before 100.
        let d = s.on_arrival(meta(2, 2, 50, 1), SimTime::new(2));
        assert_eq!(d.starts, vec![JobId(2)]);
        let d = s.on_arrival(meta(3, 3, 50, 1), SimTime::new(3));
        assert_eq!(d.starts, vec![JobId(3)]);
        // A third would exceed the 2 free procs.
        let d = s.on_arrival(meta(4, 4, 50, 1), SimTime::new(4));
        assert!(d.starts.is_empty());
    }

    #[test]
    fn recorder_sees_pivot_reserve_and_backfill() {
        use obs::trace::TraceKind;
        let mut s = EasyScheduler::new(8, Policy::Fcfs);
        let rec = obs::trace::shared(64);
        s.set_recorder(rec.clone());
        s.on_arrival(meta(0, 0, 100, 6), SimTime::ZERO); // starts immediately
        s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1)); // pivot, anchor 100
        s.on_arrival(meta(2, 2, 90, 2), SimTime::new(2)); // backfills before 100
        let events = rec.borrow().events();
        let kinds: Vec<(u64, &TraceKind)> = events.iter().map(|e| (e.job, &e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                // One Reserve for the pivot (deduped across the second
                // pass, where its anchor is unchanged)...
                (1, &TraceKind::Reserve { anchor: 100 }),
                // ...then the backfill into the 98 s hole before it.
                (2, &TraceKind::Backfill { filled_hole: 98 }),
            ]
        );
    }

    #[test]
    fn completion_for_unknown_job_panics() {
        let mut s = EasyScheduler::new(8, Policy::Fcfs);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.on_completion(JobId(9), SimTime::ZERO)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn name_includes_policy() {
        assert_eq!(EasyScheduler::new(4, Policy::XFactor).name(), "EASY/XF");
    }
}
