//! Selective preemption — the authors' companion strategy (their reference
//! \[6\], "Selective preemption strategies for parallel job scheduling",
//! ICPP 2002).
//!
//! Backfilling alone cannot help a starving wide job: nothing running can
//! be displaced. Selective preemption adds the missing lever — when a
//! waiting job's expansion factor crosses a threshold, the scheduler may
//! **suspend** running jobs to make room, re-queueing them with their
//! remaining work. Safeguards keep it "selective" rather than thrashing:
//!
//! * only the *highest-priority* starving job triggers preemption;
//! * victims are chosen lowest-priority-first among jobs that have run at
//!   least `min_run` (no sniping of fresh starts);
//! * a job is suspended at most `max_preemptions` times, guaranteeing
//!   global progress.
//!
//! Between preemption episodes the scheduler behaves exactly like EASY
//! (pivot reservation + backfilling), so with an infinite threshold it
//! degenerates to EASY — tested below.

use crate::policy::Policy;
use crate::profile::{Profile, ProfileStats};
use crate::queue::SchedQueue;
use crate::scheduler::{Decisions, JobMeta, Scheduler};
use simcore::{JobId, SimSpan, SimTime};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Running {
    meta: JobMeta,
    /// Estimated end of the current run segment.
    est_end: SimTime,
    /// Start of the current run segment.
    started_at: SimTime,
    preemptions: u32,
}

/// EASY backfilling with selective preemption of running jobs.
#[derive(Debug, Clone)]
pub struct PreemptiveScheduler {
    policy: Policy,
    capacity: u32,
    free: u32,
    /// Waiting jobs; `estimate` fields hold *remaining* estimates for
    /// previously preempted jobs.
    queue: SchedQueue,
    running: HashMap<JobId, Running>,
    /// Mirror of the running set's remaining estimated occupancy, updated
    /// on starts, completions and preemptions instead of rebuilt per event.
    cached: Profile,
    /// Times a job has been suspended so far (sticky across resumes).
    suspended_count: HashMap<JobId, u32>,
    /// Every job's original meta, as first submitted — needed to rebuild
    /// the remaining estimate when a preempted job re-enters the queue.
    original: HashMap<JobId, JobMeta>,
    /// Expansion-factor threshold that triggers preemption.
    threshold: f64,
    /// Minimum uninterrupted runtime before a job may be victimized.
    min_run: SimSpan,
    /// Per-job suspension cap.
    max_preemptions: u32,
    /// Accumulated counters from the throwaway per-event profiles.
    stats: ProfileStats,
}

impl PreemptiveScheduler {
    /// Create for a machine with `capacity` processors. `threshold` is the
    /// starving job's expansion factor that triggers preemption (≥ 1;
    /// infinity disables preemption entirely, yielding EASY).
    pub fn new(capacity: u32, policy: Policy, threshold: f64) -> Self {
        assert!(
            threshold >= 1.0,
            "preemption threshold must be >= 1, got {threshold}"
        );
        PreemptiveScheduler {
            policy,
            capacity,
            free: capacity,
            queue: SchedQueue::new(policy),
            running: HashMap::new(),
            cached: Profile::new(capacity),
            suspended_count: HashMap::new(),
            original: HashMap::new(),
            threshold,
            min_run: SimSpan::from_mins(10),
            max_preemptions: 2,
            stats: ProfileStats::default(),
        }
    }

    /// Override the anti-thrashing safeguards.
    pub fn with_safeguards(mut self, min_run: SimSpan, max_preemptions: u32) -> Self {
        self.min_run = min_run;
        self.max_preemptions = max_preemptions;
        self
    }

    fn start(&mut self, job: JobMeta, now: SimTime, starts: &mut Vec<JobId>) {
        debug_assert!(job.width <= self.free);
        self.free -= job.width;
        self.cached.reserve(now, job.estimate, job.width);
        let preemptions = self.suspended_count.get(&job.id).copied().unwrap_or(0);
        self.running.insert(
            job.id,
            Running {
                meta: job,
                est_end: now + job.estimate,
                started_at: now,
                preemptions,
            },
        );
        starts.push(job.id);
    }

    /// From-scratch rebuild: the differential reference for `cached`.
    #[cfg(debug_assertions)]
    fn rebuilt_running_profile(&self, now: SimTime) -> Profile {
        let mut p = Profile::new(self.capacity);
        for run in self.running.values() {
            if run.est_end > now {
                p.reserve(now, run.est_end.since(now), run.meta.width);
            }
        }
        p
    }

    /// Remove `run`'s not-yet-elapsed estimated occupancy from the cached
    /// profile (completion or suspension).
    fn release_cached(&mut self, run: &Running, now: SimTime) {
        if run.est_end > now {
            self.cached
                .release(now, run.est_end.since(now), run.meta.width);
        }
    }

    /// Pick victims (lowest priority first) freeing enough processors for
    /// `needed`, honouring the safeguards. Returns `None` if impossible.
    fn pick_victims(&self, needed: u32, now: SimTime) -> Option<Vec<JobId>> {
        let mut candidates: Vec<&Running> = self
            .running
            .values()
            .filter(|r| {
                now.since(r.started_at) >= self.min_run && r.preemptions < self.max_preemptions
            })
            .collect();
        // Lowest priority last in `compare` order; victimize from the back.
        candidates.sort_by(|a, b| self.policy.compare(&a.meta, &b.meta, now));
        let mut victims = Vec::new();
        let mut freed = self.free;
        for r in candidates.iter().rev() {
            if freed >= needed {
                break;
            }
            victims.push(r.meta.id);
            freed += r.meta.width;
        }
        (freed >= needed).then_some(victims)
    }

    fn reschedule(&mut self, now: SimTime) -> Decisions {
        let mut starts = Vec::new();
        let mut preempts = Vec::new();
        self.cached.trim_before(now);
        self.queue.prepare(now);

        // EASY phase 1: start from the head while it fits.
        while let Some(head) = self.queue.front() {
            if head.width > self.free {
                break;
            }
            let head = self.queue.pop_front().expect("front() was Some");
            self.start(head, now, &mut starts);
        }

        // Preemption episode: if the blocked head is starving, displace the
        // least deserving runners and start it right away.
        if let Some(&head) = self.queue.front() {
            if self.threshold.is_finite() && Policy::xfactor(&head, now) >= self.threshold {
                if let Some(victims) = self.pick_victims(head.width, now) {
                    for id in victims {
                        let run = self.running.remove(&id).expect("victim runs");
                        self.free += run.meta.width;
                        self.release_cached(&run, now);
                        *self.suspended_count.entry(id).or_insert(0) += 1;
                        preempts.push(id);
                        // The driver answers with on_preempted, where the
                        // job re-enters the queue with remaining estimate.
                    }
                    let head = self.queue.pop_front().expect("front() was Some");
                    self.start(head, now, &mut starts);
                }
            }
        }

        if self.queue.is_empty() {
            return Decisions {
                preempts,
                starts,
                wakeup: None,
            };
        }

        // EASY phases 2–3: pivot reservation and backfilling.
        let pivot = self.queue[0];
        #[cfg(debug_assertions)]
        {
            self.stats.profile_rebuilds += 1;
            debug_assert!(
                self.cached
                    .same_future(&self.rebuilt_running_profile(now), now),
                "cached running profile diverged from rebuild at {now}"
            );
        }
        self.stats.profile_rebuilds_avoided += 1;
        let mut profile = self.cached.clone();
        profile.reset_stats();
        let anchor = profile.find_anchor(now, pivot.estimate, pivot.width);
        profile.reserve(anchor, pivot.estimate, pivot.width);
        let mut i = 1;
        while i < self.queue.len() {
            let cand = self.queue[i];
            if cand.width <= self.free && profile.fits(now, cand.estimate, cand.width) {
                profile.reserve(now, cand.estimate, cand.width);
                self.queue.remove(i);
                self.start(cand, now, &mut starts);
            } else {
                i += 1;
            }
        }
        self.stats.compress_passes += 1; // one replanning pass per event
        self.stats.absorb(&profile.stats());

        // Wake when the head crosses the starvation threshold (so a quiet
        // machine still triggers the episode).
        let wakeup = if self.threshold.is_finite() {
            let head = self.queue[0];
            let est = head.estimate.as_secs().max(1) as f64;
            let cross = head.arrival + SimSpan::new(((self.threshold - 1.0) * est).ceil() as u64);
            (cross > now).then_some(cross)
        } else {
            None
        };
        Decisions {
            preempts,
            starts,
            wakeup,
        }
    }
}

impl Scheduler for PreemptiveScheduler {
    fn name(&self) -> String {
        if self.threshold.is_finite() {
            format!("Preempt({})/{}", self.threshold, self.policy)
        } else {
            format!("Preempt(∞)/{}", self.policy)
        }
    }

    fn on_arrival(&mut self, job: JobMeta, now: SimTime) -> Decisions {
        assert!(job.width <= self.capacity, "{} wider than machine", job.id);
        self.original.insert(job.id, job);
        self.queue.push(job);
        self.reschedule(now)
    }

    fn on_completion(&mut self, id: JobId, now: SimTime) -> Decisions {
        let run = self
            .running
            .remove(&id)
            .expect("completion for unknown job");
        self.free += run.meta.width;
        self.release_cached(&run, now);
        self.reschedule(now)
    }

    fn on_wake(&mut self, now: SimTime) -> Decisions {
        self.reschedule(now)
    }

    fn on_preempted(&mut self, id: JobId, ran: SimSpan, now: SimTime) {
        let _ = now;
        // Re-queue with the remaining estimate. The original arrival is
        // kept, so the job's priority keeps aging while suspended.
        let mut meta = *self
            .original
            .get(&id)
            .expect("preempted job must have been seen before");
        meta.estimate = (meta.estimate - ran).max(SimSpan::SECOND);
        self.queue.push(meta);
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn profile_stats(&self) -> Option<ProfileStats> {
        let mut stats = self.stats;
        stats.absorb(&self.cached.stats());
        self.queue.counters().merge_into(&mut stats);
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u32, arrival: u64, estimate: u64, width: u32) -> JobMeta {
        JobMeta {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    fn sched(threshold: f64) -> PreemptiveScheduler {
        PreemptiveScheduler::new(8, Policy::Fcfs, threshold).with_safeguards(SimSpan::new(60), 2)
    }

    #[test]
    fn behaves_like_easy_until_threshold() {
        let mut s = sched(10.0);
        s.on_arrival(meta(0, 0, 1_000, 6), SimTime::ZERO);
        let d = s.on_arrival(meta(1, 1, 500, 8), SimTime::new(1));
        assert!(d.starts.is_empty());
        assert!(d.preempts.is_empty());
        // Backfill still works.
        let d = s.on_arrival(meta(2, 2, 90, 2), SimTime::new(2));
        assert_eq!(d.starts, vec![JobId(2)]);
    }

    #[test]
    fn starving_head_triggers_preemption() {
        let mut s = sched(2.0);
        s.on_arrival(meta(0, 0, 10_000, 8), SimTime::ZERO);
        // Head: 8-wide, estimate 100 -> crosses xf 2 at wait 100.
        let d = s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1));
        assert_eq!(d.wakeup, Some(SimTime::new(101)), "wake at the crossing");
        let d = s.on_wake(SimTime::new(101));
        assert_eq!(d.preempts, vec![JobId(0)], "the hog is suspended");
        assert_eq!(d.starts, vec![JobId(1)], "the starving job runs at once");
        // Driver callback: hog re-queued with remaining estimate.
        s.on_preempted(JobId(0), SimSpan::new(101), SimTime::new(101));
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn min_run_protects_fresh_jobs() {
        let mut s = sched(2.0).with_safeguards(SimSpan::new(1_000), 2);
        s.on_arrival(meta(0, 0, 10_000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1));
        // At the crossing the hog has only run 101 s < 1000: no preemption.
        let d = s.on_wake(SimTime::new(101));
        assert!(d.preempts.is_empty());
        assert!(d.starts.is_empty());
    }

    #[test]
    fn max_preemptions_is_honoured() {
        let mut s = sched(1.5).with_safeguards(SimSpan::ZERO, 1);
        s.on_arrival(meta(0, 0, 10_000, 8), SimTime::ZERO);
        s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1));
        let d = s.on_wake(SimTime::new(51));
        assert_eq!(d.preempts, vec![JobId(0)]);
        s.on_preempted(JobId(0), SimSpan::new(51), SimTime::new(51));
        // Job 1 completes; the hog resumes.
        let d = s.on_completion(JobId(1), SimTime::new(151));
        assert_eq!(d.starts, vec![JobId(0)]);
        // A new starving job cannot displace it again (cap = 1).
        s.on_arrival(meta(2, 152, 100, 8), SimTime::new(152));
        let d = s.on_wake(SimTime::new(252));
        assert!(d.preempts.is_empty(), "second suspension must be refused");
    }

    #[test]
    fn infinite_threshold_never_preempts_and_never_wakes() {
        let mut s = sched(f64::INFINITY);
        s.on_arrival(meta(0, 0, 10_000, 8), SimTime::ZERO);
        let d = s.on_arrival(meta(1, 1, 100, 8), SimTime::new(1));
        assert!(d.preempts.is_empty());
        assert_eq!(d.wakeup, None);
        assert_eq!(s.name(), "Preempt(∞)/FCFS");
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn rejects_sub_one_threshold() {
        PreemptiveScheduler::new(8, Policy::Fcfs, 0.5);
    }
}
