//! The scheduler interface the simulation driver programs against.
//!
//! A scheduler is an event-driven state machine. The driver feeds it three
//! kinds of events — a job arrived, a running job completed, a requested
//! timer fired — and after each event the scheduler answers with a
//! [`Decisions`]: the set of jobs to start *right now*, plus an optional
//! wake-up time for schedulers whose next action is not triggered by an
//! arrival or completion (e.g. a reservation coming due, or a selective-
//! backfilling threshold crossing).
//!
//! Information hiding is enforced structurally: schedulers receive a
//! [`JobMeta`] carrying only what a real scheduler would know (arrival,
//! *estimated* runtime, width) — never the actual runtime. The driver alone
//! knows when jobs will really complete.

use crate::profile::ProfileStats;
use obs::trace::SharedRecorder;
use simcore::{JobId, SimSpan, SimTime};

/// What the scheduler is allowed to know about a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMeta {
    /// Job identifier.
    pub id: JobId,
    /// Submission instant.
    pub arrival: SimTime,
    /// User-estimated runtime (the wall-clock limit).
    pub estimate: SimSpan,
    /// Processors requested.
    pub width: u32,
}

/// The scheduler's response to an event.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Decisions {
    /// Running jobs to suspend *before* the starts are applied. Their
    /// processors become free immediately; the driver re-announces each
    /// preempted job to the scheduler via [`Scheduler::on_preempted`] with
    /// its remaining estimate. Only preemption-aware schedulers emit these.
    pub preempts: Vec<JobId>,
    /// Jobs to start immediately (at the event's timestamp). Order is the
    /// order in which they claim processors. A previously preempted job
    /// may appear here to resume.
    pub starts: Vec<JobId>,
    /// If set, the driver fires [`Scheduler::on_wake`] at this time (unless
    /// another event arrives first; stale wake-ups are harmless no-ops).
    pub wakeup: Option<SimTime>,
}

impl Decisions {
    /// No preempts, no starts, no wake-up.
    pub fn none() -> Self {
        Decisions::default()
    }

    /// Starts only.
    pub fn start(starts: Vec<JobId>) -> Self {
        Decisions {
            preempts: Vec::new(),
            starts,
            wakeup: None,
        }
    }
}

/// An online parallel-job scheduler.
///
/// Contract (checked by the driver and the test suite):
/// * every job passed to `on_arrival` is eventually returned in some
///   `starts` exactly once;
/// * a started job's processors are in use until the driver calls
///   `on_completion` for it;
/// * the scheduler never starts jobs beyond machine capacity.
pub trait Scheduler {
    /// Human-readable name, e.g. `"EASY/SJF"`.
    fn name(&self) -> String;

    /// A job entered the queue at `now`.
    fn on_arrival(&mut self, job: JobMeta, now: SimTime) -> Decisions;

    /// A previously started job released its processors at `now` (this may
    /// be earlier than its estimate — the interesting case).
    fn on_completion(&mut self, id: JobId, now: SimTime) -> Decisions;

    /// A timer requested via [`Decisions::wakeup`] fired.
    fn on_wake(&mut self, now: SimTime) -> Decisions;

    /// A job this scheduler asked to preempt has been suspended; `ran` is
    /// how long it executed in total so far. The scheduler should requeue
    /// it (its remaining estimate is `original − ran`, floored at 1 s).
    /// Default: panic — non-preemptive schedulers never emit preempts, so
    /// receiving this is a driver/scheduler contract violation.
    fn on_preempted(&mut self, id: JobId, ran: SimSpan, now: SimTime) {
        let _ = (ran, now);
        unreachable!("scheduler never asked to preempt {id}");
    }

    /// Number of jobs currently waiting (diagnostics).
    fn queue_len(&self) -> usize;

    /// Cumulative availability-profile operation counters, if this
    /// scheduler maintains a profile. Schedulers that keep a persistent
    /// profile report it directly; ones that rebuild a throwaway profile
    /// per event report the accumulated counters across all rebuilds.
    /// Default: `None` (profile-free schedulers, e.g. plain FCFS).
    fn profile_stats(&self) -> Option<ProfileStats> {
        None
    }

    /// Hand the scheduler a shared decision-trace recorder. Schedulers
    /// that make profile-level decisions (reservations, backfills,
    /// compression) emit `Reserve`/`Backfill`/`Compress` events into it;
    /// the driver emits the job lifecycle (`Arrive`/`Start`/`Complete`/
    /// `Preempt`) itself. Recording must be strictly observational —
    /// decisions may never depend on the recorder — so the default is to
    /// ignore it.
    fn set_recorder(&mut self, recorder: SharedRecorder) {
        let _ = recorder;
    }

    /// Hand the scheduler a shared per-phase profiling accumulator (see
    /// `obs::span::PhaseAcc`). Schedulers with distinguishable internal
    /// phases (queue maintenance, backfill scans, profile compression)
    /// time them into it; like the recorder, profiling must be strictly
    /// observational, so the default is to ignore it.
    fn set_phases(&mut self, phases: obs::SharedPhases) {
        let _ = phases;
    }

    /// Return a consumed [`Decisions`] so its buffers can serve the next
    /// event. The driver calls this after applying every decision set;
    /// schedulers that keep scratch buffers clear and stash the vectors
    /// (their *capacity* is the asset — the contents are already applied),
    /// making the per-event `starts` allocation disappear once the buffers
    /// reach steady-state size. Purely an allocation optimization: the
    /// contents handed back must never influence a decision. Default: drop.
    fn recycle(&mut self, spent: Decisions) {
        let _ = spent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_constructors() {
        assert_eq!(
            Decisions::none(),
            Decisions {
                preempts: vec![],
                starts: vec![],
                wakeup: None
            }
        );
        let d = Decisions::start(vec![JobId(3)]);
        assert_eq!(d.starts, vec![JobId(3)]);
        assert!(d.preempts.is_empty());
        assert_eq!(d.wakeup, None);
    }
}
