//! Pinned edge cases of the anchor search and the fits memo.
//!
//! Each unit test nails one boundary the segment-tree path, the plain
//! small-profile scan, and the linear oracle must agree on: zero-width
//! requests, zero-duration rectangles, and anchors exactly at the
//! past-cutoff boundary `trim_before` leaves behind (the implicit
//! fully-free region before the first segment). The property test at the
//! bottom hammers the fits memo specifically *across* mutations: every
//! `fits` answer — first probe after a mutation (tree-answered), repeat
//! probe (memoized), repeat after another mutation — must equal the
//! linear oracle's verdict.

use proptest::prelude::*;
use sched::Profile;
use simcore::{SimSpan, SimTime};

fn t(s: u64) -> SimTime {
    SimTime::new(s)
}
fn d(s: u64) -> SimSpan {
    SimSpan::new(s)
}

/// A congested profile with > 64 segments (past the plain-scan cutoff,
/// so `find_anchor` runs on the tree) and a trimmed past, leaving the
/// implicit fully-free region before the first real segment.
fn large_trimmed() -> Profile {
    let mut p = Profile::new(16);
    for i in 0..600u64 {
        p.reserve(t(1_000 + i * 20), d(15), 1 + (i % 11) as u32);
    }
    assert!(p.segments().len() > 64, "profile must exercise the tree");
    p.trim_before(t(1_000));
    assert!(
        p.segments()[0].start == t(1_000),
        "trim must leave a boundary at the cutoff"
    );
    p
}

/// A small profile (plain-scan path) with the same trimmed shape.
fn small_trimmed() -> Profile {
    let mut p = Profile::new(16);
    p.reserve(t(1_000), d(500), 12);
    p.reserve(t(2_000), d(500), 7);
    p.trim_before(t(1_000));
    p
}

#[test]
fn zero_width_anchors_at_earliest_on_all_paths() {
    for p in [small_trimmed(), large_trimmed()] {
        for e in [0, 500, 1_000, 1_234, 100_000] {
            assert_eq!(p.find_anchor(t(e), d(100), 0), t(e));
            assert_eq!(p.find_anchor_linear(t(e), d(100), 0), t(e));
            assert!(p.fits(t(e), d(100), 0));
        }
    }
}

#[test]
fn zero_duration_anchors_at_earliest_on_all_paths() {
    for p in [small_trimmed(), large_trimmed()] {
        for e in [0, 500, 1_000, 1_234, 100_000] {
            assert_eq!(p.find_anchor(t(e), d(0), 16), t(e));
            assert_eq!(p.find_anchor_linear(t(e), d(0), 16), t(e));
            assert!(p.fits(t(e), d(0), 16));
        }
    }
}

#[test]
fn zero_duration_reservation_is_a_noop_even_before_the_cutoff() {
    let mut p = large_trimmed();
    let snapshot = p.clone();
    // In the implicit free region, at the boundary, and past it.
    p.reserve(t(10), d(0), 5);
    p.reserve(t(1_000), d(0), 5);
    p.reserve(t(5_000), d(0), 5);
    assert_eq!(p, snapshot);
}

#[test]
fn window_ending_exactly_at_the_cutoff_boundary_fits() {
    // [earliest, earliest + dur) closing exactly at segs[0].start lies
    // wholly in the implicit fully-free region: must anchor immediately,
    // on every path, regardless of how blocked the first segment is.
    for p in [small_trimmed(), large_trimmed()] {
        let first = p.segments()[0].start;
        let e = t(first.as_secs() - 100);
        assert_eq!(p.find_anchor(e, d(100), 16), e);
        assert_eq!(p.find_anchor_linear(e, d(100), 16), e);
        assert!(p.fits(e, d(100), 16));
    }
}

#[test]
fn window_crossing_the_cutoff_boundary_sees_the_first_segment() {
    for p in [small_trimmed(), large_trimmed()] {
        let first = p.segments()[0].start;
        let free0 = p.segments()[0].free;
        let e = t(first.as_secs() - 100);
        // One second longer than the free prefix: the window now overlaps
        // the (partially blocked) first segment.
        let width = free0 + 1; // more than the first segment offers
        let a_tree = p.find_anchor(e, d(101), width);
        let a_lin = p.find_anchor_linear(e, d(101), width);
        assert_eq!(a_tree, a_lin);
        assert!(a_tree > e, "crossing window must not anchor in the prefix");
        assert!(!p.fits(e, d(101), width));
        // At a width the first segment can host, the crossing window
        // anchors at `e` on both paths.
        if free0 > 0 {
            assert_eq!(p.find_anchor(e, d(101), free0), e);
            assert_eq!(p.find_anchor_linear(e, d(101), free0), e);
            assert!(p.fits(e, d(101), free0));
        }
    }
}

#[test]
fn anchor_exactly_at_the_cutoff_boundary() {
    for p in [small_trimmed(), large_trimmed()] {
        let first = p.segments()[0].start;
        // Probing from exactly the boundary: both paths start at the
        // first real segment, never the implicit region behind it.
        for &width in &[1u32, 8, 16] {
            for &dur in &[1u64, 250, 10_000] {
                assert_eq!(
                    p.find_anchor(first, d(dur), width),
                    p.find_anchor_linear(first, d(dur), width),
                    "diverged at boundary for dur={dur} width={width}"
                );
            }
        }
    }
}

#[test]
fn anchor_in_implicit_region_agrees_between_paths() {
    for p in [small_trimmed(), large_trimmed()] {
        for offset in [1u64, 50, 99, 100, 500] {
            let e = t(p.segments()[0].start.as_secs().saturating_sub(offset));
            for &width in &[1u32, 8, 16] {
                for &dur in &[1u64, 99, 100, 101, 2_000] {
                    assert_eq!(
                        p.find_anchor(e, d(dur), width),
                        p.find_anchor_linear(e, d(dur), width),
                        "diverged at e={e} dur={dur} width={width}"
                    );
                }
            }
        }
    }
}

/// Compression-shaped mutation + probe interleavings for the fits memo.
///
/// The generation-token scheme has three observable states per (profile,
/// left edge): tree-answered first miss, memoized repeat, invalidated by
/// mutation. The script below forces all the transitions a compression
/// pass produces — probe, mutate, re-probe same edge, probe other edge,
/// trim, probe again — and checks every single answer against the linear
/// oracle (`fits(from, dur, w)` ⟺ the linear anchor stays at `from`).
#[derive(Debug, Clone, Copy)]
enum Step {
    /// find_anchor + reserve at the anchor (grows the profile).
    Reserve { earliest: u64, dur: u64, width: u32 },
    /// Probe `fits` at a pinned left edge, repeatedly (miss + memo paths).
    Probe { from: u64, dur: u64, width: u32 },
    /// Compression-style move: release the most recent live reservation
    /// and re-reserve it at its own re-anchor (mutates between probes).
    Compress,
    /// Trim the past up to the earliest live reservation.
    Trim { cut: u64 },
}

fn step() -> impl Strategy<Value = Step> {
    (0u8..8, 0u64..10_000, 1u64..2_000, 1u32..=12).prop_map(|(kind, a, b, w)| match kind {
        0..=2 => Step::Reserve {
            earliest: a,
            dur: b.min(1_500),
            width: w,
        },
        3..=5 => Step::Probe {
            from: a,
            dur: b,
            width: w,
        },
        6 => Step::Compress,
        _ => Step::Trim { cut: a % 6_000 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fits_memo_agrees_with_linear_oracle_across_mutations(
        steps in proptest::collection::vec(step(), 1..60),
    ) {
        let cap = 12u32;
        let mut p = Profile::new(cap);
        let mut live: Vec<(SimTime, SimSpan, u32)> = Vec::new();
        let check = |p: &Profile, from: SimTime, dur: SimSpan, width: u32| {
            let expect = p.find_anchor_linear(from, dur, width) == from;
            // First call may be the tree-answered miss, the second the
            // memoizing rebuild, the third the memo hit: all must agree.
            for round in 0..3 {
                prop_assert_eq!(
                    p.fits(from, dur, width),
                    expect,
                    "fits({:?},{:?},{}) diverged from oracle on round {}",
                    from, dur, width, round
                );
            }
            Ok(())
        };
        for s in steps {
            match s {
                Step::Reserve { earliest, dur, width } => {
                    let dur = SimSpan::new(dur);
                    let width = width.min(cap);
                    let a = p.find_anchor(SimTime::new(earliest), dur, width);
                    p.reserve(a, dur, width);
                    live.push((a, dur, width));
                    // Re-probe the edge the reservation just landed on:
                    // the memo for this edge (if any) is now stale.
                    check(&p, a, dur, width)?;
                }
                Step::Probe { from, dur, width } => {
                    check(&p, SimTime::new(from), SimSpan::new(dur), width.min(cap))?;
                }
                Step::Compress => {
                    let Some((start, dur, width)) = live.pop() else { continue };
                    // Probe, mutate, re-probe the same left edge: the
                    // classic stale-cache hazard.
                    check(&p, start, dur, width)?;
                    p.release(start, dur, width);
                    let a = p.find_anchor(SimTime::ZERO, dur, width);
                    p.reserve(a, dur, width);
                    live.push((a, dur, width));
                    check(&p, start, dur, width)?;
                }
                Step::Trim { cut } => {
                    let horizon = live
                        .iter()
                        .map(|&(start, _, _)| start)
                        .min()
                        .unwrap_or(SimTime::new(u64::MAX));
                    let cut = SimTime::new(cut).min(horizon);
                    p.trim_before(cut);
                    check(&p, cut, SimSpan::new(100), 1)?;
                }
            }
            prop_assert!(p.invariants_ok());
        }
    }
}
