//! Differential tests of the tree-accelerated anchor search.
//!
//! `Profile::find_anchor` descends an incrementally maintained min/max
//! segment tree (plain-scanning small profiles);
//! `Profile::find_anchor_linear` is the plain scan it replaced. These
//! properties drive both — plus a third, deliberately naive reference
//! implemented here over `Profile::segments()` — through random
//! reserve/partial-release/trim histories and assert all three agree on
//! every query: the tree must be a pure accelerator, never a decision
//! change.

use proptest::prelude::*;
use sched::{Profile, Segment};
use simcore::{SimSpan, SimTime};

/// Naive reference anchor: try `earliest` and every later segment start in
/// order, checking feasibility point-by-point against the raw segments.
/// (Any blocked anchor re-starts at a segment boundary, so these are the
/// only candidates.) Quadratic and proud of it.
fn reference_anchor(
    segs: &[Segment],
    cap: u32,
    earliest: SimTime,
    dur: SimSpan,
    width: u32,
) -> SimTime {
    assert!(
        width > 0 && !dur.is_zero(),
        "reference expects real rectangles"
    );
    let free_at = |t: SimTime| -> u32 {
        let mut free = cap; // before the first boundary the profile is free
        for s in segs {
            if s.start <= t {
                free = s.free;
            } else {
                break;
            }
        }
        free
    };
    let fits_at = |t: SimTime| -> bool {
        if free_at(t) < width {
            return false;
        }
        let end = t + dur;
        segs.iter()
            .all(|s| !(s.start > t && s.start < end && s.free < width))
    };
    if fits_at(earliest) {
        return earliest;
    }
    for s in segs {
        if s.start > earliest && fits_at(s.start) {
            return s.start;
        }
    }
    unreachable!("final segment is asserted wide enough");
}

/// A scripted history of profile mutations that can never panic:
/// reservations are placed at anchors, releases give back tails of
/// still-live reservations, trims move the origin forward.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    a: u64,
    b: u64,
    w: u32,
}

fn op() -> impl Strategy<Value = Op> {
    (0u8..8, 0u64..20_000, 1u64..3_000, 1u32..=24).prop_map(|(kind, a, b, w)| Op { kind, a, b, w })
}

fn apply_ops(cap: u32, ops: &[Op]) -> Profile {
    let mut p = Profile::new(cap);
    let mut live: Vec<(SimTime, SimSpan, u32)> = Vec::new();
    for op in ops {
        let width = op.w.min(cap);
        match op.kind {
            // Mostly reservations: they are what grows the segment list.
            0..=4 => {
                let dur = SimSpan::new(op.b);
                let anchor = p.find_anchor(SimTime::new(op.a), dur, width);
                p.reserve(anchor, dur, width);
                live.push((anchor, dur, width));
            }
            // Release the tail of a live reservation (early completion).
            5 | 6 => {
                if live.is_empty() {
                    continue;
                }
                let (start, dur, w) = live.remove((op.a as usize) % live.len());
                let keep = SimSpan::new(op.b % dur.as_secs().max(1));
                p.release(start + keep, dur - keep, w);
                if !keep.is_zero() {
                    live.push((start, keep, w));
                }
            }
            // Trim the past away (creates the implicit free region). Never
            // trim beyond a live reservation's start: its tail may still be
            // released, and releasing into the trimmed-away (implicitly
            // fully free) region would overflow capacity.
            _ => {
                let horizon = live
                    .iter()
                    .map(|&(start, _, _)| start)
                    .min()
                    .unwrap_or(SimTime::new(u64::MAX));
                p.trim_before(SimTime::new(op.a % 10_000).min(horizon));
            }
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The indexed search, the linear scan, and the naive reference agree
    /// on every anchor over arbitrary mutation histories — the indexed
    /// profile is decision-for-decision identical to the old one.
    #[test]
    fn indexed_linear_and_reference_anchors_agree(
        cap in 1u32..=24,
        ops in proptest::collection::vec(op(), 0..140),
        queries in proptest::collection::vec((0u64..25_000, 1u64..4_000, 1u32..=24), 1..25),
    ) {
        let p = apply_ops(cap, &ops);
        prop_assert!(p.invariants_ok(), "bad profile: {:?}", p.segments());
        for (earliest, dur, width) in queries {
            let width = width.min(cap);
            let earliest = SimTime::new(earliest);
            let dur = SimSpan::new(dur);
            let indexed = p.find_anchor(earliest, dur, width);
            let linear = p.find_anchor_linear(earliest, dur, width);
            prop_assert_eq!(
                indexed,
                linear,
                "indexed vs linear diverged at ({}, {}, {}) over {:?}",
                earliest, dur, width, p.segments()
            );
            let reference = reference_anchor(&p.segments(), cap, earliest, dur, width);
            prop_assert_eq!(
                indexed,
                reference,
                "indexed vs reference diverged at ({}, {}, {}) over {:?}",
                earliest, dur, width, p.segments()
            );
        }
    }

    /// Probing never mutates: any sequence of find_anchor calls (either
    /// implementation) leaves the profile silhouette untouched.
    #[test]
    fn anchor_searches_are_pure(
        ops in proptest::collection::vec(op(), 0..100),
        queries in proptest::collection::vec((0u64..25_000, 1u64..4_000, 1u32..=16), 1..15),
    ) {
        let cap = 16;
        let p = apply_ops(cap, &ops);
        let snapshot = p.clone();
        for (earliest, dur, width) in queries {
            p.find_anchor(SimTime::new(earliest), SimSpan::new(dur), width.min(cap));
            p.find_anchor_linear(SimTime::new(earliest), SimSpan::new(dur), width.min(cap));
        }
        prop_assert_eq!(p, snapshot);
    }
}

proptest! {
    // Few cases: each one builds a ~1000-reservation profile.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same agreement on profiles large enough to leave the indexed
    /// search's small-profile cutoff behind, so the run-index walk and the
    /// block-accelerated in-run scan are the code under test. (The naive
    /// reference is quadratic, so these big cases check indexed against
    /// linear, which the cases above tie to the reference.)
    #[test]
    fn indexed_agrees_with_linear_past_the_small_cutoff(
        seed_ops in proptest::collection::vec(op(), 900..1_000),
        queries in proptest::collection::vec((0u64..40_000, 1u64..6_000, 1u32..=24), 1..40),
    ) {
        // Reserves only: every op grows the segment list, pushing the
        // profile well past the 512-segment cutoff.
        let cap = 24;
        let mut p = Profile::new(cap);
        for op in &seed_ops {
            let dur = SimSpan::new(op.b);
            let anchor = p.find_anchor(SimTime::new(op.a * 3), dur, op.w);
            p.reserve(anchor, dur, op.w);
        }
        prop_assert!(p.invariants_ok(), "bad profile");
        prop_assert!(p.segments().len() > 512, "profile too small to exercise the index");
        for (earliest, dur, width) in queries {
            let earliest = SimTime::new(earliest);
            let dur = SimSpan::new(dur);
            prop_assert_eq!(
                p.find_anchor(earliest, dur, width),
                p.find_anchor_linear(earliest, dur, width),
                "indexed vs linear diverged at ({}, {}, {})",
                earliest, dur, width
            );
        }
    }
}
