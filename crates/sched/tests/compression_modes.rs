//! Property test of the compression modes' guarantee discipline.
//!
//! When an early completion opens a hole, every compression mode promises
//! the same thing: **no queued job's guaranteed start moves later** than it
//! was before the hole opened. `Backfill` (the paper's semantics) either
//! starts a job in the hole or leaves its guarantee untouched; `HeadStart`
//! does the same but stops at the first blocked job; `Reanchor` may pull
//! guarantees earlier without starting the job.
//!
//! Note the property deliberately compares each mode against the
//! *pre-compression* guarantees, not jobwise against `Backfill`'s
//! post-compression schedule: re-anchoring a higher-priority job into the
//! middle of the hole can consume capacity that `Backfill` would have
//! handed to a lower-priority job, so jobwise "Reanchor ≤ Backfill" is
//! simply false. What all modes do guarantee — and what conservative
//! backfilling's contract requires — is that compression never *degrades*
//! any guarantee.

use proptest::prelude::*;
use sched::{Compression, ConservativeScheduler, JobMeta, Policy, Scheduler};
use simcore::{JobId, SimSpan, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn no_mode_ever_degrades_a_guarantee(
        first_width in 1u32..=16,
        jobs in proptest::collection::vec((1u32..=16, 10u64..2_000), 2..12),
    ) {
        let cap = 16u32;
        let modes = [Compression::Backfill, Compression::HeadStart, Compression::Reanchor];
        let mut scheds: Vec<ConservativeScheduler> = modes
            .iter()
            .map(|&m| ConservativeScheduler::with_compression(cap, Policy::Fcfs, m))
            .collect();

        // Job 0 heads the machine with a long estimate; its early
        // completion below is what opens the hole.
        let j0 = JobMeta {
            id: JobId(0),
            arrival: SimTime::ZERO,
            estimate: SimSpan::new(9_500),
            width: first_width,
        };
        for s in &mut scheds {
            let d = s.on_arrival(j0, SimTime::ZERO);
            prop_assert_eq!(&d.starts, &vec![JobId(0)]);
        }

        // The rest arrive one second apart. Modes only differ in compress(),
        // which has not run yet, so all three must decide identically here.
        for (i, &(width, est)) in jobs.iter().enumerate() {
            let now = SimTime::new(i as u64 + 1);
            let m = JobMeta {
                id: JobId(i as u32 + 1),
                arrival: now,
                estimate: SimSpan::new(est),
                width,
            };
            let mut first_starts: Option<Vec<JobId>> = None;
            for s in &mut scheds {
                let d = s.on_arrival(m, now);
                match &first_starts {
                    None => first_starts = Some(d.starts),
                    Some(prev) => {
                        prop_assert_eq!(prev, &d.starts, "modes diverged before any compression")
                    }
                }
            }
        }

        // Snapshot every queued job's guarantee (identical across modes).
        let ids: Vec<JobId> = (1..=jobs.len() as u32).map(JobId).collect();
        let g_before: Vec<Option<SimTime>> =
            ids.iter().map(|&id| scheds[0].guarantee(id)).collect();
        for s in &scheds {
            for (&id, &g) in ids.iter().zip(&g_before) {
                prop_assert_eq!(s.guarantee(id), g);
            }
        }

        // Job 0 completes far before its estimate: the hole opens and each
        // mode compresses its own way.
        let hole = SimTime::new(jobs.len() as u64 + 1);
        for (s, &mode) in scheds.iter_mut().zip(&modes) {
            let d = s.on_completion(JobId(0), hole);
            for (&id, &before) in ids.iter().zip(&g_before) {
                let Some(before) = before else {
                    continue; // started on arrival; was never queued
                };
                match s.guarantee(id) {
                    Some(after) => {
                        prop_assert!(
                            after <= before,
                            "{mode:?} pushed {id} from {before} to {after}"
                        );
                        if matches!(mode, Compression::Backfill | Compression::HeadStart) {
                            // Start-now modes move a job only to start it:
                            // anything still queued is exactly where it was.
                            prop_assert_eq!(
                                after,
                                before,
                                "{:?} moved {} without starting it",
                                mode,
                                id
                            );
                        }
                    }
                    None => {
                        // Started in the hole: it ran at `hole`, no later
                        // than its old promise.
                        prop_assert!(
                            d.starts.contains(&id),
                            "{mode:?}: {id} vanished without starting"
                        );
                        prop_assert!(hole <= before, "{mode:?} started {id} after its promise");
                    }
                }
            }
        }
    }
}
