//! Property-based tests of the availability profile — the data structure
//! every backfilling decision rests on.

use proptest::prelude::*;
use sched::Profile;
use simcore::{SimSpan, SimTime};

/// A random rectangle that always fits an empty machine of `cap`.
fn rect(cap: u32) -> impl Strategy<Value = (u64, u64, u32)> {
    (0u64..5_000, 1u64..2_000, 1u32..=cap.max(1))
        .prop_map(move |(start, dur, width)| (start, dur, width.min(cap)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reserving rectangles found by find_anchor never panics and keeps
    /// the structural invariants.
    #[test]
    fn anchored_reservations_always_fit(
        cap in 1u32..64,
        rects in proptest::collection::vec(rect(64), 0..40),
    ) {
        let mut p = Profile::new(cap);
        for (earliest, dur, width) in rects {
            let width = width.min(cap);
            let dur = SimSpan::new(dur);
            let anchor = p.find_anchor(SimTime::new(earliest), dur, width);
            prop_assert!(anchor >= SimTime::new(earliest));
            p.reserve(anchor, dur, width);
            prop_assert!(p.invariants_ok(), "invariants broken: {:?}", p.segments());
        }
    }

    /// find_anchor returns the *earliest* feasible anchor: the rectangle
    /// does not fit at any profile breakpoint in [earliest, anchor).
    #[test]
    fn anchor_is_earliest_breakpoint(
        pre in proptest::collection::vec(rect(16), 0..12),
        earliest in 0u64..4_000,
        dur in 1u64..1_500,
        width in 1u32..=16,
    ) {
        let cap = 16;
        let mut p = Profile::new(cap);
        for (e, d, w) in pre {
            let a = p.find_anchor(SimTime::new(e), SimSpan::new(d), w);
            p.reserve(a, SimSpan::new(d), w);
        }
        let dur = SimSpan::new(dur);
        let anchor = p.find_anchor(SimTime::new(earliest), dur, width);
        // The anchor itself must fit.
        prop_assert!(p.fits(anchor, dur, width));
        // No earlier candidate fits: checking `earliest` and every segment
        // start in (earliest, anchor) covers all distinct profile shapes.
        if anchor > SimTime::new(earliest) {
            prop_assert!(!p.fits(SimTime::new(earliest), dur, width));
            for seg in p.segments() {
                if seg.start > SimTime::new(earliest) && seg.start < anchor {
                    prop_assert!(
                        !p.fits(seg.start, dur, width),
                        "anchor {anchor} not earliest: fits at {}",
                        seg.start
                    );
                }
            }
        }
    }

    /// reserve followed by the exact inverse release restores the profile.
    #[test]
    fn reserve_release_roundtrip(
        pre in proptest::collection::vec(rect(32), 0..10),
        extra in rect(32),
    ) {
        let cap = 32;
        let mut p = Profile::new(cap);
        for (e, d, w) in pre {
            let a = p.find_anchor(SimTime::new(e), SimSpan::new(d), w);
            p.reserve(a, SimSpan::new(d), w);
        }
        let snapshot = p.clone();
        let (e, d, w) = extra;
        let a = p.find_anchor(SimTime::new(e), SimSpan::new(d), w);
        p.reserve(a, SimSpan::new(d), w);
        p.release(a, SimSpan::new(d), w);
        prop_assert_eq!(p, snapshot);
    }

    /// free_at is consistent with the segment representation and never
    /// exceeds capacity.
    #[test]
    fn free_levels_bounded(
        rects in proptest::collection::vec(rect(16), 0..20),
        probes in proptest::collection::vec(0u64..10_000, 0..30),
    ) {
        let cap = 16;
        let mut p = Profile::new(cap);
        for (e, d, w) in rects {
            let a = p.find_anchor(SimTime::new(e), SimSpan::new(d), w);
            p.reserve(a, SimSpan::new(d), w);
        }
        for t in probes {
            let f = p.free_at(SimTime::new(t));
            prop_assert!(f <= cap);
        }
        // Far future: everything released (all rectangles are finite).
        prop_assert_eq!(p.free_at(SimTime::new(u64::MAX / 4)), cap);
    }

    /// trim_before never changes the future of the profile.
    #[test]
    fn trim_preserves_future(
        rects in proptest::collection::vec(rect(16), 0..15),
        cut in 0u64..8_000,
        probes in proptest::collection::vec(0u64..10_000, 1..20),
    ) {
        let cap = 16;
        let mut p = Profile::new(cap);
        for (e, d, w) in rects {
            let a = p.find_anchor(SimTime::new(e), SimSpan::new(d), w);
            p.reserve(a, SimSpan::new(d), w);
        }
        let before = p.clone();
        p.trim_before(SimTime::new(cut));
        prop_assert!(p.invariants_ok());
        for t in probes {
            let t = t.max(cut);
            prop_assert_eq!(p.free_at(SimTime::new(t)), before.free_at(SimTime::new(t)));
        }
    }

    /// Two disjoint-in-time reservations never interact.
    #[test]
    fn disjoint_reservations_commute(
        d1 in 1u64..500, w1 in 1u32..=8,
        d2 in 1u64..500, w2 in 1u32..=8,
        gap in 0u64..100,
    ) {
        let cap = 8;
        let s1 = 0u64;
        let s2 = s1 + d1 + gap;
        let mut a = Profile::new(cap);
        a.reserve(SimTime::new(s1), SimSpan::new(d1), w1);
        a.reserve(SimTime::new(s2), SimSpan::new(d2), w2);
        let mut b = Profile::new(cap);
        b.reserve(SimTime::new(s2), SimSpan::new(d2), w2);
        b.reserve(SimTime::new(s1), SimSpan::new(d1), w1);
        prop_assert_eq!(a, b);
    }
}
