//! Differential property test: the two-tier ladder [`EventQueue`] against
//! the retained [`HeapEventQueue`] oracle, driven in lockstep over
//! arbitrary push / pop / push_classed interleavings.
//!
//! The contract under test is total-order equality: for every operation
//! sequence, every pop returns the same `(time, payload)` from both
//! structures — including same-instant ties broken by `(class, seq)`,
//! window leaps into and out of the overflow tier, and zero-delay pushes
//! at the current watermark.

use proptest::prelude::*;
use simcore::{EventClass, EventQueue, HeapEventQueue, SimTime};

/// One scripted operation. `dt` offsets from the last popped time so the
/// script can never violate the watermark; small ranges force heavy
/// same-instant collision.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push { dt: u64, class: u8 },
    Pop,
}

fn run_script(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut ladder = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    let mut now = 0u64;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Push { dt, class } => {
                let t = SimTime::new(now + dt);
                let class = EventClass(class);
                ladder.push_classed(t, class, i);
                heap.push_classed(t, class, i);
            }
            Op::Pop => {
                let a = ladder.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b, "pop at step {} diverged", i);
                prop_assert_eq!(ladder.len(), heap.len(), "len at step {}", i);
                if let Some((t, _)) = a {
                    now = t.as_secs();
                }
            }
        }
        prop_assert_eq!(ladder.peek_time(), heap.peek_time(), "peek at step {}", i);
    }
    // Drain: the full remaining order must agree.
    loop {
        let a = ladder.pop();
        let b = heap.pop();
        prop_assert_eq!(a, b, "drain diverged");
        if a.is_none() {
            break;
        }
    }
    Ok(())
}

/// Decode `(selector, dt_raw, class_raw)` triples into ops. `selector`
/// picks pop roughly one time in three; `dt_raw` is folded into bands so
/// the script mixes same-instant pushes (dt = 0), near-window pushes, and
/// far-overflow pushes (dt ≫ the 4096 s near window).
fn decode(raw: &[(u8, u64, u8)]) -> Vec<Op> {
    raw.iter()
        .map(|&(sel, dt_raw, class)| {
            if sel % 3 == 0 {
                Op::Pop
            } else {
                let dt = match dt_raw % 4 {
                    0 => 0,                         // same-instant tie
                    1 => dt_raw % 8,                // dense cluster
                    2 => dt_raw % 3_000,            // inside the near window
                    _ => 4_000 + (dt_raw % 20_000), // straddles/overflows it
                };
                Op::Push { dt, class }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ladder_matches_heap_oracle(raw in proptest::collection::vec(
        (0u8..6, 0u64..1_000_000, 0u8..=255),
        0..300,
    )) {
        run_script(&decode(&raw))?;
    }

    #[test]
    fn ladder_matches_heap_oracle_on_tie_storms(raw in proptest::collection::vec(
        // Classes drawn from {FIRST, NORMAL, LAST} plus two in-between
        // values, dts from {0, 1}: nearly everything collides per instant.
        (0u8..6, 0u64..2, 0u8..5),
        0..200,
    )) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, dt, class_sel)| {
                if sel % 3 == 0 {
                    Op::Pop
                } else {
                    let class = [0u8, 64, 128, 200, 255][class_sel as usize];
                    Op::Push { dt, class }
                }
            })
            .collect();
        run_script(&ops)?;
    }
}
