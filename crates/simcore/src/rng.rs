//! Deterministic pseudo-random number generation for the simulator.
//!
//! The substrate carries its own small RNG rather than depending on the
//! `rand` crate so that simulated traces are **bit-reproducible forever**:
//! a trace generated with seed 42 today must be identical after any
//! dependency upgrade. Two generators are provided:
//!
//! * [`SplitMix64`] — the seeding/stream-splitting generator. Fast, passes
//!   BigCrush, and has the useful property that any seed (including 0) gives
//!   a good stream.
//! * [`Xoshiro256pp`] — xoshiro256++ 1.0, the main workhorse. Seeded from
//!   SplitMix64 per the authors' recommendation.
//!
//! [`SimRng`] wraps xoshiro and layers the sampling helpers the workload
//! models need (floats, bounded ints, Bernoulli, shuffles) plus `split()`,
//! which derives an independent child stream — used so that, e.g., the
//! arrival process and the runtime sampler of a workload model consume
//! separate streams and adding a job field never perturbs arrivals.

/// SplitMix64 (Steele, Lea, Flood 2014). Used for seeding and stream splits.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new generator from a seed. All seeds are valid.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna 2019).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion, per the xoshiro authors' guidance.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // SplitMix64 output is equidistributed, so the all-zero state
        // (the one invalid xoshiro state) occurs with probability 2^-256.
        // Guard anyway: determinism bugs from "impossible" states are the
        // worst kind.
        loop {
            let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
            if s.iter().any(|&w| w != 0) {
                return Xoshiro256pp { s };
            }
        }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The simulator's RNG: deterministic, splittable, with sampling helpers.
///
/// ```
/// use simcore::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // bit-reproducible
/// let die = a.range_inclusive(1, 6);
/// assert!((1..=6).contains(&die));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    core: Xoshiro256pp,
    /// Mixer used to derive child streams; advanced on every `split`.
    splitter: SplitMix64,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            core: Xoshiro256pp::seed_from_u64(seed),
            // Decorrelate the split stream from the value stream.
            splitter: SplitMix64::new(seed ^ 0xA5A5_A5A5_5A5A_5A5A),
        }
    }

    /// Derive an independent child generator. Successive splits from the
    /// same parent yield distinct, decorrelated streams, and splitting does
    /// not consume from the parent's *value* stream.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.splitter.next_u64())
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)` — never exactly zero,
    /// safe as input to `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        loop {
            let x = self.f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform integer in `[0, bound)` via Lemire's unbiased method.
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`. Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: lo={lo} > hi={hi}");
        let width = hi - lo;
        if width == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(width + 1)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element reference. Panics on empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for SplitMix64 with seed 1234567
        // (from the public-domain reference implementation).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        let mut c = Xoshiro256pp::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "f64 out of range: {x}");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SimRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} too far from 0.5");
    }

    #[test]
    fn f64_open_never_zero() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(rng.f64_open() > 0.0);
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10k each; 4-sigma band is about +-400.
            assert!((9_500..10_500).contains(&c), "bucket count {c} suspicious");
        }
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        SimRng::seed_from_u64(0).below(0);
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            match rng.range_inclusive(3, 6) {
                3 => saw_lo = true,
                6 => saw_hi = true,
                4 | 5 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn range_inclusive_full_domain_does_not_panic() {
        let mut rng = SimRng::seed_from_u64(6);
        let _ = rng.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let mut parent = SimRng::seed_from_u64(9);
        let mut a = parent.split();
        let mut b = parent.split();
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_does_not_consume_value_stream() {
        let mut x = SimRng::seed_from_u64(10);
        let mut y = SimRng::seed_from_u64(10);
        let _ = x.split();
        assert_eq!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(12);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input untouched"
        );
    }

    #[test]
    fn choose_picks_all_elements_eventually() {
        let mut rng = SimRng::seed_from_u64(13);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*rng.choose(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
