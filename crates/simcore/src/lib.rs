//! # simcore — deterministic discrete-event simulation substrate
//!
//! The foundation the `backfill-sim` workspace is built on:
//!
//! * [`time`] — integral-second [`SimTime`]/[`SimSpan`] newtypes;
//! * [`rng`] — bit-reproducible xoshiro256++/SplitMix64 generators with
//!   stream splitting;
//! * [`event`] — a deterministic pending-event queue with total tie-breaking;
//! * [`engine`] — a minimal event loop ([`Engine`]/[`Actor`]);
//! * [`machine`] — the space-shared processor pool model ([`Machine`]);
//! * [`validate`] — independent post-hoc schedule auditing;
//! * [`error`] — substrate error types.
//!
//! Nothing in this crate knows about jobs' runtimes, estimates, queues, or
//! backfilling — those live in the `workload` and `sched` crates.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod event;
pub mod machine;
pub mod rng;
pub mod time;
pub mod validate;

pub use engine::{Actor, Ctx, Engine, Hook};
pub use error::SimError;
pub use event::{EventClass, EventQueue, HeapEventQueue};
pub use machine::{JobId, Machine};
pub use rng::{SimRng, SplitMix64, Xoshiro256pp};
pub use time::{SimSpan, SimTime};
pub use validate::{schedule_utilization, validate_schedule, PlacedJob};
