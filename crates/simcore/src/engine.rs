//! A minimal, deterministic discrete-event simulation engine.
//!
//! The engine owns the clock and the pending-event set; domain logic lives in
//! an [`Actor`] that receives each event together with a scheduling context.
//! Determinism guarantees:
//!
//! * the clock never moves backwards;
//! * simultaneous events fire in `(class, insertion order)` — a total order;
//! * the engine itself holds no hidden randomness.

use crate::event::{EventClass, EventQueue};
use crate::time::SimTime;

/// Handle through which an [`Actor`] schedules future events while one is
/// being processed.
pub struct Ctx<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<E> Ctx<'_, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (must be `>= now`).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Schedule `event` at `at` with an explicit simultaneity class.
    pub fn schedule_classed(&mut self, at: SimTime, class: EventClass, event: E) {
        self.queue.push_classed(at, class, event);
    }
}

/// Domain logic plugged into the engine.
pub trait Actor<E> {
    /// Handle one event. New events may be scheduled through `ctx`.
    fn handle(&mut self, event: E, ctx: &mut Ctx<'_, E>);
}

/// A loop boundary reported by [`Engine::run_hooked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hook {
    /// The queue pop just finished (the handler has not run yet; on the
    /// final iteration the pop found nothing and the loop is about to
    /// exit).
    Popped,
    /// The actor's handler for the popped event just returned.
    Handled,
}

/// The discrete-event engine.
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Create an engine with an empty event set at `t = 0`.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seed an initial event before running.
    pub fn prime(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Seed an initial event with an explicit class.
    pub fn prime_classed(&mut self, at: SimTime, class: EventClass, event: E) {
        self.queue.push_classed(at, class, event);
    }

    /// Process a single event, if any. Returns `false` when the event set is
    /// exhausted.
    pub fn step(&mut self, actor: &mut impl Actor<E>) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        self.now = time;
        self.processed += 1;
        let mut ctx = Ctx {
            queue: &mut self.queue,
            now: time,
        };
        actor.handle(event, &mut ctx);
        true
    }

    /// Run until no events remain.
    pub fn run(&mut self, actor: &mut impl Actor<E>) {
        while self.step(actor) {}
    }

    /// Like [`Engine::run`], but invokes `mark` at both boundaries of
    /// every loop iteration: [`Hook::Popped`] right after the queue pop
    /// (including the final, draining pop that finds nothing) and
    /// [`Hook::Handled`] right after the actor's handler returns. The
    /// engine itself never reads a clock — the caller timestamps inside
    /// `mark`, so consecutive phases share their boundary reading (one
    /// clock read per mark, chained across iterations) instead of
    /// paying a start/stop pair per phase. The hooks keep this crate
    /// observability-agnostic, and they are strictly observational:
    /// event order and the simulated clock are identical to
    /// [`Engine::run`].
    pub fn run_hooked(&mut self, actor: &mut impl Actor<E>, mark: &mut impl FnMut(Hook)) {
        loop {
            let popped = self.queue.pop();
            mark(Hook::Popped);
            let Some((time, event)) = popped else {
                return;
            };
            self.now = time;
            self.processed += 1;
            let mut ctx = Ctx {
                queue: &mut self.queue,
                now: time,
            };
            actor.handle(event, &mut ctx);
            mark(Hook::Handled);
        }
    }

    /// Run until no events remain or `limit` events have been processed
    /// (a runaway guard for schedulers that might self-schedule forever).
    /// Returns `true` if the event set drained before the limit.
    pub fn run_bounded(&mut self, actor: &mut impl Actor<E>, limit: u64) -> bool {
        let start = self.processed;
        while self.processed - start < limit {
            if !self.step(actor) {
                return true;
            }
        }
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An actor that records event order and spawns follow-ups.
    struct Recorder {
        seen: Vec<(u64, &'static str)>,
    }

    impl Actor<&'static str> for Recorder {
        fn handle(&mut self, event: &'static str, ctx: &mut Ctx<'_, &'static str>) {
            self.seen.push((ctx.now().as_secs(), event));
            if event == "spawn" {
                ctx.schedule(ctx.now() + crate::time::SimSpan::new(5), "child");
            }
        }
    }

    #[test]
    fn runs_events_in_order_and_children_fire() {
        let mut engine = Engine::new();
        engine.prime(SimTime::new(10), "spawn");
        engine.prime(SimTime::new(1), "first");
        let mut actor = Recorder { seen: vec![] };
        engine.run(&mut actor);
        assert_eq!(actor.seen, vec![(1, "first"), (10, "spawn"), (15, "child")]);
        assert_eq!(engine.processed(), 3);
        assert_eq!(engine.now(), SimTime::new(15));
    }

    #[test]
    fn run_hooked_matches_run_and_marks_every_boundary() {
        let mut plain = Engine::new();
        plain.prime(SimTime::new(10), "spawn");
        plain.prime(SimTime::new(1), "first");
        let mut plain_actor = Recorder { seen: vec![] };
        plain.run(&mut plain_actor);

        let mut hooked = Engine::new();
        hooked.prime(SimTime::new(10), "spawn");
        hooked.prime(SimTime::new(1), "first");
        let mut hooked_actor = Recorder { seen: vec![] };
        let (mut pops, mut handles) = (0u64, 0u64);
        let mut last = None;
        hooked.run_hooked(&mut hooked_actor, &mut |h| {
            match h {
                Hook::Popped => pops += 1,
                Hook::Handled => handles += 1,
            }
            // Boundaries strictly alternate: every handle follows a pop.
            assert_ne!(last, Some(h), "consecutive identical hooks");
            last = Some(h);
        });

        assert_eq!(hooked_actor.seen, plain_actor.seen, "hooks are neutral");
        assert_eq!(hooked.processed(), plain.processed());
        // One pop per processed event plus the final drained pop; one
        // handle mark per processed event.
        assert_eq!(pops, hooked.processed() + 1);
        assert_eq!(handles, hooked.processed());
    }

    #[test]
    fn step_returns_false_when_drained() {
        let mut engine: Engine<&str> = Engine::new();
        let mut actor = Recorder { seen: vec![] };
        assert!(!engine.step(&mut actor));
    }

    #[test]
    fn run_bounded_stops_runaways() {
        struct Forever;
        impl Actor<()> for Forever {
            fn handle(&mut self, _: (), ctx: &mut Ctx<'_, ()>) {
                ctx.schedule(ctx.now() + crate::time::SimSpan::SECOND, ());
            }
        }
        let mut engine = Engine::new();
        engine.prime(SimTime::ZERO, ());
        assert!(!engine.run_bounded(&mut Forever, 1000));
        assert_eq!(engine.processed(), 1000);
    }

    #[test]
    fn zero_delay_self_schedule_is_legal() {
        struct Once(bool);
        impl Actor<u32> for Once {
            fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
                if ev == 0 && !self.0 {
                    self.0 = true;
                    ctx.schedule(ctx.now(), 1);
                }
            }
        }
        let mut engine = Engine::new();
        engine.prime(SimTime::new(3), 0);
        let mut a = Once(false);
        engine.run(&mut a);
        assert_eq!(engine.processed(), 2);
        assert_eq!(engine.now(), SimTime::new(3));
    }
}
