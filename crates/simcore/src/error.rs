//! Error types for the simulation substrate.

use std::fmt;

/// Errors surfaced by the substrate. Most indicate scheduler bugs (the
/// simulator is deterministic, so none of these are "operational" errors),
/// which is why the driver treats them as fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A job asked for more processors than are currently free.
    OverSubscribed {
        /// The offending job.
        job: u32,
        /// Processors requested.
        requested: u32,
        /// Processors actually free.
        free: u32,
    },
    /// A job asked for zero processors.
    ZeroWidthAllocation {
        /// The offending job.
        job: u32,
    },
    /// A job was allocated twice without an intervening release.
    DoubleAllocation {
        /// The offending job.
        job: u32,
    },
    /// A job released processors it never held.
    ReleaseWithoutAllocation {
        /// The offending job.
        job: u32,
    },
    /// A job requests more processors than the machine has in total, so it
    /// can never be scheduled.
    JobWiderThanMachine {
        /// The offending job.
        job: u32,
        /// Processors requested.
        width: u32,
        /// Machine size.
        machine: u32,
    },
    /// A schedule audit found a constraint violation.
    AuditFailure(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OverSubscribed {
                job,
                requested,
                free,
            } => write!(
                f,
                "job#{job} requested {requested} processors but only {free} are free"
            ),
            SimError::ZeroWidthAllocation { job } => {
                write!(f, "job#{job} requested zero processors")
            }
            SimError::DoubleAllocation { job } => {
                write!(f, "job#{job} allocated twice without release")
            }
            SimError::ReleaseWithoutAllocation { job } => {
                write!(f, "job#{job} released processors it never held")
            }
            SimError::JobWiderThanMachine {
                job,
                width,
                machine,
            } => write!(
                f,
                "job#{job} requests {width} processors but the machine only has {machine}"
            ),
            SimError::AuditFailure(msg) => write!(f, "schedule audit failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::OverSubscribed {
            job: 3,
            requested: 8,
            free: 2,
        };
        assert!(e.to_string().contains("job#3"));
        assert!(e.to_string().contains("8"));
        assert!(e.to_string().contains("2"));
        let e = SimError::JobWiderThanMachine {
            job: 1,
            width: 600,
            machine: 430,
        };
        assert!(e.to_string().contains("600"));
        let e = SimError::AuditFailure("cap".into());
        assert!(e.to_string().contains("cap"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(SimError::ZeroWidthAllocation { job: 0 });
    }
}
