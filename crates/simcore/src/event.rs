//! The pending-event set of the discrete-event engine.
//!
//! [`EventQueue`] is a priority queue keyed by `(time, class, seq)`:
//!
//! * `time` — the simulated instant the event fires;
//! * `class` — a small integer used to order *simultaneous* events
//!   deterministically (e.g. process completions before arrivals so a
//!   departing job's processors are visible to a job arriving at the same
//!   second);
//! * `seq` — a monotonically increasing insertion counter that breaks all
//!   remaining ties, making the pop order a total order and the whole
//!   simulation reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Ordering class for events that fire at the same instant.
/// Lower values fire first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventClass(pub u8);

impl EventClass {
    /// Fires before everything else at the same instant.
    pub const FIRST: EventClass = EventClass(0);
    /// Default class.
    pub const NORMAL: EventClass = EventClass(128);
    /// Fires after everything else at the same instant.
    pub const LAST: EventClass = EventClass(255);
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    class: EventClass,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry is popped
        // first.
        (other.time, other.class, other.seq).cmp(&(self.time, self.class, self.seq))
    }
}

/// A deterministic min-priority queue of simulation events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Time of the most recently popped event; pushes earlier than this are
    /// causality violations and panic.
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at `time` with the default class.
    ///
    /// # Panics
    /// If `time` is earlier than the last popped event (scheduling into the
    /// past breaks causality and always indicates a scheduler bug).
    pub fn push(&mut self, time: SimTime, payload: E) {
        self.push_classed(time, EventClass::NORMAL, payload);
    }

    /// Schedule `payload` at `time` with an explicit simultaneity class.
    pub fn push_classed(&mut self, time: SimTime, class: EventClass, payload: E) {
        assert!(
            time >= self.watermark,
            "event scheduled in the past: {time} < watermark {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            class,
            seq,
            payload,
        });
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.watermark);
        self.watermark = entry.time;
        Some((entry.time, entry.payload))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(30), "c");
        q.push(SimTime::new(10), "a");
        q.push(SimTime::new(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::new(10), "a"),
                (SimTime::new(20), "b"),
                (SimTime::new(30), "c"),
            ]
        );
    }

    #[test]
    fn simultaneous_events_respect_class_then_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::new(5);
        q.push_classed(t, EventClass::LAST, "late");
        q.push_classed(t, EventClass::NORMAL, "n1");
        q.push_classed(t, EventClass::FIRST, "early");
        q.push_classed(t, EventClass::NORMAL, "n2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["early", "n1", "n2", "late"]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::new(7), ());
        q.push(SimTime::new(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::new(7)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::new(1), ());
        q.push(SimTime::new(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_push_after_pop_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(10), 1);
        let (t, _) = q.pop().unwrap();
        // Scheduling at exactly `now` is legal (zero-delay wakeups).
        q.push(t, 2);
        assert_eq!(q.pop(), Some((SimTime::new(10), 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(10), ());
        q.pop();
        q.push(SimTime::new(5), ());
    }

    #[test]
    fn large_interleaved_workload_stays_sorted() {
        let mut q = EventQueue::new();
        // Insert a pseudo-random but deterministic pattern of times.
        let mut x: u64 = 0x12345;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(SimTime::new(x >> 40), x);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
