//! The pending-event set of the discrete-event engine.
//!
//! [`EventQueue`] is a priority queue keyed by `(time, class, seq)`:
//!
//! * `time` — the simulated instant the event fires;
//! * `class` — a small integer used to order *simultaneous* events
//!   deterministically (e.g. process completions before arrivals so a
//!   departing job's processors are visible to a job arriving at the same
//!   second);
//! * `seq` — a monotonically increasing insertion counter that breaks all
//!   remaining ties, making the pop order a total order and the whole
//!   simulation reproducible.
//!
//! # The ladder layout
//!
//! The queue exploits what a general-purpose heap cannot: simulation time
//! only moves forward (pushing before the last popped instant panics), so
//! the pending set splits into a **near tier** — a ring of one-second
//! buckets covering the `NEAR_WINDOW` seconds after the current window
//! origin, addressed by `time % NEAR_WINDOW` in O(1) — and an **overflow
//! tier** holding everything pushed at or past the window's horizon in a
//! binary min-heap over the same `(time, class, seq)` key. The ring is
//! deliberately small (64 buckets, a single `u64` occupancy bitmap): it
//! exists for the *imminent* cluster — zero-delay wake-ups and
//! same-instant class-ordered events, the simulator's highest-frequency
//! traffic — and the whole tier stays L1-resident. Pops find the ring's
//! earliest occupied bucket with one shift and one `trailing_zeros` on
//! the bitmap — no comparisons, no walk.
//!
//! An event lives in exactly one tier for its whole life — there is **no
//! migration**. A push lands in the ring iff its instant is inside the
//! current window, in the heap otherwise; a pop compares the ring's
//! earliest entry against the heap's top under the full `(time, class,
//! seq)` order and takes the smaller. That comparison is what keeps the
//! order exact even though the tiers may *overlap* in time: whenever the
//! ring goes idle, the window re-anchors at the instant just popped so
//! near-future pushes ride the ring again, and heap entries pushed
//! before the re-anchor may now fall inside the window. The payoff is
//! that a time-sparse stretch (events further apart than the window)
//! costs exactly a binary-heap pop — no window bookkeeping, no double
//! handling — while clustered traffic pushes and pops through the O(1)
//! ring without ever touching the heap. Ring buckets keep their storage
//! parked in their slot between uses, so a steady-state run stops
//! allocating on the event path.
//!
//! Simultaneous events sharing a bucket are resolved by a linear
//! min-scan over `(class, seq)` at pop time — buckets hold the handful
//! of events of one simulated second, so this beats keeping each bucket
//! sorted on insert.
//!
//! The pre-ladder binary heap survives as [`HeapEventQueue`]: the
//! differential oracle for the property tests
//! (`tests/event_queue_differential.rs`), and — with the `heap-oracle`
//! feature enabled — a shadow queue run in lockstep *inside*
//! [`EventQueue`], asserting every pop against the heap's answer.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Ordering class for events that fire at the same instant.
/// Lower values fire first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventClass(pub u8);

impl EventClass {
    /// Fires before everything else at the same instant.
    pub const FIRST: EventClass = EventClass(0);
    /// Default class.
    pub const NORMAL: EventClass = EventClass(128);
    /// Fires after everything else at the same instant.
    pub const LAST: EventClass = EventClass(255);
}

/// Width of the near tier, in one-second buckets. Pinned at 64 so the
/// occupancy bitmap is a single `u64` and the ring (64 `Vec` headers,
/// ~1.5 KiB) stays L1-resident. The pending set is shallow in steady
/// state (arrivals are seeded lazily), so a wider window would only
/// grow the tier's cache footprint past what a small binary heap costs;
/// one minute is enough to absorb the zero-delay wake-ups and
/// same-instant clusters that dominate the event traffic, and the
/// overflow heap takes the sparse tail at its native cost.
const NEAR_WINDOW: u64 = 64;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    class: EventClass,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry is popped
        // first.
        (other.time, other.class, other.seq).cmp(&(self.time, self.class, self.seq))
    }
}

/// One pending event inside a bucket; the firing time is the bucket's key.
#[derive(Debug)]
struct Pending<E> {
    class: EventClass,
    seq: u64,
    payload: E,
}

/// The pre-ladder event queue: a plain `BinaryHeap` over
/// `(time, class, seq)`. Kept as the **differential oracle** — the
/// property test drives it in lockstep with the ladder queue over
/// arbitrary interleavings, and the `heap-oracle` feature embeds it in
/// [`EventQueue`] to assert every pop at runtime. Semantics are identical
/// by definition: both structures realize the same total order.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    watermark: SimTime,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at `time` with the default class.
    pub fn push(&mut self, time: SimTime, payload: E) {
        self.push_classed(time, EventClass::NORMAL, payload);
    }

    /// Schedule `payload` at `time` with an explicit simultaneity class.
    pub fn push_classed(&mut self, time: SimTime, class: EventClass, payload: E) {
        assert!(
            time >= self.watermark,
            "event scheduled in the past: {time} < watermark {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            class,
            seq,
            payload,
        });
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(t, _, _, p)| (t, p))
    }

    /// Like `pop`, exposing the full `(time, class, seq, payload)` key —
    /// what the differential tests compare.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, EventClass, u64, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.watermark);
        self.watermark = entry.time;
        Some((entry.time, entry.class, entry.seq, entry.payload))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

/// A deterministic min-priority queue of simulation events (see the
/// module docs for the two-tier ladder layout).
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near tier: `NEAR_WINDOW` one-second buckets, slot = `time %
    /// NEAR_WINDOW`. The window `[horizon - NEAR_WINDOW, horizon)` is
    /// exactly `NEAR_WINDOW` wide, so each in-window instant owns its
    /// slot exclusively.
    near: Vec<Vec<Pending<E>>>,
    /// Occupancy bitmap over `near` (bit = slot holds ≥ 1 event); a
    /// single word because the ring is exactly 64 buckets wide.
    occ: u64,
    /// Events currently in the near tier.
    near_len: usize,
    /// Exclusive end of the near window, in raw seconds.
    horizon: u64,
    /// Overflow tier: events pushed with instants at or past the
    /// then-current `horizon`, in a binary min-heap over `(time, class,
    /// seq)` (the `Entry` ordering is inverted for `BinaryHeap`'s
    /// max-heap). Re-anchoring can move `horizon` past entries already
    /// here, so the tiers may overlap in time — `pop` compares both.
    far: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Time of the most recently popped event; pushes earlier than this are
    /// causality violations and panic.
    watermark: SimTime,
    /// Shadow heap asserting every pop (feature-gated differential oracle).
    #[cfg(feature = "heap-oracle")]
    oracle: HeapEventQueue<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        let mut near = Vec::with_capacity(NEAR_WINDOW as usize);
        near.resize_with(NEAR_WINDOW as usize, Vec::new);
        EventQueue {
            near,
            occ: 0,
            near_len: 0,
            horizon: NEAR_WINDOW,
            far: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
            #[cfg(feature = "heap-oracle")]
            oracle: HeapEventQueue::new(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at `time` with the default class.
    ///
    /// # Panics
    /// If `time` is earlier than the last popped event (scheduling into the
    /// past breaks causality and always indicates a scheduler bug).
    pub fn push(&mut self, time: SimTime, payload: E) {
        self.push_classed(time, EventClass::NORMAL, payload);
    }

    /// Schedule `payload` at `time` with an explicit simultaneity class.
    pub fn push_classed(&mut self, time: SimTime, class: EventClass, payload: E) {
        assert!(
            time >= self.watermark,
            "event scheduled in the past: {time} < watermark {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        #[cfg(feature = "heap-oracle")]
        self.oracle.push_classed(time, class, seq);
        // `watermark < horizon` after every pop (ring instants are below
        // the horizon; a far pop with the ring idle re-anchors), so a
        // zero-delay push always lands in the ring with no extra check
        // here. After a long idle jump the first event takes one heap
        // round-trip and the pop that retires it re-anchors the window.
        let t = time.as_secs();
        if t < self.horizon {
            // In-window: the ring slot is exclusively this instant's.
            let slot = (t % NEAR_WINDOW) as usize;
            self.near[slot].push(Pending {
                class,
                seq,
                payload,
            });
            self.occ |= 1u64 << slot;
            self.near_len += 1;
        } else {
            self.far.push(Entry {
                time,
                class,
                seq,
                payload,
            });
        }
    }

    /// Remove and return the earliest event as `(time, payload)`.
    ///
    /// The ring-idle case is the inlined fast path — a sparse stretch
    /// costs exactly a heap pop plus the window re-anchor; the mixed
    /// two-tier comparison lives out of line so the common case stays
    /// small enough to inline into the engine's dispatch loop.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.near_len == 0 {
            let e = self.far.pop()?;
            // Ring idle: re-anchor the window at the popped instant so
            // near-future pushes ride the ring again. Only legal with
            // the ring empty — each window owns its slots exclusively.
            let h = e.time.as_secs() + NEAR_WINDOW;
            if h > self.horizon {
                self.horizon = h;
            }
            return Some(self.finish_pop(e.time, e.class, e.seq, e.payload));
        }
        self.pop_mixed()
    }

    /// Pop with the ring occupied. The tiers may overlap in time after a
    /// re-anchor (see the module docs), so the ring's earliest entry is
    /// compared against the heap's top under the full `(time, class,
    /// seq)` order and the smaller one is taken.
    #[inline(never)]
    fn pop_mixed(&mut self) -> Option<(SimTime, E)> {
        let t = self
            .next_occupied(self.scan_start())
            .expect("near tier non-empty but no occupied slot");
        let slot = (t % NEAR_WINDOW) as usize;
        let bucket = &self.near[slot];
        // Simultaneous events: linear min over (class, seq). Buckets
        // hold one second's worth of events, so this is a handful of
        // compares.
        let mut best = 0;
        for i in 1..bucket.len() {
            if (bucket[i].class, bucket[i].seq) < (bucket[best].class, bucket[best].seq) {
                best = i;
            }
        }
        let far_wins = match self.far.peek() {
            Some(top) => {
                let b = &bucket[best];
                (top.time.as_secs(), top.class, top.seq) < (t, b.class, b.seq)
            }
            None => false,
        };
        if far_wins {
            // The ring stays occupied, so the window must not move.
            let e = self.far.pop().expect("peeked entry vanished");
            return Some(self.finish_pop(e.time, e.class, e.seq, e.payload));
        }
        let entry = self.near[slot].swap_remove(best);
        if self.near[slot].is_empty() {
            // Keep the bucket's capacity parked in its slot — the next
            // event hashing here reuses it without allocating.
            self.occ &= !(1u64 << slot);
        }
        self.near_len -= 1;
        Some(self.finish_pop(SimTime::new(t), entry.class, entry.seq, entry.payload))
    }

    /// Common pop tail: advance the watermark (and run the shadow-heap
    /// assertion under `heap-oracle`).
    #[inline]
    fn finish_pop(
        &mut self,
        time: SimTime,
        class: EventClass,
        seq: u64,
        payload: E,
    ) -> (SimTime, E) {
        debug_assert!(time >= self.watermark);
        self.watermark = time;
        #[cfg(feature = "heap-oracle")]
        {
            let (ot, oc, os, _) = self.oracle.pop_keyed().expect("oracle under-full");
            assert_eq!(
                (ot, oc, os),
                (time, class, seq),
                "ladder queue diverged from heap oracle"
            );
        }
        #[cfg(not(feature = "heap-oracle"))]
        let _ = (class, seq);
        (time, payload)
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let near = if self.near_len > 0 {
            Some(
                self.next_occupied(self.scan_start())
                    .expect("near tier non-empty but no occupied slot"),
            )
        } else {
            None
        };
        let far = self.far.peek().map(|e| e.time.as_secs());
        // Tiers may overlap in time after a re-anchor: take the min.
        match (near, far) {
            (None, None) => None,
            (Some(t), None) | (None, Some(t)) => Some(SimTime::new(t)),
            (Some(a), Some(b)) => Some(SimTime::new(a.min(b))),
        }
    }

    /// First instant worth scanning: nothing lives below the watermark,
    /// and nothing below the window origin is in the ring.
    fn scan_start(&self) -> u64 {
        self.watermark.as_secs().max(self.horizon - NEAR_WINDOW)
    }

    /// Earliest occupied instant in `[start, horizon)`, via the one-word
    /// bitmap: a shift aligns the word to `start`'s slot and
    /// `trailing_zeros` names the next occupied slot — O(1), no walk.
    ///
    /// The scan follows the ring in slot order starting at `start`'s
    /// slot; slot order *is* time order here because every pending near
    /// instant lies in `[start, horizon)` (nothing below the watermark or
    /// the window origin is occupied), a span of at most `NEAR_WINDOW`
    /// seconds. Ring positions "behind" the start slot therefore hold the
    /// *latest* times of the window — they are the wrapped tail, checked
    /// second, not skipped.
    fn next_occupied(&self, start: u64) -> Option<u64> {
        let slot = (start % NEAR_WINDOW) as usize;
        let head = self.occ >> slot;
        if head != 0 {
            let cand = start + head.trailing_zeros() as u64;
            // A set bit names an occupied slot; slots are exclusive to one
            // in-window instant, so the bit at distance d from `start` is
            // exactly the instant `start + d` — if still inside the window.
            return (cand < self.horizon).then_some(cand);
        }
        // Wrapped tail: the bits below `slot` are the ring positions just
        // behind it — the window's final instants.
        let tail = self.occ & ((1u64 << slot) - 1);
        if tail != 0 {
            let target = tail.trailing_zeros() as usize;
            let delta = (target + NEAR_WINDOW as usize - slot) % NEAR_WINDOW as usize;
            let cand = start + delta as u64;
            return (cand < self.horizon).then_some(cand);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(30), "c");
        q.push(SimTime::new(10), "a");
        q.push(SimTime::new(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::new(10), "a"),
                (SimTime::new(20), "b"),
                (SimTime::new(30), "c"),
            ]
        );
    }

    #[test]
    fn simultaneous_events_respect_class_then_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::new(5);
        q.push_classed(t, EventClass::LAST, "late");
        q.push_classed(t, EventClass::NORMAL, "n1");
        q.push_classed(t, EventClass::FIRST, "early");
        q.push_classed(t, EventClass::NORMAL, "n2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["early", "n1", "n2", "late"]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::new(7), ());
        q.push(SimTime::new(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::new(7)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::new(1), ());
        q.push(SimTime::new(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_push_after_pop_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(10), 1);
        let (t, _) = q.pop().unwrap();
        // Scheduling at exactly `now` is legal (zero-delay wakeups).
        q.push(t, 2);
        assert_eq!(q.pop(), Some((SimTime::new(10), 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(10), ());
        q.pop();
        q.push(SimTime::new(5), ());
    }

    #[test]
    fn large_interleaved_workload_stays_sorted() {
        let mut q = EventQueue::new();
        // Insert a pseudo-random but deterministic pattern of times.
        let mut x: u64 = 0x12345;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(SimTime::new(x >> 40), x);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn events_past_the_horizon_take_the_overflow_tier_and_come_back() {
        let mut q = EventQueue::new();
        // Far beyond the initial window, out of order, with a window-leap
        // between each cluster.
        for &t in &[NEAR_WINDOW * 100 + 7, 3, NEAR_WINDOW * 3, NEAR_WINDOW - 1] {
            q.push(SimTime::new(t), t);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(
            popped,
            vec![3, NEAR_WINDOW - 1, NEAR_WINDOW * 3, NEAR_WINDOW * 100 + 7]
        );
    }

    #[test]
    fn class_and_seq_ties_survive_the_overflow_tier() {
        let mut q = EventQueue::new();
        let t = SimTime::new(NEAR_WINDOW * 5 + 17); // lands in overflow
        q.push_classed(t, EventClass::LAST, "late");
        q.push_classed(t, EventClass::FIRST, "early");
        q.push_classed(t, EventClass::NORMAL, "n1");
        q.push_classed(t, EventClass::NORMAL, "n2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["early", "n1", "n2", "late"]);
    }

    #[test]
    fn window_reanchors_after_draining() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(NEAR_WINDOW * 10), 1);
        assert_eq!(q.pop(), Some((SimTime::new(NEAR_WINDOW * 10), 1)));
        // The queue is empty at a large watermark; a push near the
        // watermark must land (and pop) correctly.
        q.push(SimTime::new(NEAR_WINDOW * 10 + 1), 2);
        q.push(SimTime::new(NEAR_WINDOW * 10), 3);
        assert_eq!(q.pop(), Some((SimTime::new(NEAR_WINDOW * 10), 3)));
        assert_eq!(q.pop(), Some((SimTime::new(NEAR_WINDOW * 10 + 1), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn heap_oracle_agrees_on_a_mixed_workload() {
        // The ladder and the retained heap oracle, driven in lockstep over
        // a deterministic interleaving with same-instant ties.
        let mut ladder = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut x: u64 = 0xdecafbad;
        let step = |x: &mut u64| {
            *x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *x
        };
        let mut now = 0u64;
        for i in 0..20_000u64 {
            let r = step(&mut x);
            if r % 3 == 0 && !ladder.is_empty() {
                let a = ladder.pop();
                let b = heap.pop();
                assert_eq!(a, b, "pop {i} diverged");
                now = a.unwrap().0.as_secs();
            } else {
                // Cluster times to force ties and window leaps alike.
                let dt = match r % 5 {
                    0 => 0,
                    1 => r % 7,
                    2 => r % 600,
                    _ => r % (NEAR_WINDOW * 3),
                };
                let class = EventClass((r >> 32) as u8);
                let t = SimTime::new(now + dt);
                ladder.push_classed(t, class, i);
                heap.push_classed(t, class, i);
            }
        }
        loop {
            let a = ladder.pop();
            let b = heap.pop();
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }
}
