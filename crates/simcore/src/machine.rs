//! The machine model: a homogeneous pool of processors under space sharing.
//!
//! This mirrors the systems the paper simulates (IBM SP2s at CTC and SDSC):
//! a job requests `width` processors, holds exactly that many for its whole
//! runtime, and releases them on completion. The machine keeps an allocation
//! ledger so that double-release and over-subscription are hard errors, and
//! integrates busy processor-seconds over time so utilization can be reported
//! without replaying the schedule.

use crate::error::SimError;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies a job throughout the simulator. Dense indices into the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A space-shared machine with `total` identical processors.
#[derive(Debug, Clone)]
pub struct Machine {
    total: u32,
    in_use: u32,
    allocations: HashMap<JobId, u32>,
    /// Busy processor-seconds accumulated up to `last_update`.
    busy_integral: u128,
    last_update: SimTime,
    peak_in_use: u32,
}

impl Machine {
    /// Create a machine with `total` processors. Panics if `total == 0`.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "a machine needs at least one processor");
        Machine {
            total,
            in_use: 0,
            allocations: HashMap::new(),
            busy_integral: 0,
            last_update: SimTime::ZERO,
            peak_in_use: 0,
        }
    }

    /// Total processor count.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Processors currently allocated.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Processors currently free.
    pub fn free(&self) -> u32 {
        self.total - self.in_use
    }

    /// Highest instantaneous allocation seen so far.
    pub fn peak_in_use(&self) -> u32 {
        self.peak_in_use
    }

    /// Number of currently running jobs.
    pub fn running_jobs(&self) -> usize {
        self.allocations.len()
    }

    /// True if `width` processors could be allocated right now.
    pub fn fits(&self, width: u32) -> bool {
        width <= self.free()
    }

    fn advance_to(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "machine clock moved backwards");
        let dt = now.since(self.last_update);
        self.busy_integral += self.in_use as u128 * dt.as_secs() as u128;
        self.last_update = now;
    }

    /// Allocate `width` processors to `job` at time `now`.
    pub fn allocate(&mut self, job: JobId, width: u32, now: SimTime) -> Result<(), SimError> {
        if width == 0 {
            return Err(SimError::ZeroWidthAllocation { job: job.0 });
        }
        if width > self.free() {
            return Err(SimError::OverSubscribed {
                job: job.0,
                requested: width,
                free: self.free(),
            });
        }
        if self.allocations.contains_key(&job) {
            return Err(SimError::DoubleAllocation { job: job.0 });
        }
        self.advance_to(now);
        self.in_use += width;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        self.allocations.insert(job, width);
        Ok(())
    }

    /// Release the processors held by `job` at time `now`.
    pub fn release(&mut self, job: JobId, now: SimTime) -> Result<u32, SimError> {
        let width = self
            .allocations
            .remove(&job)
            .ok_or(SimError::ReleaseWithoutAllocation { job: job.0 })?;
        self.advance_to(now);
        self.in_use -= width;
        Ok(width)
    }

    /// Busy processor-seconds accumulated over `[SimTime::ZERO, now]`.
    pub fn busy_proc_seconds(&self, now: SimTime) -> u128 {
        debug_assert!(now >= self.last_update);
        self.busy_integral + self.in_use as u128 * now.since(self.last_update).as_secs() as u128
    }

    /// Mean utilization over the window `[from, to]`, in `[0, 1]`.
    ///
    /// Only meaningful when `from` is `SimTime::ZERO` or no allocations
    /// changed before `from`; the driver measures from first arrival with a
    /// machine that was idle before it, which satisfies this.
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.since(from);
        if span.is_zero() {
            return 0.0;
        }
        let busy = self.busy_proc_seconds(to);
        busy as f64 / (self.total as f64 * span.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut m = Machine::new(16);
        m.allocate(JobId(1), 4, SimTime::new(0)).unwrap();
        assert_eq!(m.free(), 12);
        assert_eq!(m.in_use(), 4);
        assert_eq!(m.running_jobs(), 1);
        let w = m.release(JobId(1), SimTime::new(10)).unwrap();
        assert_eq!(w, 4);
        assert_eq!(m.free(), 16);
        assert_eq!(m.running_jobs(), 0);
    }

    #[test]
    fn oversubscription_is_rejected() {
        let mut m = Machine::new(8);
        m.allocate(JobId(1), 6, SimTime::ZERO).unwrap();
        let err = m.allocate(JobId(2), 3, SimTime::ZERO).unwrap_err();
        assert!(matches!(
            err,
            SimError::OverSubscribed {
                requested: 3,
                free: 2,
                ..
            }
        ));
    }

    #[test]
    fn zero_width_is_rejected() {
        let mut m = Machine::new(8);
        assert!(matches!(
            m.allocate(JobId(1), 0, SimTime::ZERO),
            Err(SimError::ZeroWidthAllocation { .. })
        ));
    }

    #[test]
    fn double_allocation_is_rejected() {
        let mut m = Machine::new(8);
        m.allocate(JobId(1), 2, SimTime::ZERO).unwrap();
        assert!(matches!(
            m.allocate(JobId(1), 2, SimTime::ZERO),
            Err(SimError::DoubleAllocation { .. })
        ));
    }

    #[test]
    fn release_without_allocation_is_rejected() {
        let mut m = Machine::new(8);
        assert!(matches!(
            m.release(JobId(9), SimTime::ZERO),
            Err(SimError::ReleaseWithoutAllocation { .. })
        ));
    }

    #[test]
    fn fits_checks_free_capacity() {
        let mut m = Machine::new(8);
        assert!(m.fits(8));
        m.allocate(JobId(1), 5, SimTime::ZERO).unwrap();
        assert!(m.fits(3));
        assert!(!m.fits(4));
        // Width 0 trivially "fits" capacity-wise but allocate() rejects it.
        assert!(m.fits(0));
    }

    #[test]
    fn busy_integral_accumulates() {
        let mut m = Machine::new(10);
        m.allocate(JobId(1), 10, SimTime::new(0)).unwrap(); // 10 procs for 10 s
        m.release(JobId(1), SimTime::new(10)).unwrap();
        m.allocate(JobId(2), 5, SimTime::new(10)).unwrap(); // 5 procs for 10 s
        m.release(JobId(2), SimTime::new(20)).unwrap();
        assert_eq!(m.busy_proc_seconds(SimTime::new(20)), 150);
        // Idle tail contributes nothing.
        assert_eq!(m.busy_proc_seconds(SimTime::new(30)), 150);
    }

    #[test]
    fn busy_integral_counts_still_running_jobs() {
        let mut m = Machine::new(4);
        m.allocate(JobId(1), 2, SimTime::new(0)).unwrap();
        assert_eq!(m.busy_proc_seconds(SimTime::new(7)), 14);
    }

    #[test]
    fn utilization_over_window() {
        let mut m = Machine::new(10);
        m.allocate(JobId(1), 10, SimTime::new(0)).unwrap();
        m.release(JobId(1), SimTime::new(10)).unwrap();
        // 100 busy proc-s over 10 procs * 20 s window = 0.5.
        let u = m.utilization(SimTime::new(0), SimTime::new(20));
        assert!((u - 0.5).abs() < 1e-12, "utilization {u}");
        assert_eq!(m.utilization(SimTime::new(5), SimTime::new(5)), 0.0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = Machine::new(10);
        m.allocate(JobId(1), 4, SimTime::new(0)).unwrap();
        m.allocate(JobId(2), 5, SimTime::new(1)).unwrap();
        m.release(JobId(1), SimTime::new(2)).unwrap();
        assert_eq!(m.peak_in_use(), 9);
    }
}
