//! Simulation time newtypes.
//!
//! All simulation time is measured in integral **seconds** since the start of
//! the simulated epoch. Using integers (rather than `f64`) keeps the
//! simulation bit-for-bit deterministic across platforms and makes event
//! ordering a total order with no epsilon headaches.
//!
//! Two distinct types are provided so the compiler rejects category errors:
//!
//! * [`SimTime`] — an absolute instant ("when").
//! * [`SimSpan`] — a non-negative duration ("how long").
//!
//! `SimTime + SimSpan = SimTime`, `SimTime - SimTime = SimSpan` (saturating),
//! and spans add together. Arithmetic that could overflow saturates: a
//! scheduler that anchors a reservation at `SimTime::FAR_FUTURE` must not wrap
//! around to zero and corrupt the schedule.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulated instant, in seconds since the simulated epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimSpan(u64);

impl SimTime {
    /// The simulated epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel far enough in the future that no real event reaches it
    /// (about 292 billion years), yet far from `u64::MAX` so that adding a
    /// realistic span to it cannot overflow before saturation kicks in.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX / 2);

    /// Construct from raw seconds.
    #[inline]
    pub const fn new(secs: u64) -> Self {
        SimTime(secs)
    }

    /// The raw seconds-since-epoch value.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Elapsed span since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimSpan {
    /// The zero-length span.
    pub const ZERO: SimSpan = SimSpan(0);
    /// One second.
    pub const SECOND: SimSpan = SimSpan(1);
    /// One minute.
    pub const MINUTE: SimSpan = SimSpan(60);
    /// One hour.
    pub const HOUR: SimSpan = SimSpan(3600);
    /// One day.
    pub const DAY: SimSpan = SimSpan(86_400);

    /// Construct from raw seconds.
    #[inline]
    pub const fn new(secs: u64) -> Self {
        SimSpan(secs)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        SimSpan(hours * 3600)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        SimSpan(mins * 60)
    }

    /// The raw length in seconds.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The length in (lossy) floating-point seconds, for metric computation.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale the span by a non-negative factor, rounding to nearest second
    /// and saturating on overflow. Panics if `factor` is negative or NaN.
    #[must_use]
    pub fn scale(self, factor: f64) -> SimSpan {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "span scale factor must be finite and non-negative, got {factor}"
        );
        let scaled = (self.0 as f64 * factor).round();
        if scaled >= u64::MAX as f64 {
            SimSpan(u64::MAX)
        } else {
            SimSpan(scaled as u64)
        }
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.min(other.0))
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimSpan> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    /// Saturating difference: `a - b` is zero when `b > a`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimSpan {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl fmt::Display for SimSpan {
    /// Human-readable `1d 2h 3m 4s` rendering (largest nonzero units only).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut rem = self.0;
        let days = rem / 86_400;
        rem %= 86_400;
        let hours = rem / 3600;
        rem %= 3600;
        let mins = rem / 60;
        let secs = rem % 60;
        let mut wrote = false;
        if days > 0 {
            write!(f, "{days}d")?;
            wrote = true;
        }
        if hours > 0 {
            write!(f, "{}{hours}h", if wrote { " " } else { "" })?;
            wrote = true;
        }
        if mins > 0 {
            write!(f, "{}{mins}m", if wrote { " " } else { "" })?;
            wrote = true;
        }
        if secs > 0 || !wrote {
            write!(f, "{}{secs}s", if wrote { " " } else { "" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_span() {
        assert_eq!(SimTime::new(10) + SimSpan::new(5), SimTime::new(15));
    }

    #[test]
    fn time_minus_time_saturates() {
        assert_eq!(SimTime::new(10) - SimTime::new(3), SimSpan::new(7));
        assert_eq!(SimTime::new(3) - SimTime::new(10), SimSpan::ZERO);
    }

    #[test]
    fn since_is_saturating_difference() {
        assert_eq!(SimTime::new(20).since(SimTime::new(5)), SimSpan::new(15));
        assert_eq!(SimTime::new(5).since(SimTime::new(20)), SimSpan::ZERO);
    }

    #[test]
    fn far_future_does_not_wrap() {
        let t = SimTime::FAR_FUTURE + SimSpan::new(u64::MAX);
        assert!(t >= SimTime::FAR_FUTURE);
    }

    #[test]
    fn span_constructors() {
        assert_eq!(SimSpan::from_hours(2).as_secs(), 7200);
        assert_eq!(SimSpan::from_mins(3).as_secs(), 180);
        assert_eq!(SimSpan::HOUR.as_secs(), 3600);
        assert_eq!(SimSpan::DAY.as_secs(), 86_400);
    }

    #[test]
    fn span_scale_rounds_and_saturates() {
        assert_eq!(SimSpan::new(10).scale(1.5), SimSpan::new(15));
        assert_eq!(SimSpan::new(10).scale(0.0), SimSpan::ZERO);
        assert_eq!(SimSpan::new(3).scale(0.5), SimSpan::new(2)); // 1.5 rounds to 2
        assert_eq!(SimSpan::new(u64::MAX).scale(2.0), SimSpan::new(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn span_scale_rejects_negative() {
        let _ = SimSpan::new(1).scale(-1.0);
    }

    #[test]
    fn span_arithmetic_saturates() {
        assert_eq!(
            SimSpan::new(u64::MAX) + SimSpan::new(1),
            SimSpan::new(u64::MAX)
        );
        assert_eq!(SimSpan::new(1) - SimSpan::new(2), SimSpan::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimSpan::new(0).to_string(), "0s");
        assert_eq!(SimSpan::new(61).to_string(), "1m 1s");
        assert_eq!(
            SimSpan::new(86_400 + 3600 + 60 + 1).to_string(),
            "1d 1h 1m 1s"
        );
        assert_eq!(SimSpan::new(7200).to_string(), "2h");
        assert_eq!(SimTime::new(42).to_string(), "t+42s");
    }

    #[test]
    fn min_max() {
        assert_eq!(SimTime::new(3).max(SimTime::new(5)), SimTime::new(5));
        assert_eq!(SimTime::new(3).min(SimTime::new(5)), SimTime::new(3));
        assert_eq!(SimSpan::new(3).max(SimSpan::new(5)), SimSpan::new(5));
        assert_eq!(SimSpan::new(3).min(SimSpan::new(5)), SimSpan::new(3));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::new(5), SimTime::new(1), SimTime::new(3)];
        v.sort();
        assert_eq!(v, vec![SimTime::new(1), SimTime::new(3), SimTime::new(5)]);
    }
}
