//! Post-hoc schedule validation.
//!
//! Every schedule a scheduler produces can be replayed and audited against
//! the physical constraints of the machine, independent of the scheduler's
//! own bookkeeping. This catches whole classes of subtle backfilling bugs
//! (phantom reservations, double-counted processors) that unit tests on the
//! scheduler's internal state cannot.

use crate::error::SimError;
use crate::time::SimTime;

/// A job as placed by a schedule: all the validator needs to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedJob {
    /// Job identifier (for error messages).
    pub id: u32,
    /// When the job became eligible to run.
    pub arrival: SimTime,
    /// When the schedule started it.
    pub start: SimTime,
    /// When it released its processors.
    pub end: SimTime,
    /// Processors held for the whole `[start, end)` interval.
    pub width: u32,
}

/// Validate a completed schedule against machine capacity.
///
/// Checks, for every job:
/// * `start >= arrival` (no clairvoyant starts),
/// * `end >= start`,
/// * `1 <= width <= capacity`;
///
/// and globally that at no instant does the sum of widths of concurrently
/// running jobs exceed `capacity`. Zero-length jobs (`end == start`) occupy
/// no capacity and are only checked for the per-job constraints.
pub fn validate_schedule(jobs: &[PlacedJob], capacity: u32) -> Result<(), SimError> {
    for j in jobs {
        if j.start < j.arrival {
            return Err(SimError::AuditFailure(format!(
                "job#{} started at {} before its arrival at {}",
                j.id, j.start, j.arrival
            )));
        }
        if j.end < j.start {
            return Err(SimError::AuditFailure(format!(
                "job#{} ends at {} before it starts at {}",
                j.id, j.end, j.start
            )));
        }
        if j.width == 0 {
            return Err(SimError::AuditFailure(format!(
                "job#{} has zero width",
                j.id
            )));
        }
        if j.width > capacity {
            return Err(SimError::JobWiderThanMachine {
                job: j.id,
                width: j.width,
                machine: capacity,
            });
        }
    }

    // Sweep: +width at start, -width at end; ends apply before starts at the
    // same instant (a releasing job's processors are reusable immediately).
    let mut deltas: Vec<(SimTime, i64)> = Vec::with_capacity(jobs.len() * 2);
    for j in jobs {
        if j.end > j.start {
            deltas.push((j.start, j.width as i64));
            deltas.push((j.end, -(j.width as i64)));
        }
    }
    deltas.sort_by_key(|&(t, d)| (t, d)); // negatives (releases) first per instant
    let mut in_use: i64 = 0;
    for (t, d) in deltas {
        in_use += d;
        if in_use > capacity as i64 {
            return Err(SimError::AuditFailure(format!(
                "capacity exceeded at {t}: {in_use} > {capacity}"
            )));
        }
        debug_assert!(in_use >= 0, "negative in-use at {t}");
    }
    Ok(())
}

/// Compute machine utilization of a schedule over `[window_start, window_end]`.
///
/// Returns busy processor-seconds (clipped to the window) divided by
/// `capacity * window`. Returns 0 for an empty window.
pub fn schedule_utilization(
    jobs: &[PlacedJob],
    capacity: u32,
    window_start: SimTime,
    window_end: SimTime,
) -> f64 {
    let window = window_end.since(window_start).as_secs();
    if window == 0 {
        return 0.0;
    }
    let mut busy: u128 = 0;
    for j in jobs {
        let s = j.start.max(window_start);
        let e = j.end.min(window_end);
        if e > s {
            busy += j.width as u128 * e.since(s).as_secs() as u128;
        }
    }
    busy as f64 / (capacity as f64 * window as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pj(id: u32, arrival: u64, start: u64, end: u64, width: u32) -> PlacedJob {
        PlacedJob {
            id,
            arrival: SimTime::new(arrival),
            start: SimTime::new(start),
            end: SimTime::new(end),
            width,
        }
    }

    #[test]
    fn accepts_valid_schedule() {
        let jobs = [pj(1, 0, 0, 10, 4), pj(2, 0, 0, 5, 4), pj(3, 2, 5, 9, 4)];
        assert!(validate_schedule(&jobs, 8).is_ok());
    }

    #[test]
    fn rejects_clairvoyant_start() {
        let jobs = [pj(1, 10, 5, 20, 1)];
        let err = validate_schedule(&jobs, 8).unwrap_err();
        assert!(err.to_string().contains("before its arrival"));
    }

    #[test]
    fn rejects_negative_duration() {
        let jobs = [pj(1, 0, 10, 5, 1)];
        assert!(validate_schedule(&jobs, 8).is_err());
    }

    #[test]
    fn rejects_zero_width() {
        let jobs = [pj(1, 0, 0, 5, 0)];
        assert!(validate_schedule(&jobs, 8).is_err());
    }

    #[test]
    fn rejects_wider_than_machine() {
        let jobs = [pj(1, 0, 0, 5, 9)];
        assert!(matches!(
            validate_schedule(&jobs, 8),
            Err(SimError::JobWiderThanMachine { .. })
        ));
    }

    #[test]
    fn rejects_capacity_violation() {
        let jobs = [pj(1, 0, 0, 10, 5), pj(2, 0, 3, 8, 4)];
        let err = validate_schedule(&jobs, 8).unwrap_err();
        assert!(err.to_string().contains("capacity exceeded"));
    }

    #[test]
    fn back_to_back_handoff_is_legal() {
        // Job 2 starts at the exact second job 1 ends, on the same processors.
        let jobs = [pj(1, 0, 0, 10, 8), pj(2, 0, 10, 20, 8)];
        assert!(validate_schedule(&jobs, 8).is_ok());
    }

    #[test]
    fn zero_length_jobs_hold_no_capacity() {
        let jobs = [pj(1, 0, 0, 10, 8), pj(2, 0, 5, 5, 8)];
        assert!(validate_schedule(&jobs, 8).is_ok());
    }

    #[test]
    fn empty_schedule_is_valid() {
        assert!(validate_schedule(&[], 1).is_ok());
    }

    #[test]
    fn utilization_full_and_half() {
        let jobs = [pj(1, 0, 0, 10, 8)];
        let u = schedule_utilization(&jobs, 8, SimTime::new(0), SimTime::new(10));
        assert!((u - 1.0).abs() < 1e-12);
        let u = schedule_utilization(&jobs, 8, SimTime::new(0), SimTime::new(20));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_clips_to_window() {
        let jobs = [pj(1, 0, 0, 100, 4)];
        // Window [50, 60]: 4 procs busy the whole time out of 8.
        let u = schedule_utilization(&jobs, 8, SimTime::new(50), SimTime::new(60));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_empty_window_is_zero() {
        assert_eq!(
            schedule_utilization(&[], 8, SimTime::new(5), SimTime::new(5)),
            0.0
        );
    }
}
