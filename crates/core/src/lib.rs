//! # backfill-sim — characterization of backfilling strategies
//!
//! A trace-driven simulator for parallel job scheduling, reproducing
//! *"Characterization of Backfilling Strategies for Parallel Job
//! Scheduling"* (Srinivasan, Kettimuthu, Subramani, Sadayappan; ICPP 2002).
//!
//! ## Quick start
//!
//! ```
//! use backfill_sim::prelude::*;
//!
//! // A small synthetic CTC-like workload at high load, exact estimates.
//! let scenario = Scenario::high_load(TraceSource::Ctc { jobs: 200, seed: 42 });
//! let trace = scenario.materialize();
//!
//! // EASY backfilling with shortest-job-first priorities.
//! let schedule = simulate(&trace, SchedulerKind::Easy, Policy::Sjf);
//! schedule.validate().expect("no capacity violations");
//!
//! let stats = schedule.stats(&CategoryCriteria::default());
//! assert!(stats.overall.avg_slowdown() >= 1.0);
//! ```
//!
//! ## Crate map
//!
//! * [`driver`] — the event loop binding trace + scheduler + machine;
//! * [`config`] — declarative scenario/run configuration;
//! * [`canon`] — canonical JSON + stable content hashing (cache keys);
//! * [`runner`] — parallel sweep execution (deterministic results);
//! * [`campaign`] — multi-seed replication with confidence intervals;
//! * [`schedule`] — the simulated schedule, auditing, fingerprints;
//! * re-exported substrates: `sched` (policies), `workload` (traces,
//!   estimate models), `metrics` (statistics), `simcore` (engine).

#![warn(missing_docs)]

pub mod campaign;
pub mod canon;
pub mod config;
pub mod driver;
pub mod runner;
pub mod schedule;

pub use campaign::{Campaign, CampaignCell, Estimate};
pub use config::{RunConfig, Scenario, TraceSource};
pub use driver::{
    flush_profile_stats, journal_queue_series, simulate, simulate_journaled, simulate_observed,
    JournalEntry, JournalKind, SchedulerKind, SimOptions,
};
pub use runner::{
    aggregate_profile_stats, materialize_caught, run_all, run_all_checked, run_all_checked_shared,
    run_cell, run_cell_observed_on, run_cell_on, CellError, RunResult, SweepSharing,
};
pub use schedule::Schedule;

/// Everything a typical experiment needs, in one import.
pub mod prelude {
    pub use crate::campaign::{Campaign, CampaignCell, Estimate};
    pub use crate::config::{RunConfig, Scenario, TraceSource};
    pub use crate::driver::{
        simulate, simulate_journaled, simulate_observed, JournalEntry, JournalKind, SchedulerKind,
        SimOptions,
    };
    pub use crate::runner::{
        aggregate_profile_stats, run_all, run_all_checked, run_all_checked_shared, run_cell,
        run_cell_on, CellError, RunResult, SweepSharing,
    };
    pub use crate::schedule::Schedule;
    pub use metrics::{
        fnum, fpct, percent_change, JobOutcome, Quantiles, ScheduleStats, Table, Welford,
    };
    pub use sched::{Policy, Scheduler};
    pub use simcore::{JobId, SimSpan, SimTime};
    pub use workload::{
        Category, CategoryCriteria, EstimateModel, EstimateQuality, Job, Trace, UserModelParams,
    };
}
