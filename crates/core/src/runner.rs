//! Parallel execution of simulation sweeps.
//!
//! Every figure in the paper is a sweep — (trace × scheduler × policy ×
//! estimate model) — and each cell is an independent, deterministic
//! simulation. This module fans the cells out over worker threads
//! (crossbeam channel as the work queue, scoped threads so no `'static`
//! bounds infect the configs) and returns results **in input order**, so
//! parallelism never changes any report.

use crate::config::RunConfig;
use crate::schedule::Schedule;
use crossbeam::channel;
use parking_lot::Mutex;
use sched::ProfileStats;
use std::num::NonZeroUsize;

/// Result of one sweep cell.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The config that produced it.
    pub config: RunConfig,
    /// The resulting schedule.
    pub schedule: Schedule,
}

/// Run every config, in parallel, returning results in input order.
///
/// `threads = None` uses the machine's available parallelism.
pub fn run_all(configs: &[RunConfig], threads: Option<NonZeroUsize>) -> Vec<RunResult> {
    if configs.is_empty() {
        return Vec::new();
    }
    let threads = threads
        .or_else(|| std::thread::available_parallelism().ok())
        .map_or(1, NonZeroUsize::get)
        .min(configs.len());

    if threads == 1 {
        return configs
            .iter()
            .map(|&config| RunResult {
                config,
                schedule: config.run(),
            })
            .collect();
    }

    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..configs.len() {
        tx.send(i).expect("queue open");
    }
    drop(tx);

    let slots: Mutex<Vec<Option<RunResult>>> =
        Mutex::new((0..configs.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let slots = &slots;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    let config = configs[i];
                    let result = RunResult {
                        config,
                        schedule: config.run(),
                    };
                    slots.lock()[i] = Some(result);
                }
            });
        }
    });

    slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every cell completed"))
        .collect()
}

/// Sum the availability-profile counters across a sweep's results.
/// Returns `None` if no cell reported stats (all profile-free schedulers);
/// otherwise counts add and `peak_segments` takes the maximum.
pub fn aggregate_profile_stats(results: &[RunResult]) -> Option<ProfileStats> {
    let mut total: Option<ProfileStats> = None;
    for stats in results
        .iter()
        .filter_map(|r| r.schedule.profile_stats.as_ref())
    {
        total
            .get_or_insert_with(ProfileStats::default)
            .absorb(stats);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scenario, TraceSource};
    use crate::driver::SchedulerKind;
    use sched::Policy;

    fn sweep() -> Vec<RunConfig> {
        let scenario = Scenario::high_load(TraceSource::Ctc { jobs: 150, seed: 5 });
        let mut configs = Vec::new();
        for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
            for policy in Policy::PAPER {
                configs.push(RunConfig {
                    scenario,
                    kind,
                    policy,
                });
            }
        }
        configs
    }

    #[test]
    fn parallel_matches_serial() {
        let configs = sweep();
        let serial = run_all(&configs, NonZeroUsize::new(1));
        let parallel = run_all(&configs, NonZeroUsize::new(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.config, p.config, "order changed");
            assert_eq!(s.schedule.fingerprint(), p.schedule.fingerprint());
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let configs = sweep();
        let results = run_all(&configs, None);
        for (cfg, res) in configs.iter().zip(&results) {
            assert_eq!(*cfg, res.config);
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(run_all(&[], None).is_empty());
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let configs = sweep()[..2].to_vec();
        let results = run_all(&configs, NonZeroUsize::new(16));
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn aggregates_profile_stats_across_cells() {
        let configs = sweep();
        let results = run_all(&configs, NonZeroUsize::new(2));
        // Conservative and EASY both maintain profiles, so every cell
        // reports stats and the totals must dominate each cell's.
        let total = aggregate_profile_stats(&results).expect("profiled schedulers");
        assert!(total.find_anchor_calls > 0);
        assert!(total.reserves > 0);
        for r in &results {
            let cell = r.schedule.profile_stats.expect("each cell profiled");
            assert!(total.find_anchor_calls >= cell.find_anchor_calls);
            assert!(total.peak_segments >= cell.peak_segments);
        }
        assert_eq!(aggregate_profile_stats(&[]), None);
    }
}
