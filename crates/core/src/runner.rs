//! Parallel execution of simulation sweeps.
//!
//! Every figure in the paper is a sweep — (trace × scheduler × policy ×
//! estimate model) — and each cell is an independent, deterministic
//! simulation. This module fans the cells out over worker threads
//! (crossbeam channel as the work queue, scoped threads so no `'static`
//! bounds infect the configs) and returns results **in input order**, so
//! parallelism never changes any report.

use crate::config::RunConfig;
use crate::schedule::Schedule;
use crossbeam::channel;
use sched::ProfileStats;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of one sweep cell.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The config that produced it.
    pub config: RunConfig,
    /// The resulting schedule.
    pub schedule: Schedule,
}

/// A sweep cell that panicked, carrying the offending config so the
/// caller can report (or retry, or skip) exactly the scenario at fault.
#[derive(Debug, Clone)]
pub struct CellError {
    /// The config whose simulation panicked.
    pub config: RunConfig,
    /// The panic payload, rendered as text.
    pub panic: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} panicked: {}", self.config.label(), self.panic)
    }
}

impl std::error::Error for CellError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one cell, converting a panic inside the simulation into a
/// [`CellError`] instead of unwinding into the caller. This is the fault
/// boundary both the sweep runner and the simulation service stand on:
/// one poisoned scenario must not take down its whole batch (or daemon).
// CellError embeds the offending RunConfig by value (136 bytes); the Err
// path only exists on a panicked cell, so the width is irrelevant and
// boxing would complicate every consumer.
#[allow(clippy::result_large_err)]
pub fn run_cell(config: &RunConfig) -> Result<Schedule, CellError> {
    catch_unwind(AssertUnwindSafe(|| config.run())).map_err(|payload| CellError {
        config: *config,
        panic: panic_message(payload),
    })
}

/// Run every config, in parallel, returning per-cell outcomes in input
/// order. A cell whose simulation panics yields `Err(CellError)` — with
/// the offending config attached — while every other cell still runs to
/// completion.
///
/// `threads = None` uses the machine's available parallelism.
#[allow(clippy::result_large_err)] // see run_cell
pub fn run_all_checked(
    configs: &[RunConfig],
    threads: Option<NonZeroUsize>,
) -> Vec<Result<RunResult, CellError>> {
    if configs.is_empty() {
        return Vec::new();
    }
    let threads = threads
        .or_else(|| std::thread::available_parallelism().ok())
        .map_or(1, NonZeroUsize::get)
        .min(configs.len());

    let cell = |config: RunConfig| run_cell(&config).map(|schedule| RunResult { config, schedule });

    if threads == 1 {
        return configs.iter().map(|&config| cell(config)).collect();
    }

    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..configs.len() {
        tx.send(i).expect("queue open");
    }
    drop(tx);

    // Workers stream `(index, result)` back over a channel; the receive
    // loop fills the indexed slots, so results land in input order with no
    // lock contention on the hot path.
    let (done_tx, done_rx) = channel::unbounded::<(usize, Result<RunResult, CellError>)>();
    let mut slots: Vec<Option<Result<RunResult, CellError>>> =
        (0..configs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    done_tx.send((i, cell(configs[i]))).expect("receiver open");
                }
            });
        }
        drop(done_tx); // workers hold the remaining senders
        while let Ok((i, result)) = done_rx.recv() {
            debug_assert!(slots[i].is_none(), "cell {i} delivered twice");
            slots[i] = Some(result);
        }
    });

    slots
        .into_iter()
        .map(|r| r.expect("every cell completed"))
        .collect()
}

/// Run every config, in parallel, returning results in input order.
///
/// `threads = None` uses the machine's available parallelism. Panics —
/// deterministically, after the whole sweep has finished — if any cell's
/// simulation panicked, naming the offending config; use
/// [`run_all_checked`] to handle poisoned cells per cell instead.
pub fn run_all(configs: &[RunConfig], threads: Option<NonZeroUsize>) -> Vec<RunResult> {
    run_all_checked(configs, threads)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Sum the availability-profile counters across a sweep's results.
/// Returns `None` if no cell reported stats (all profile-free schedulers);
/// otherwise counts add and `peak_segments` takes the maximum.
pub fn aggregate_profile_stats(results: &[RunResult]) -> Option<ProfileStats> {
    let mut total: Option<ProfileStats> = None;
    for stats in results
        .iter()
        .filter_map(|r| r.schedule.profile_stats.as_ref())
    {
        total
            .get_or_insert_with(ProfileStats::default)
            .absorb(stats);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scenario, TraceSource};
    use crate::driver::SchedulerKind;
    use parking_lot::Mutex;
    use sched::Policy;
    use workload::EstimateModel;

    fn sweep() -> Vec<RunConfig> {
        let scenario = Scenario::high_load(TraceSource::Ctc { jobs: 150, seed: 5 });
        let mut configs = Vec::new();
        for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
            for policy in Policy::PAPER {
                configs.push(RunConfig {
                    scenario,
                    kind,
                    policy,
                });
            }
        }
        configs
    }

    #[test]
    fn parallel_matches_serial() {
        let configs = sweep();
        let serial = run_all(&configs, NonZeroUsize::new(1));
        let parallel = run_all(&configs, NonZeroUsize::new(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.config, p.config, "order changed");
            assert_eq!(s.schedule.fingerprint(), p.schedule.fingerprint());
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let configs = sweep();
        // 16 workers racing over 10 cells: completions stream back in
        // arbitrary order, the indexed slots must still land them in
        // input order.
        for threads in [None, NonZeroUsize::new(16)] {
            let results = run_all(&configs, threads);
            for (cfg, res) in configs.iter().zip(&results) {
                assert_eq!(*cfg, res.config);
            }
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(run_all(&[], None).is_empty());
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let configs = sweep()[..2].to_vec();
        let results = run_all(&configs, NonZeroUsize::new(16));
        assert_eq!(results.len(), 2);
    }

    /// Serializes the panic-hook swaps below: the hook is process-global,
    /// so two tests silencing it concurrently would race on the restore.
    static HOOK_LOCK: Mutex<()> = Mutex::new(());

    /// Run `f` with panic output silenced (the tests below panic on
    /// purpose; the default hook would spam the test log).
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let _guard = HOOK_LOCK.lock();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        std::panic::set_hook(hook);
        result
    }

    /// A config whose materialization reliably panics: `scale_to_load`
    /// asserts the target load is positive.
    fn poisoned() -> RunConfig {
        RunConfig {
            scenario: Scenario {
                source: TraceSource::Ctc { jobs: 50, seed: 1 },
                estimate: EstimateModel::Exact,
                estimate_seed: 1,
                load: Some(-1.0),
            },
            kind: SchedulerKind::Easy,
            policy: Policy::Fcfs,
        }
    }

    #[test]
    fn panicking_cell_is_isolated() {
        let mut configs = sweep();
        let bad = poisoned();
        configs.insert(2, bad);
        let results = with_quiet_panics(|| run_all_checked(&configs, NonZeroUsize::new(4)));
        assert_eq!(results.len(), configs.len());
        for (i, (cfg, res)) in configs.iter().zip(&results).enumerate() {
            match res {
                Ok(ok) => {
                    assert_eq!(*cfg, ok.config, "order changed");
                    assert_ne!(i, 2, "poisoned cell reported success");
                }
                Err(e) => {
                    assert_eq!(i, 2, "healthy cell reported a panic");
                    assert_eq!(e.config, bad, "error lost the offending config");
                    assert!(
                        e.panic.contains("target load must be positive"),
                        "unexpected panic text: {}",
                        e.panic
                    );
                    assert!(e.to_string().contains("CTC EASY/FCFS"));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "target load must be positive")]
    fn run_all_still_panics_on_poisoned_cell() {
        let result = with_quiet_panics(|| {
            std::panic::catch_unwind(|| run_all(&[poisoned()], NonZeroUsize::new(1)))
        });
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }

    #[test]
    fn aggregates_profile_stats_across_cells() {
        let configs = sweep();
        let results = run_all(&configs, NonZeroUsize::new(2));
        // Conservative and EASY both maintain profiles, so every cell
        // reports stats and the totals must dominate each cell's.
        let total = aggregate_profile_stats(&results).expect("profiled schedulers");
        assert!(total.find_anchor_calls > 0);
        assert!(total.reserves > 0);
        for r in &results {
            let cell = r.schedule.profile_stats.expect("each cell profiled");
            assert!(total.find_anchor_calls >= cell.find_anchor_calls);
            assert!(total.peak_segments >= cell.peak_segments);
        }
        assert_eq!(aggregate_profile_stats(&[]), None);
    }
}
