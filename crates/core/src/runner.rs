//! Parallel execution of simulation sweeps.
//!
//! Every figure in the paper is a sweep — (trace × scheduler × policy ×
//! estimate model) — and each cell is an independent, deterministic
//! simulation. This module fans the cells out over worker threads
//! (crossbeam channel as the work queue, scoped threads so no `'static`
//! bounds infect the configs) and returns results **in input order**, so
//! parallelism never changes any report.

use crate::config::{RunConfig, Scenario};
use crate::schedule::Schedule;
use crossbeam::channel;
use sched::ProfileStats;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use workload::Trace;

/// Result of one sweep cell.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The config that produced it.
    pub config: RunConfig,
    /// The resulting schedule.
    pub schedule: Schedule,
}

/// A sweep cell that panicked, carrying the offending config so the
/// caller can report (or retry, or skip) exactly the scenario at fault.
#[derive(Debug, Clone)]
pub struct CellError {
    /// The config whose simulation panicked.
    pub config: RunConfig,
    /// The panic payload, rendered as text.
    pub panic: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} panicked: {}", self.config.label(), self.panic)
    }
}

impl std::error::Error for CellError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one cell, converting a panic inside the simulation into a
/// [`CellError`] instead of unwinding into the caller. This is the fault
/// boundary both the sweep runner and the simulation service stand on:
/// one poisoned scenario must not take down its whole batch (or daemon).
// CellError embeds the offending RunConfig by value (136 bytes); the Err
// path only exists on a panicked cell, so the width is irrelevant and
// boxing would complicate every consumer.
#[allow(clippy::result_large_err)]
pub fn run_cell(config: &RunConfig) -> Result<Schedule, CellError> {
    catch_unwind(AssertUnwindSafe(|| config.run())).map_err(|payload| CellError {
        config: *config,
        panic: panic_message(payload),
    })
}

/// Run one cell against an already materialized trace, with the same
/// fault boundary as [`run_cell`]. Callers that share one trace across
/// many scheduler configs (the sweep runner, the service trace cache)
/// route through here so a panicked simulation still becomes a
/// [`CellError`] instead of unwinding.
#[allow(clippy::result_large_err)] // see run_cell
pub fn run_cell_on(config: &RunConfig, trace: &Trace) -> Result<Schedule, CellError> {
    catch_unwind(AssertUnwindSafe(|| config.run_on(trace))).map_err(|payload| CellError {
        config: *config,
        panic: panic_message(payload),
    })
}

/// [`run_cell_on`] with observability options (per-phase profiling, a
/// decision-trace recorder) threaded into the driver. Same fault
/// boundary; the schedule is byte-identical to an unobserved run's.
#[allow(clippy::result_large_err)] // see run_cell
pub fn run_cell_observed_on(
    config: &RunConfig,
    trace: &Trace,
    options: crate::driver::SimOptions,
) -> Result<Schedule, CellError> {
    catch_unwind(AssertUnwindSafe(|| {
        crate::driver::simulate_observed(trace, config.kind, config.policy, options).0
    }))
    .map_err(|payload| CellError {
        config: *config,
        panic: panic_message(payload),
    })
}

/// Materialize a scenario's trace behind the same fault boundary as
/// [`run_cell`]: a panic inside generation / estimate application / load
/// rescaling comes back as its rendered panic text. Callers that cache
/// traces separately from results (the sweep runner, the `bfsimd` trace
/// cache) use this so one poisoned scenario cannot take down its batch.
pub fn materialize_caught(scenario: &Scenario) -> Result<Trace, String> {
    catch_unwind(AssertUnwindSafe(|| scenario.materialize())).map_err(panic_message)
}

/// How much trace sharing a sweep achieved. A paper sweep is dozens of
/// (scheduler × policy) cells over a handful of scenarios; the runner
/// materializes each distinct scenario's trace exactly once and fans the
/// cells through [`RunConfig::run_on`], so `traces_materialized` tracks
/// `distinct_scenarios`, not `cells`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSharing {
    /// Number of cells in the sweep.
    pub cells: usize,
    /// Number of distinct scenarios (by canonical JSON) among the cells.
    pub distinct_scenarios: usize,
    /// Number of traces actually materialized — the regression counter:
    /// equals `distinct_scenarios`, never `cells`.
    pub traces_materialized: usize,
}

/// Fan `n` index-addressed jobs over `threads` workers, returning the
/// outputs in index order (indexed slots, so completion order never
/// leaks). `threads <= 1` degenerates to a plain in-order map.
fn fan_out<T: Send>(n: usize, threads: usize, job: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return (0..n).map(job).collect();
    }
    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..n {
        tx.send(i).expect("queue open");
    }
    drop(tx);

    // Workers stream `(index, result)` back over a channel; the receive
    // loop fills the indexed slots, so results land in input order with no
    // lock contention on the hot path.
    let (done_tx, done_rx) = channel::unbounded::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let rx = rx.clone();
            let done_tx = done_tx.clone();
            let job = &job;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    if done_tx.send((i, job(i))).is_err() {
                        unreachable!("receiver open until workers finish");
                    }
                }
            });
        }
        drop(done_tx); // workers hold the remaining senders
        while let Ok((i, result)) = done_rx.recv() {
            debug_assert!(slots[i].is_none(), "item {i} delivered twice");
            slots[i] = Some(result);
        }
    });

    slots
        .into_iter()
        .map(|r| r.expect("every item completed"))
        .collect()
}

/// Run every config, in parallel, returning per-cell outcomes in input
/// order. A cell whose simulation panics yields `Err(CellError)` — with
/// the offending config attached — while every other cell still runs to
/// completion.
///
/// Cells sharing a [`Scenario`] share one materialized trace: the sweep
/// first groups configs by the scenario's canonical JSON, materializes
/// each distinct trace exactly once (in parallel), then fans the cells
/// through [`RunConfig::run_on`]. A panic during materialization is
/// charged to every cell of that scenario, as a [`CellError`] each.
///
/// `threads = None` uses the machine's available parallelism.
#[allow(clippy::result_large_err)] // see run_cell
pub fn run_all_checked(
    configs: &[RunConfig],
    threads: Option<NonZeroUsize>,
) -> Vec<Result<RunResult, CellError>> {
    run_all_checked_shared(configs, threads).0
}

/// [`run_all_checked`] plus the sweep's [`SweepSharing`] diagnostics —
/// the materialization counter regression tests pin against.
#[allow(clippy::result_large_err)] // see run_cell
pub fn run_all_checked_shared(
    configs: &[RunConfig],
    threads: Option<NonZeroUsize>,
) -> (Vec<Result<RunResult, CellError>>, SweepSharing) {
    if configs.is_empty() {
        let sharing = SweepSharing {
            cells: 0,
            distinct_scenarios: 0,
            traces_materialized: 0,
        };
        return (Vec::new(), sharing);
    }
    let threads = threads
        .or_else(|| std::thread::available_parallelism().ok())
        .map_or(1, NonZeroUsize::get)
        .min(configs.len());

    // Group cells by scenario identity (canonical JSON, the same key the
    // service cache uses — stable and injective, so distinct scenarios
    // can never alias one trace).
    let mut key_to_group: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut group_of_cell: Vec<usize> = Vec::with_capacity(configs.len());
    for config in configs {
        let key = config.scenario.canonical_json();
        let group = *key_to_group.entry(key).or_insert_with(|| {
            scenarios.push(config.scenario);
            scenarios.len() - 1
        });
        group_of_cell.push(group);
    }

    // Phase 1: materialize each distinct trace once, in parallel. The
    // counter records actual materializations — the whole point of the
    // grouping is that it never exceeds the number of distinct scenarios.
    let materialized = AtomicUsize::new(0);
    let traces: Vec<Result<Trace, String>> =
        fan_out(scenarios.len(), threads.min(scenarios.len()), |g| {
            materialized.fetch_add(1, Ordering::Relaxed);
            materialize_caught(&scenarios[g])
        });

    // Phase 2: fan the cells over the shared traces.
    let results = fan_out(configs.len(), threads, |i| {
        let config = configs[i];
        match &traces[group_of_cell[i]] {
            Ok(trace) => run_cell_on(&config, trace).map(|schedule| RunResult { config, schedule }),
            Err(panic) => Err(CellError {
                config,
                panic: panic.clone(),
            }),
        }
    });

    let sharing = SweepSharing {
        cells: configs.len(),
        distinct_scenarios: scenarios.len(),
        traces_materialized: materialized.load(Ordering::Relaxed),
    };
    (results, sharing)
}

/// Run every config, in parallel, returning results in input order.
///
/// `threads = None` uses the machine's available parallelism. Panics —
/// deterministically, after the whole sweep has finished — if any cell's
/// simulation panicked, naming the offending config; use
/// [`run_all_checked`] to handle poisoned cells per cell instead.
pub fn run_all(configs: &[RunConfig], threads: Option<NonZeroUsize>) -> Vec<RunResult> {
    run_all_checked(configs, threads)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Sum the availability-profile counters across a sweep's results.
/// Returns `None` if no cell reported stats (all profile-free schedulers);
/// otherwise counts add and `peak_segments` takes the maximum.
pub fn aggregate_profile_stats(results: &[RunResult]) -> Option<ProfileStats> {
    let mut total: Option<ProfileStats> = None;
    for stats in results
        .iter()
        .filter_map(|r| r.schedule.profile_stats.as_ref())
    {
        total
            .get_or_insert_with(ProfileStats::default)
            .absorb(stats);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scenario, TraceSource};
    use crate::driver::SchedulerKind;
    use parking_lot::Mutex;
    use sched::Policy;
    use workload::EstimateModel;

    fn sweep() -> Vec<RunConfig> {
        let scenario = Scenario::high_load(TraceSource::Ctc { jobs: 150, seed: 5 });
        let mut configs = Vec::new();
        for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
            for policy in Policy::PAPER {
                configs.push(RunConfig {
                    scenario,
                    kind,
                    policy,
                });
            }
        }
        configs
    }

    #[test]
    fn parallel_matches_serial() {
        let configs = sweep();
        let serial = run_all(&configs, NonZeroUsize::new(1));
        let parallel = run_all(&configs, NonZeroUsize::new(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.config, p.config, "order changed");
            assert_eq!(s.schedule.fingerprint(), p.schedule.fingerprint());
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let configs = sweep();
        // 16 workers racing over 10 cells: completions stream back in
        // arbitrary order, the indexed slots must still land them in
        // input order.
        for threads in [None, NonZeroUsize::new(16)] {
            let results = run_all(&configs, threads);
            for (cfg, res) in configs.iter().zip(&results) {
                assert_eq!(*cfg, res.config);
            }
        }
    }

    #[test]
    fn empty_sweep() {
        assert!(run_all(&[], None).is_empty());
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let configs = sweep()[..2].to_vec();
        let results = run_all(&configs, NonZeroUsize::new(16));
        assert_eq!(results.len(), 2);
    }

    /// Serializes the panic-hook swaps below: the hook is process-global,
    /// so two tests silencing it concurrently would race on the restore.
    static HOOK_LOCK: Mutex<()> = Mutex::new(());

    /// Run `f` with panic output silenced (the tests below panic on
    /// purpose; the default hook would spam the test log).
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let _guard = HOOK_LOCK.lock();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        std::panic::set_hook(hook);
        result
    }

    /// A config whose materialization reliably panics: `scale_to_load`
    /// asserts the target load is positive.
    fn poisoned() -> RunConfig {
        RunConfig {
            scenario: Scenario {
                source: TraceSource::Ctc { jobs: 50, seed: 1 },
                estimate: EstimateModel::Exact,
                estimate_seed: 1,
                load: Some(-1.0),
            },
            kind: SchedulerKind::Easy,
            policy: Policy::Fcfs,
        }
    }

    #[test]
    fn panicking_cell_is_isolated() {
        let mut configs = sweep();
        let bad = poisoned();
        configs.insert(2, bad);
        let results = with_quiet_panics(|| run_all_checked(&configs, NonZeroUsize::new(4)));
        assert_eq!(results.len(), configs.len());
        for (i, (cfg, res)) in configs.iter().zip(&results).enumerate() {
            match res {
                Ok(ok) => {
                    assert_eq!(*cfg, ok.config, "order changed");
                    assert_ne!(i, 2, "poisoned cell reported success");
                }
                Err(e) => {
                    assert_eq!(i, 2, "healthy cell reported a panic");
                    assert_eq!(e.config, bad, "error lost the offending config");
                    assert!(
                        e.panic.contains("target load must be positive"),
                        "unexpected panic text: {}",
                        e.panic
                    );
                    assert!(e.to_string().contains("CTC EASY/FCFS"));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "target load must be positive")]
    fn run_all_still_panics_on_poisoned_cell() {
        let result = with_quiet_panics(|| {
            std::panic::catch_unwind(|| run_all(&[poisoned()], NonZeroUsize::new(1)))
        });
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }

    #[test]
    fn sweep_materializes_each_scenario_once() {
        // Two scenarios × (2 schedulers × |PAPER| policies): the sweep
        // must materialize exactly 2 traces, not one per cell.
        let mut configs = sweep();
        let second = Scenario::high_load(TraceSource::Sdsc { jobs: 120, seed: 9 });
        for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
            for policy in Policy::PAPER {
                configs.push(RunConfig {
                    scenario: second,
                    kind,
                    policy,
                });
            }
        }
        let (results, sharing) = run_all_checked_shared(&configs, NonZeroUsize::new(4));
        assert_eq!(sharing.cells, configs.len());
        assert_eq!(sharing.distinct_scenarios, 2);
        assert_eq!(
            sharing.traces_materialized, 2,
            "trace sharing regressed: {} materializations for 2 scenarios",
            sharing.traces_materialized
        );
        // Shared traces must not change any cell's schedule.
        for (config, result) in configs.iter().zip(&results) {
            let shared = result.as_ref().expect("healthy sweep");
            let direct = run_cell(config).expect("healthy cell");
            assert_eq!(shared.schedule.fingerprint(), direct.fingerprint());
        }
    }

    #[test]
    fn poisoned_scenario_is_charged_to_all_its_cells() {
        // Every cell of the unmaterializable scenario gets the panic;
        // cells of healthy scenarios are untouched.
        let bad_scenario = poisoned().scenario;
        let mut configs = sweep();
        for policy in [Policy::Fcfs, Policy::Sjf] {
            configs.push(RunConfig {
                scenario: bad_scenario,
                kind: SchedulerKind::Easy,
                policy,
            });
        }
        let (results, sharing) =
            with_quiet_panics(|| run_all_checked_shared(&configs, NonZeroUsize::new(4)));
        assert_eq!(sharing.distinct_scenarios, 2);
        assert_eq!(sharing.traces_materialized, 2);
        let healthy = configs.len() - 2;
        for (i, result) in results.iter().enumerate() {
            if i < healthy {
                assert!(result.is_ok(), "healthy cell {i} failed");
            } else {
                let err = result.as_ref().expect_err("poisoned cell succeeded");
                assert!(err.panic.contains("target load must be positive"));
                assert_eq!(err.config, configs[i]);
            }
        }
    }

    #[test]
    fn aggregates_profile_stats_across_cells() {
        let configs = sweep();
        let results = run_all(&configs, NonZeroUsize::new(2));
        // Conservative and EASY both maintain profiles, so every cell
        // reports stats and the totals must dominate each cell's.
        let total = aggregate_profile_stats(&results).expect("profiled schedulers");
        assert!(total.find_anchor_calls > 0);
        assert!(total.reserves > 0);
        for r in &results {
            let cell = r.schedule.profile_stats.expect("each cell profiled");
            assert!(total.find_anchor_calls >= cell.find_anchor_calls);
            assert!(total.peak_segments >= cell.peak_segments);
        }
        assert_eq!(aggregate_profile_stats(&[]), None);
    }
}
