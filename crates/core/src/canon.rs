//! Canonical serialization and stable content hashing of configs.
//!
//! The simulation service (`crates/service`) memoizes completed runs in a
//! content-addressed cache. A cache key must satisfy two properties:
//!
//! 1. **Stability** — the same [`RunConfig`](crate::RunConfig) value must
//!    produce the same key in every process, on every run (no pointer or
//!    randomized-hasher input).
//! 2. **Injectivity** — two configs that differ in any field must produce
//!    different keys; aliasing would silently serve the wrong report.
//!
//! Both are achieved by serializing through the workspace `serde` stub
//! (whose derive emits fields in declaration order, deterministically) and
//! then *canonicalizing* the value tree: every object's keys are sorted
//! byte-wise, recursively. The canonical JSON **text** is the cache key —
//! content addressing by the full content, so distinct scenarios can never
//! alias — and a 64-bit FNV-1a hash of that text is the compact label used
//! in responses, logs, and stats.

use serde::{Serialize, Value};

/// Recursively sort every object's keys byte-wise. Arrays keep their
/// order (sequence order is semantic); scalar values pass through.
pub fn canonicalize(value: &Value) -> Value {
    match value {
        Value::Object(fields) => {
            let mut sorted: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

/// Canonical compact JSON of any serializable value: keys sorted
/// recursively, no whitespace. Equal values produce byte-identical text.
pub fn canonical_json<T: Serialize + ?Sized>(value: &T) -> String {
    serde_json::to_string(&canonicalize(&value.to_value())).expect("canonical value serializes")
}

/// 64-bit FNV-1a over a byte string. Stable across processes and
/// platforms (unlike `std::hash`'s randomized `DefaultHasher`).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Stable content hash of a serializable value: FNV-1a of its canonical
/// JSON. The compact form of the cache key, for display and stats; the
/// cache itself keys on the full canonical text (see [`canonical_json`]).
pub fn content_hash<T: Serialize + ?Sized>(value: &T) -> u64 {
    fnv1a_64(canonical_json(value).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_keys_sort_recursively() {
        let v = Value::Object(vec![
            (
                "z".into(),
                Value::Object(vec![
                    ("b".into(), Value::U64(2)),
                    ("a".into(), Value::U64(1)),
                ]),
            ),
            ("a".into(), Value::Bool(true)),
        ]);
        let canon = canonicalize(&v);
        assert_eq!(
            serde_json::to_string(&canon).unwrap(),
            r#"{"a":true,"z":{"a":1,"b":2}}"#
        );
    }

    #[test]
    fn arrays_keep_order() {
        let v = Value::Array(vec![Value::U64(3), Value::U64(1), Value::U64(2)]);
        assert_eq!(canonicalize(&v), v);
    }

    #[test]
    fn fnv_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_order_does_not_change_key() {
        let a = Value::Object(vec![
            ("x".into(), Value::U64(1)),
            ("y".into(), Value::U64(2)),
        ]);
        let b = Value::Object(vec![
            ("y".into(), Value::U64(2)),
            ("x".into(), Value::U64(1)),
        ]);
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn value_differences_change_key() {
        let a = Value::Object(vec![("x".into(), Value::U64(1))]);
        let b = Value::Object(vec![("x".into(), Value::U64(2))]);
        assert_ne!(canonical_json(&a), canonical_json(&b));
        assert_ne!(content_hash(&a), content_hash(&b));
    }
}
