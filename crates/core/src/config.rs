//! Declarative experiment configuration.
//!
//! An experiment is fully described by a [`RunConfig`]: where the workload
//! comes from, how estimates are derived, what offered load to impose, and
//! which scheduler × priority policy to run. Configs are plain serde data,
//! so sweeps can be written down, saved, diffed, and reproduced exactly.

use crate::driver::{simulate, SchedulerKind};
use crate::schedule::Schedule;
use sched::Policy;
use serde::{Deserialize, Serialize};
use workload::load::scale_to_load;
use workload::models::{ctc, sdsc};
use workload::{EstimateModel, Trace};

/// Where the workload trace comes from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceSource {
    /// Synthetic CTC SP2 model (430 nodes).
    Ctc {
        /// Number of jobs to generate.
        jobs: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Synthetic SDSC SP2 model (128 nodes).
    Sdsc {
        /// Number of jobs to generate.
        jobs: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl TraceSource {
    /// Generate the base trace (exact estimates).
    pub fn generate(&self) -> Trace {
        match *self {
            TraceSource::Ctc { jobs, seed } => ctc().generate(jobs, seed),
            TraceSource::Sdsc { jobs, seed } => sdsc().generate(jobs, seed),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TraceSource::Ctc { .. } => "CTC",
            TraceSource::Sdsc { .. } => "SDSC",
        }
    }
}

/// A workload scenario: source trace + estimate model + load level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Trace source.
    pub source: TraceSource,
    /// How user estimates are derived from runtimes.
    pub estimate: EstimateModel,
    /// Seed for stochastic estimate models.
    pub estimate_seed: u64,
    /// Target offered load ρ (`None` keeps the model's base load).
    pub load: Option<f64>,
}

impl Scenario {
    /// A scenario with exact estimates at the paper's high load.
    pub fn high_load(source: TraceSource) -> Self {
        Scenario {
            source,
            estimate: EstimateModel::Exact,
            estimate_seed: 1,
            load: Some(0.9),
        }
    }

    /// Canonical compact JSON of this scenario (object keys sorted
    /// recursively). Equal scenarios produce byte-identical text, so
    /// this is the trace-sharing key used by the sweep runner and the
    /// service's trace cache.
    pub fn canonical_json(&self) -> String {
        crate::canon::canonical_json(self)
    }

    /// Materialize the trace: generate, apply estimates, rescale load.
    pub fn materialize(&self) -> Trace {
        let base = self.source.generate();
        let estimated = self.estimate.apply(&base, self.estimate_seed);
        match self.load {
            Some(rho) => scale_to_load(&estimated, rho),
            None => estimated,
        }
    }
}

/// One full simulation run: a scenario under a scheduler and policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// The workload scenario.
    pub scenario: Scenario,
    /// Backfilling strategy.
    pub kind: SchedulerKind,
    /// Queue-priority policy.
    pub policy: Policy,
}

impl RunConfig {
    /// Materialize the trace and simulate. Deterministic: equal configs
    /// produce byte-identical schedules.
    pub fn run(&self) -> Schedule {
        let trace = self.scenario.materialize();
        simulate(&trace, self.kind, self.policy)
    }

    /// Run against an already materialized trace (callers sharing one
    /// trace across many scheduler configs avoid regenerating it).
    pub fn run_on(&self, trace: &Trace) -> Schedule {
        simulate(trace, self.kind, self.policy)
    }

    /// Canonical compact JSON of this config (object keys sorted
    /// recursively). Equal configs produce byte-identical text, so this
    /// is the content-addressed cache key used by the simulation service.
    pub fn canonical_json(&self) -> String {
        crate::canon::canonical_json(self)
    }

    /// Stable 64-bit content hash of [`Self::canonical_json`] (FNV-1a).
    /// The compact display form of the cache key; equal configs hash
    /// equal in every process on every platform.
    pub fn content_hash(&self) -> u64 {
        crate::canon::content_hash(self)
    }

    /// Report label, e.g. `"CTC EASY/SJF"`.
    pub fn label(&self) -> String {
        format!(
            "{} {}/{}",
            self.scenario.source.label(),
            self.kind.label(),
            self.policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctc() -> TraceSource {
        TraceSource::Ctc {
            jobs: 300,
            seed: 11,
        }
    }

    #[test]
    fn materialize_is_deterministic() {
        let sc = Scenario::high_load(small_ctc());
        assert_eq!(sc.materialize().jobs(), sc.materialize().jobs());
    }

    #[test]
    fn load_targeting_applies() {
        let sc = Scenario {
            source: small_ctc(),
            estimate: EstimateModel::Exact,
            estimate_seed: 1,
            load: Some(1.1),
        };
        let t = sc.materialize();
        assert!(
            (t.offered_load() - 1.1).abs() < 0.05,
            "rho {}",
            t.offered_load()
        );
    }

    #[test]
    fn estimate_model_applies() {
        let sc = Scenario {
            source: small_ctc(),
            estimate: EstimateModel::systematic(4.0),
            estimate_seed: 1,
            load: None,
        };
        let t = sc.materialize();
        for j in t.jobs() {
            assert!(
                (j.overestimation() - 4.0).abs() < 0.51,
                "R {}",
                j.overestimation()
            );
        }
    }

    #[test]
    fn run_produces_valid_schedule() {
        let cfg = RunConfig {
            scenario: Scenario::high_load(small_ctc()),
            kind: SchedulerKind::Easy,
            policy: Policy::Sjf,
        };
        let s = cfg.run();
        assert_eq!(s.outcomes.len(), 300);
        s.validate().unwrap();
        assert_eq!(cfg.label(), "CTC EASY/SJF");
    }

    #[test]
    fn run_on_shared_trace_matches_run() {
        let cfg = RunConfig {
            scenario: Scenario::high_load(small_ctc()),
            kind: SchedulerKind::Conservative,
            policy: Policy::Fcfs,
        };
        let trace = cfg.scenario.materialize();
        assert_eq!(cfg.run().fingerprint(), cfg.run_on(&trace).fingerprint());
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = RunConfig {
            scenario: Scenario::high_load(TraceSource::Sdsc { jobs: 10, seed: 3 }),
            kind: SchedulerKind::Selective { threshold: 2.5 },
            policy: Policy::XFactor,
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: RunConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
