//! The simulation driver: feeds a trace through a scheduler on a machine.
//!
//! The driver is the only component that knows jobs' **actual** runtimes.
//! It primes the event engine with every arrival, relays events to the
//! scheduler, physically allocates/releases processors on the [`Machine`]
//! for every start the scheduler orders (so over-subscription is caught at
//! the moment it happens, not post-hoc), and schedules each started job's
//! completion at `start + runtime`.
//!
//! Simultaneous events process in a fixed class order — completions, then
//! arrivals, then scheduler wake-ups — so that a job ending at instant *t*
//! frees its processors before anything else at *t* is considered, and
//! wake-ups observe fully updated state.

use crate::schedule::Schedule;
use metrics::JobOutcome;
use obs::trace::{SharedRecorder, TraceCategory, TraceKind};
use sched::conservative::Compression;
use sched::slack::SlackPolicy;
use sched::{
    ConservativeScheduler, DepthScheduler, EasyScheduler, FcfsScheduler, PreemptiveScheduler,
    SelectiveScheduler, SlackScheduler,
};
use sched::{Decisions, JobMeta, Policy, ProfileStats, Scheduler};
use serde::{Deserialize, Serialize};
use simcore::{Actor, Ctx, Engine, EventClass, JobId, Machine, SimSpan, SimTime};
use workload::{Category, CategoryCriteria, Trace};

/// Which scheduling strategy to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Priority order, no backfilling (the pre-backfilling baseline).
    NoBackfill,
    /// Conservative backfilling: a reservation for every job. Holes are
    /// filled per the paper (a queued job moves only to start immediately).
    Conservative,
    /// Conservative backfilling with full re-anchoring compression: every
    /// early completion re-anchors all queued reservations as early as
    /// possible (ablation variant).
    ConservativeReanchor,
    /// Conservative backfilling where early-completion holes are offered to
    /// queued jobs strictly in priority order, stopping at the first that
    /// cannot start immediately (ablation variant).
    ConservativeHeadStart,
    /// Conservative backfilling that never moves queued reservations:
    /// holes from early completions benefit only later arrivals
    /// (ablation variant).
    ConservativeNoCompress,
    /// Aggressive (EASY) backfilling: one pivot reservation.
    Easy,
    /// Selective backfilling: reservation once the expansion factor
    /// crosses the threshold.
    Selective {
        /// Expansion-factor threshold (≥ 1).
        threshold: f64,
    },
    /// Slack-based backfilling: every job is promised its earliest anchor
    /// plus `slack_factor × estimate`; the window in between is open for
    /// backfilling (Talby & Feitelson, the paper's reference \[13\]).
    Slack {
        /// Multiple of the estimate used as the promise slack.
        slack_factor: f64,
    },
    /// Reservation-depth backfilling: the top `depth` queued jobs hold
    /// reservations, recomputed per event (EASY = depth 1; the
    /// EASY↔conservative continuum of Chiang et al.).
    Depth {
        /// Number of protected queue positions (≥ 1).
        depth: usize,
    },
    /// EASY with selective preemption: once the queue head's expansion
    /// factor crosses the threshold, running jobs may be suspended to make
    /// room (the authors' companion strategy, their reference \[6\]).
    Preemptive {
        /// Expansion-factor threshold that triggers a preemption episode.
        threshold: f64,
    },
}

impl SchedulerKind {
    /// Instantiate the scheduler for a machine of `capacity` processors.
    pub fn build(&self, capacity: u32, policy: Policy) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::NoBackfill => Box::new(FcfsScheduler::new(capacity, policy)),
            SchedulerKind::Conservative => Box::new(ConservativeScheduler::new(capacity, policy)),
            SchedulerKind::ConservativeReanchor => Box::new(
                ConservativeScheduler::with_compression(capacity, policy, Compression::Reanchor),
            ),
            SchedulerKind::ConservativeHeadStart => Box::new(
                ConservativeScheduler::with_compression(capacity, policy, Compression::HeadStart),
            ),
            SchedulerKind::ConservativeNoCompress => Box::new(
                ConservativeScheduler::with_compression(capacity, policy, Compression::None),
            ),
            SchedulerKind::Easy => Box::new(EasyScheduler::new(capacity, policy)),
            SchedulerKind::Selective { threshold } => {
                Box::new(SelectiveScheduler::new(capacity, policy, threshold))
            }
            SchedulerKind::Slack { slack_factor } => Box::new(SlackScheduler::new(
                capacity,
                policy,
                SlackPolicy::ProportionalToEstimate(slack_factor),
            )),
            SchedulerKind::Depth { depth } => {
                Box::new(DepthScheduler::new(capacity, policy, depth))
            }
            SchedulerKind::Preemptive { threshold } => {
                Box::new(PreemptiveScheduler::new(capacity, policy, threshold))
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            SchedulerKind::NoBackfill => "NoBF".into(),
            SchedulerKind::Conservative => "Cons".into(),
            SchedulerKind::ConservativeReanchor => "Cons(re)".into(),
            SchedulerKind::ConservativeHeadStart => "Cons(hs)".into(),
            SchedulerKind::ConservativeNoCompress => "Cons(no)".into(),
            SchedulerKind::Easy => "EASY".into(),
            SchedulerKind::Selective { threshold } => format!("Sel({threshold})"),
            SchedulerKind::Slack { slack_factor } => format!("Slack({slack_factor})"),
            SchedulerKind::Depth { depth } => format!("Depth({depth})"),
            SchedulerKind::Preemptive { threshold } => format!("Preempt({threshold})"),
        }
    }
}

/// One record of the simulation's event journal (optional instrumentation
/// for debugging, visualization, and causality tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// When the event fired.
    pub time: SimTime,
    /// What happened.
    pub kind: JournalKind,
    /// The job involved (absent for wake-ups).
    pub job: Option<JobId>,
    /// Queue length *after* the event was handled.
    pub queue_len: u32,
}

/// Journal event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalKind {
    /// A job was submitted.
    Arrive,
    /// The scheduler started (or resumed) a job.
    Start,
    /// A running job completed.
    Complete,
    /// A running job was suspended.
    Preempt,
    /// A scheduler-requested timer fired.
    Wake,
}

/// Bin a journal's queue-length trajectory into a time series: the
/// time-average number of queued jobs per bin. The queue length is
/// piecewise constant between journal entries (it changes only at events).
pub fn journal_queue_series(
    journal: &[crate::driver::JournalEntry],
    bin: simcore::SimSpan,
) -> metrics::TimeSeries {
    assert!(!bin.is_zero(), "need a positive bin width");
    let Some(first) = journal.first() else {
        return metrics::TimeSeries::from_parts(SimTime::ZERO, bin, vec![]);
    };
    let last = journal.last().expect("non-empty");
    let origin = first.time;
    let span = last.time.since(origin).as_secs();
    let n = (span.div_ceil(bin.as_secs()).max(1)) as usize;
    let mut weighted = vec![0u128; n];
    let mut level = 0u32;
    let mut prev = origin;
    for e in journal {
        // Integrate `level` over [prev, e.time).
        let (mut t, end) = (prev, e.time);
        while t < end {
            let b = (t.since(origin).as_secs() / bin.as_secs()) as usize;
            let bin_end = origin + simcore::SimSpan::new((b as u64 + 1) * bin.as_secs());
            let hi = end.min(bin_end);
            weighted[b.min(n - 1)] += level as u128 * hi.since(t).as_secs() as u128;
            t = hi;
        }
        level = e.queue_len;
        prev = e.time;
    }
    let values = weighted
        .iter()
        .map(|&w| w as f64 / bin.as_secs_f64())
        .collect();
    metrics::TimeSeries::from_parts(origin, bin, values)
}

/// Observability options for one simulation run. Everything here is
/// record-only: enabling any of it cannot change a single scheduling
/// decision (asserted by the fingerprint-parity tests).
#[derive(Debug, Default)]
pub struct SimOptions {
    /// Collect the event journal (as [`simulate_journaled`] does).
    pub journal: bool,
    /// Record typed decision-trace events into this recorder. The driver
    /// tags every job with its paper category at arrival and emits
    /// `Arrive`/`Start`/`Complete`/`Preempt`; profile-keeping schedulers
    /// additionally emit `Reserve`/`Backfill`/`Compress`.
    pub recorder: Option<SharedRecorder>,
    /// Accumulate per-phase self-profiling timings (event pop, arrival /
    /// completion / wake handling, and the schedulers' queue-ops /
    /// compress / backfill sub-phases) into this shared accumulator. See
    /// `obs::span::PhaseAcc`; DESIGN.md §17 covers the phase taxonomy.
    pub phases: Option<obs::SharedPhases>,
}

impl SimOptions {
    /// Record into `recorder`, no journal.
    pub fn with_recorder(recorder: SharedRecorder) -> Self {
        SimOptions {
            journal: false,
            recorder: Some(recorder),
            phases: None,
        }
    }

    /// Accumulate per-phase timings into `phases`, nothing else.
    pub fn with_phases(phases: obs::SharedPhases) -> Self {
        SimOptions {
            journal: false,
            recorder: None,
            phases: Some(phases),
        }
    }
}

/// Map a workload category onto its trace-event tag.
fn trace_category(cat: Category) -> TraceCategory {
    match cat {
        Category::SN => TraceCategory::SN,
        Category::SW => TraceCategory::SW,
        Category::LN => TraceCategory::LN,
        Category::LW => TraceCategory::LW,
    }
}

/// Accumulate one run's profile counters into `registry` under the
/// `sim.*` naming convention (see the `obs::metrics` docs). The per-run
/// [`ProfileStats`] stays the protocol-level report — this flush is how
/// those counters also surface in a long-lived registry (the process
/// global for CLI runs, the daemon's own for `bfsimd`).
pub fn flush_profile_stats(registry: &obs::Registry, stats: &ProfileStats) {
    registry
        .counter("sim.profile.find_anchor_calls")
        .add(stats.find_anchor_calls);
    registry
        .counter("sim.profile.segments_visited")
        .add(stats.segments_visited);
    registry
        .counter("sim.profile.tree.descents")
        .add(stats.tree_descents);
    registry
        .counter("sim.profile.tree.nodes_visited")
        .add(stats.tree_nodes_visited);
    registry
        .counter("sim.profile.tree.incremental_updates")
        .add(stats.tree_incremental_updates);
    registry
        .counter("sim.profile.tree.rebuilds")
        .add(stats.tree_rebuilds);
    registry.counter("sim.profile.reserves").add(stats.reserves);
    registry.counter("sim.profile.releases").add(stats.releases);
    registry
        .counter("sim.profile.compress_passes")
        .add(stats.compress_passes);
    registry
        .counter("sim.profile.rebuilds")
        .add(stats.profile_rebuilds);
    registry
        .counter("sim.profile.rebuilds_avoided")
        .add(stats.profile_rebuilds_avoided);
    registry
        .counter("sim.profile.fits_cache.hits")
        .add(stats.fits_cache_hits);
    registry
        .counter("sim.profile.fits_cache.misses")
        .add(stats.fits_cache_misses);
    registry
        .counter("sim.queue.inserts")
        .add(stats.queue_inserts);
    registry.counter("sim.queue.sorts").add(stats.queue_sorts);
    registry
        .counter("sim.queue.sorts_avoided")
        .add(stats.queue_sorts_avoided);
    registry
        .counter("sim.profile.order_bytes_shifted")
        .add(stats.order_bytes_shifted);
    registry
        .counter("sim.profile.slab_slot_reuses")
        .add(stats.slab_slot_reuses);
    registry
        .counter("sim.scratch_reuses")
        .add(stats.scratch_reuses);
    let peak = registry.gauge("sim.profile.peak_segments");
    if stats.peak_segments as i64 > peak.get() {
        peak.set(stats.peak_segments as i64);
    }
}

/// Event classes: completions release processors before anything else at
/// the same instant; wake-ups run last, over fully updated state.
const CLASS_COMPLETION: EventClass = EventClass::FIRST;
const CLASS_ARRIVAL: EventClass = EventClass::NORMAL;
const CLASS_WAKE: EventClass = EventClass::LAST;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrive(u32),
    /// Completion of the run-epoch given by the second field; a stale
    /// epoch means the job was preempted after this event was scheduled,
    /// and the event is ignored.
    Complete(JobId, u32),
    Wake,
}

struct Driver<'a> {
    trace: &'a Trace,
    scheduler: Box<dyn Scheduler>,
    machine: Machine,
    /// First start per job.
    starts: Vec<Option<SimTime>>,
    /// Final completion per job.
    ends: Vec<Option<SimTime>>,
    /// Actual runtime still owed per job (shrinks across preemptions).
    remaining: Vec<SimSpan>,
    /// Start of the current run segment, when running.
    running_since: Vec<Option<SimTime>>,
    /// Run-epoch per job; bumped on every preemption to invalidate the
    /// pending completion event.
    epoch: Vec<u32>,
    /// Completed run segments, for capacity auditing of preemptive
    /// schedules (a suspended job holds no processors).
    segments: Vec<simcore::PlacedJob>,
    completions: u32,
    /// Discrete events delivered (arrivals, completions — stale ones
    /// included — and wake-ups): the denominator of events/sec throughput.
    events: u64,
    journal: Option<Vec<JournalEntry>>,
    /// Opt-in decision-trace recorder (shared with the scheduler).
    recorder: Option<SharedRecorder>,
    /// Opt-in per-phase timing accumulator (shared with the scheduler).
    phases: Option<obs::SharedPhases>,
    /// When profiling: the phase class of the event being handled,
    /// shared with the engine-loop timing hook in `simulate_observed`.
    /// The handler writes the tag (an enum store, no clock read); the
    /// hook reads the clock once per loop boundary and attributes the
    /// handler interval to whatever the tag says.
    phase_tag: Option<std::rc::Rc<std::cell::Cell<obs::Phase>>>,
    /// Criteria used to tag trace events with the paper category. Only
    /// the driver may categorize: assignment uses the actual runtime,
    /// which schedulers never see.
    criteria: CategoryCriteria,
    /// Times with a wake event already in flight. Schedulers restate their
    /// earliest wake-up need after every event; scheduling each request
    /// verbatim would let stale wake chains multiply. The invariant kept
    /// here is: if the scheduler needs a wake at `W`, a wake event is
    /// pending at some time `<= W` — and whenever a wake fires, the
    /// scheduler restates its need, re-establishing the invariant.
    pending_wakes: std::collections::BTreeSet<SimTime>,
    /// Index of the next trace arrival to seed. Arrivals enter the event
    /// queue one at a time — each delivered arrival schedules the next —
    /// so the pending set stays shallow instead of holding the whole
    /// trace up front (see the seeding comment in `simulate_observed`).
    next_arrival: u32,
}

impl Driver<'_> {
    fn record(&mut self, time: SimTime, kind: JournalKind, job: Option<JobId>) {
        if let Some(journal) = &mut self.journal {
            let queue_len = self.scheduler.queue_len() as u32;
            journal.push(JournalEntry {
                time,
                kind,
                job,
                queue_len,
            });
        }
    }

    /// Record one decision-trace event, if a recorder is attached.
    fn trace_event(&self, now: SimTime, id: JobId, kind: TraceKind) {
        if let Some(rec) = &self.recorder {
            rec.borrow_mut().record(now.as_secs(), id.0 as u64, kind);
        }
    }

    fn apply(&mut self, decisions: Decisions, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        for &id in &decisions.preempts {
            let i = id.0 as usize;
            let seg_start = self.running_since[i]
                .take()
                .unwrap_or_else(|| panic!("{id} preempted while not running"));
            let job = self.trace.job(id);
            let ran_now = now.since(seg_start);
            // ran_now == remaining is possible: the victim's completion is
            // pending at this very instant behind the event that decided
            // the preemption. The suspension wins (epoch bump voids the
            // completion); the job resumes later with zero remaining work
            // and completes immediately on restart.
            debug_assert!(ran_now <= self.remaining[i], "{id} ran past its runtime");
            self.remaining[i] = self.remaining[i] - ran_now;
            self.epoch[i] += 1; // invalidates the pending completion event
            self.machine
                .release(id, now)
                .expect("preempt of unallocated job");
            self.segments.push(simcore::PlacedJob {
                id: id.0,
                arrival: job.arrival,
                start: seg_start,
                end: now,
                width: job.width,
            });
            let total_ran = job.runtime - self.remaining[i];
            self.scheduler.on_preempted(id, total_ran, now);
            self.record(now, JournalKind::Preempt, Some(id));
            self.trace_event(now, id, TraceKind::Preempt);
        }
        for &id in &decisions.starts {
            let i = id.0 as usize;
            let job = self.trace.job(id);
            assert!(
                self.running_since[i].is_none() && self.ends[i].is_none(),
                "{id} started while already running or done ({})",
                self.scheduler.name()
            );
            self.machine
                .allocate(id, job.width, now)
                .unwrap_or_else(|e| panic!("{} oversubscribed: {e}", self.scheduler.name()));
            if self.starts[i].is_none() {
                self.starts[i] = Some(now);
            }
            self.running_since[i] = Some(now);
            self.record(now, JournalKind::Start, Some(id));
            self.trace_event(now, id, TraceKind::Start);
            ctx.schedule_classed(
                now + self.remaining[i],
                CLASS_COMPLETION,
                Ev::Complete(id, self.epoch[i]),
            );
        }
        if let Some(at) = decisions.wakeup {
            debug_assert!(at >= now, "wake-up scheduled in the past");
            let at = at.max(now);
            if self.pending_wakes.range(..=at).next().is_none() {
                self.pending_wakes.insert(at);
                ctx.schedule_classed(at, CLASS_WAKE, Ev::Wake);
            }
        }
        // Hand the spent buffers back so the scheduler can reuse their
        // capacity on the next event.
        self.scheduler.recycle(decisions);
    }
}

impl Actor<Ev> for Driver<'_> {
    fn handle(&mut self, event: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        self.events += 1;
        // Per-phase self-profiling: tag the handler with the event's
        // class; the engine-loop hook times the whole handler interval
        // and attributes it to the tag. The four top-level phases (pop +
        // these three) tile the event loop's wall time; the schedulers'
        // nested phases are attribution inside these, never additional
        // to them.
        if let Some(tag) = &self.phase_tag {
            tag.set(match event {
                Ev::Arrive(_) => obs::Phase::Arrival,
                Ev::Complete(..) => obs::Phase::Completion,
                Ev::Wake => obs::Phase::Wake,
            });
        }
        let decisions = match event {
            Ev::Arrive(idx) => {
                // Seed the successor before anything else this instant
                // can be scheduled; arrivals thereby keep ascending
                // insertion order among themselves.
                let next = self.next_arrival as usize;
                if next < self.trace.jobs().len() {
                    self.next_arrival += 1;
                    ctx.schedule_classed(
                        self.trace.jobs()[next].arrival,
                        CLASS_ARRIVAL,
                        Ev::Arrive(next as u32),
                    );
                }
                let job = self.trace.jobs()[idx as usize];
                if let Some(rec) = &self.recorder {
                    // Tag before the scheduler sees the job, so any
                    // Reserve/Backfill it records carries the category.
                    let cat = trace_category(self.criteria.categorize(&job));
                    let mut rec = rec.borrow_mut();
                    rec.tag(job.id.0 as u64, cat);
                    rec.record(
                        now.as_secs(),
                        job.id.0 as u64,
                        TraceKind::Arrive {
                            estimate: job.estimate.as_secs(),
                            width: job.width,
                        },
                    );
                }
                let meta = JobMeta {
                    id: job.id,
                    arrival: job.arrival,
                    estimate: job.estimate,
                    width: job.width,
                };
                let d = self.scheduler.on_arrival(meta, now);
                self.record(now, JournalKind::Arrive, Some(job.id));
                d
            }
            Ev::Complete(id, epoch) => {
                let i = id.0 as usize;
                if epoch != self.epoch[i] {
                    // The job was preempted after this completion was
                    // scheduled; its resume scheduled a fresh one.
                    return;
                }
                let seg_start = self.running_since[i]
                    .take()
                    .expect("completion of idle job");
                let job = self.trace.job(id);
                self.machine
                    .release(id, now)
                    .expect("completion without allocation");
                self.segments.push(simcore::PlacedJob {
                    id: id.0,
                    arrival: job.arrival,
                    start: seg_start,
                    end: now,
                    width: job.width,
                });
                self.remaining[i] = SimSpan::ZERO;
                self.ends[i] = Some(now);
                self.completions += 1;
                self.trace_event(
                    now,
                    id,
                    TraceKind::Complete {
                        overestimate_factor: job.overestimation(),
                    },
                );
                let d = self.scheduler.on_completion(id, now);
                self.record(now, JournalKind::Complete, Some(id));
                d
            }
            Ev::Wake => {
                self.pending_wakes.remove(&now);
                let d = self.scheduler.on_wake(now);
                self.record(now, JournalKind::Wake, None);
                d
            }
        };
        self.apply(decisions, ctx);
    }
}

/// Simulate `trace` under the given scheduler and priority policy.
///
/// Panics if the scheduler misbehaves (oversubscribes, loses a job, or
/// never starts one) — scheduler bugs must be loud in a study whose output
/// is comparative numbers.
pub fn simulate(trace: &Trace, kind: SchedulerKind, policy: Policy) -> Schedule {
    simulate_observed(trace, kind, policy, SimOptions::default()).0
}

/// Like [`simulate`], additionally returning the full event journal
/// (arrivals, starts, completions, wake-ups, in processing order).
pub fn simulate_journaled(
    trace: &Trace,
    kind: SchedulerKind,
    policy: Policy,
) -> (Schedule, Vec<JournalEntry>) {
    let (schedule, journal) = simulate_observed(
        trace,
        kind,
        policy,
        SimOptions {
            journal: true,
            recorder: None,
            phases: None,
        },
    );
    (schedule, journal.expect("journaling was enabled"))
}

/// Like [`simulate`], with explicit observability options: an event
/// journal and/or a decision-trace recorder. Recording is strictly
/// observational — the returned schedule is byte-identical to an
/// unobserved run's.
pub fn simulate_observed(
    trace: &Trace,
    kind: SchedulerKind,
    policy: Policy,
    options: SimOptions,
) -> (Schedule, Option<Vec<JournalEntry>>) {
    let mut scheduler = kind.build(trace.nodes(), policy);
    if let Some(rec) = &options.recorder {
        scheduler.set_recorder(rec.clone());
    }
    if let Some(phases) = &options.phases {
        scheduler.set_phases(phases.clone());
    }
    let name = scheduler.name();
    let mut driver = Driver {
        trace,
        scheduler,
        machine: Machine::new(trace.nodes()),
        starts: vec![None; trace.len()],
        ends: vec![None; trace.len()],
        remaining: trace.jobs().iter().map(|j| j.runtime).collect(),
        running_since: vec![None; trace.len()],
        epoch: vec![0; trace.len()],
        segments: Vec::with_capacity(trace.len()),
        completions: 0,
        events: 0,
        journal: options.journal.then(Vec::new),
        recorder: options.recorder,
        phases: options.phases,
        phase_tag: None,
        criteria: CategoryCriteria::default(),
        pending_wakes: std::collections::BTreeSet::new(),
        next_arrival: 1,
    };
    let mut engine = Engine::new();
    // Arrivals are seeded lazily: prime only the first, and each arrival
    // schedules its successor (the trace is sorted by arrival, so the
    // successor is never in the past). The pending-event set then holds
    // one arrival plus the in-flight completions/wake-ups — dozens —
    // instead of the whole trace, keeping both tiers of the ladder event
    // queue shallow. Delivery order is unchanged: arrivals keep their
    // trace-relative insertion order, and cross-class ties at an instant
    // are decided by `EventClass`, not insertion sequence.
    if let Some(first) = trace.jobs().first() {
        engine.prime_classed(first.arrival, CLASS_ARRIVAL, Ev::Arrive(first.id.0));
    }
    match driver.phases.clone() {
        Some(phases) => {
            // Chained boundary timing: one fast-clock read per engine
            // hook (two per event), with the handler-end reading doubling
            // as the next pop's start. The driver tags each handler with
            // its phase class; the hook attributes the interval.
            let tag = std::rc::Rc::new(std::cell::Cell::new(obs::Phase::EventPop));
            driver.phase_tag = Some(tag.clone());
            obs::span::calibrate_clock();
            let mut last = obs::span::clock_ticks();
            engine.run_hooked(&mut driver, &mut |hook| {
                let now = obs::span::clock_ticks();
                let ns = obs::span::ticks_to_ns(now.saturating_sub(last));
                last = now;
                let phase = match hook {
                    simcore::Hook::Popped => obs::Phase::EventPop,
                    simcore::Hook::Handled => tag.get(),
                };
                phases.borrow_mut().record(phase, ns);
            });
        }
        None => engine.run(&mut driver),
    }

    assert_eq!(
        driver.completions,
        trace.len() as u32,
        "{name}: {} of {} jobs never completed",
        trace.len() as u32 - driver.completions,
        trace.len()
    );
    assert_eq!(driver.machine.in_use(), 0, "{name}: machine not drained");
    assert_eq!(
        driver.scheduler.queue_len(),
        0,
        "{name}: jobs stranded in queue"
    );

    let outcomes: Vec<JobOutcome> = trace
        .jobs()
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let start =
                driver.starts[i].unwrap_or_else(|| panic!("{name}: {} never started", job.id));
            let end = driver.ends[i].unwrap_or_else(|| panic!("{name}: {} never finished", job.id));
            JobOutcome::with_end(*job, start, end)
        })
        .collect();
    let schedule = Schedule {
        scheduler: name,
        nodes: trace.nodes(),
        outcomes,
        run_segments: driver.segments,
        profile_stats: driver.scheduler.profile_stats(),
        events: driver.events,
    };
    // Surface this run's hot-path counters in the process-global metrics
    // registry (monotone totals across all runs in the process).
    let registry = obs::metrics::global();
    registry.counter("sim.runs").inc();
    registry.counter("sim.events").add(schedule.events);
    if let Some(stats) = &schedule.profile_stats {
        flush_profile_stats(registry, stats);
    }
    (schedule, driver.journal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimSpan;
    use workload::Job;

    fn job(id: u32, arrival: u64, runtime: u64, estimate: u64, width: u32) -> Job {
        Job {
            id: JobId(id),
            arrival: SimTime::new(arrival),
            runtime: SimSpan::new(runtime),
            estimate: SimSpan::new(estimate),
            width,
        }
    }

    fn tiny_trace() -> Trace {
        Trace::new(
            "tiny",
            8,
            vec![
                job(0, 0, 100, 100, 6),
                job(1, 10, 500, 500, 8),
                job(2, 20, 80, 80, 2),
                job(3, 30, 50, 50, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_schedulers_complete_and_validate() {
        let trace = tiny_trace();
        for kind in [
            SchedulerKind::NoBackfill,
            SchedulerKind::Conservative,
            SchedulerKind::Easy,
            SchedulerKind::Selective { threshold: 2.0 },
        ] {
            for policy in Policy::PAPER {
                let s = simulate(&trace, kind, policy);
                assert_eq!(s.outcomes.len(), 4, "{}", s.scheduler);
                s.validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", s.scheduler));
            }
        }
    }

    #[test]
    fn easy_backfills_where_fcfs_waits() {
        let trace = tiny_trace();
        let nobf = simulate(&trace, SchedulerKind::NoBackfill, Policy::Fcfs);
        let easy = simulate(&trace, SchedulerKind::Easy, Policy::Fcfs);
        // Job 2 (2 procs, 80 s, ends before job 0's 100 s) backfills under
        // EASY but waits behind job 1 under plain FCFS.
        assert_eq!(easy.outcomes[2].start, SimTime::new(20));
        assert!(nobf.outcomes[2].start > SimTime::new(100));
    }

    #[test]
    fn exact_estimates_make_schedules_deterministic_and_repeatable() {
        let trace = tiny_trace();
        let a = simulate(&trace, SchedulerKind::Easy, Policy::Sjf);
        let b = simulate(&trace, SchedulerKind::Easy, Policy::Sjf);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn conservative_priority_equivalence_on_tiny_trace() {
        // Section 4.1: with accurate estimates, conservative backfilling
        // produces the same schedule under every priority policy.
        let trace = tiny_trace();
        let fp: Vec<u64> = Policy::PAPER
            .iter()
            .map(|&p| simulate(&trace, SchedulerKind::Conservative, p).fingerprint())
            .collect();
        assert_eq!(fp[0], fp[1]);
        assert_eq!(fp[1], fp[2]);
    }

    #[test]
    fn early_completions_are_exploited() {
        // Job 0 estimated 1000 s but runs 100 s; conservative must compress
        // job 1 into the hole.
        let trace = Trace::new(
            "early",
            8,
            vec![job(0, 0, 100, 1000, 8), job(1, 10, 100, 100, 8)],
        )
        .unwrap();
        let s = simulate(&trace, SchedulerKind::Conservative, Policy::Fcfs);
        assert_eq!(s.outcomes[1].start, SimTime::new(100));
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace::new("empty", 4, vec![]).unwrap();
        let s = simulate(&trace, SchedulerKind::Easy, Policy::Fcfs);
        assert!(s.outcomes.is_empty());
    }

    #[test]
    fn journal_records_full_causal_history() {
        let trace = tiny_trace();
        let (schedule, journal) = simulate_journaled(&trace, SchedulerKind::Easy, Policy::Fcfs);
        // Times are non-decreasing in processing order.
        for w in journal.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Every job has exactly one Arrive, one Start, one Complete, in
        // causal order.
        for job in trace.jobs() {
            let times: Vec<(JournalKind, SimTime)> = journal
                .iter()
                .filter(|e| e.job == Some(job.id))
                .map(|e| (e.kind, e.time))
                .collect();
            let arrive = times
                .iter()
                .filter(|(k, _)| *k == JournalKind::Arrive)
                .count();
            let start = times
                .iter()
                .filter(|(k, _)| *k == JournalKind::Start)
                .count();
            let complete = times
                .iter()
                .filter(|(k, _)| *k == JournalKind::Complete)
                .count();
            assert_eq!((arrive, start, complete), (1, 1, 1), "{}", job.id);
            let t = |kind: JournalKind| times.iter().find(|(k, _)| *k == kind).unwrap().1;
            assert!(t(JournalKind::Arrive) <= t(JournalKind::Start));
            assert!(t(JournalKind::Start) <= t(JournalKind::Complete));
            // The journal's start matches the schedule's outcome.
            assert_eq!(
                t(JournalKind::Start),
                schedule.outcomes[job.id.0 as usize].start
            );
        }
    }

    #[test]
    fn journal_queue_series_tracks_backlog() {
        // Machine 8 procs; three 8-wide jobs arriving together: queue
        // holds 2 then 1 then 0 jobs as they drain.
        let trace = Trace::new(
            "q",
            8,
            vec![
                job(0, 0, 100, 100, 8),
                job(1, 1, 100, 100, 8),
                job(2, 2, 100, 100, 8),
            ],
        )
        .unwrap();
        let (_, journal) = simulate_journaled(&trace, SchedulerKind::Easy, Policy::Fcfs);
        let ts = journal_queue_series(&journal, SimSpan::new(100));
        // Bin [0,100): 2 queued; bin [100,200): 1 queued; bin [200,300): 0.
        assert!(ts.values()[0] > 1.9, "bin0 {:?}", ts.values());
        assert!((ts.values()[1] - 1.0).abs() < 0.1, "bin1 {:?}", ts.values());
    }

    #[test]
    fn journal_queue_series_of_empty_journal() {
        let ts = journal_queue_series(&[], SimSpan::new(10));
        assert!(ts.is_empty());
    }

    #[test]
    fn journaled_and_plain_simulation_agree() {
        let trace = tiny_trace();
        let plain = simulate(&trace, SchedulerKind::Conservative, Policy::Sjf);
        let (journaled, _) = simulate_journaled(&trace, SchedulerKind::Conservative, Policy::Sjf);
        assert_eq!(plain.fingerprint(), journaled.fingerprint());
    }

    #[test]
    fn scheduler_kind_labels() {
        assert_eq!(SchedulerKind::Easy.label(), "EASY");
        assert_eq!(
            SchedulerKind::Selective { threshold: 2.0 }.label(),
            "Sel(2)"
        );
    }
}
