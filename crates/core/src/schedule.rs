//! The result of simulating one trace under one scheduler.

use metrics::{JobOutcome, ScheduleStats};
use sched::ProfileStats;
use simcore::{validate_schedule, PlacedJob, SimError, SimTime};
use workload::CategoryCriteria;

/// A completed schedule: one outcome per job, in job-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Name of the scheduler that produced it (e.g. `"EASY/SJF"`).
    pub scheduler: String,
    /// Machine size the schedule ran on.
    pub nodes: u32,
    /// Per-job outcomes, indexed by job id.
    pub outcomes: Vec<JobOutcome>,
    /// Contiguous run segments (one per job for non-preemptive schedules;
    /// one per run for preemptive ones). This, not `outcomes`, is what
    /// capacity auditing sweeps — a suspended job holds no processors.
    pub run_segments: Vec<PlacedJob>,
    /// Availability-profile operation counters accumulated by the
    /// scheduler over the run, if it maintains a profile (`None` for
    /// profile-free schedulers such as plain FCFS).
    pub profile_stats: Option<ProfileStats>,
    /// Discrete events the driver delivered over the run (arrivals,
    /// completions, wake-ups). The denominator of events/sec throughput;
    /// excluded from [`Schedule::fingerprint`], which hashes decisions
    /// only.
    pub events: u64,
}

impl Schedule {
    /// Aggregate the paper's statistics.
    pub fn stats(&self, criteria: &CategoryCriteria) -> ScheduleStats {
        ScheduleStats::from_outcomes(&self.outcomes, self.nodes, criteria)
    }

    /// Audit the schedule against machine capacity, independent of the
    /// scheduler's own bookkeeping. Sweeps the run segments, and checks
    /// that each job's segments cover exactly its runtime within its
    /// `[start, end]` outcome window.
    pub fn validate(&self) -> Result<(), SimError> {
        validate_schedule(&self.run_segments, self.nodes)?;
        let mut covered = vec![0u64; self.outcomes.len()];
        for seg in &self.run_segments {
            let o = &self.outcomes[seg.id as usize];
            if seg.start < o.start || seg.end > o.end() {
                return Err(SimError::AuditFailure(format!(
                    "job#{} segment [{}, {}] outside its outcome window",
                    seg.id, seg.start, seg.end
                )));
            }
            covered[seg.id as usize] += seg.end.since(seg.start).as_secs();
        }
        for (o, &c) in self.outcomes.iter().zip(&covered) {
            if c != o.job.runtime.as_secs() {
                return Err(SimError::AuditFailure(format!(
                    "{} ran {c} s of its {} runtime",
                    o.id(),
                    o.job.runtime
                )));
            }
        }
        Ok(())
    }

    /// Completion time of the last job (zero for an empty schedule).
    pub fn last_end(&self) -> SimTime {
        self.outcomes
            .iter()
            .map(|o| o.end())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// FNV-1a fingerprint of the `(job id, start time)` assignment —
    /// two schedules are behaviourally identical iff their fingerprints
    /// match. Used to verify the paper's Section 4.1 equivalence theorem.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for o in &self.outcomes {
            eat(o.id().0 as u64);
            eat(o.start.as_secs());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{JobId, SimSpan};
    use workload::Job;

    fn outcome(id: u32, arrival: u64, runtime: u64, width: u32, start: u64) -> JobOutcome {
        JobOutcome::new(
            Job {
                id: JobId(id),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(runtime),
                width,
            },
            SimTime::new(start),
        )
    }

    fn schedule(outcomes: Vec<JobOutcome>) -> Schedule {
        let run_segments = outcomes
            .iter()
            .map(|o| PlacedJob {
                id: o.id().0,
                arrival: o.job.arrival,
                start: o.start,
                end: o.end(),
                width: o.job.width,
            })
            .collect();
        Schedule {
            scheduler: "test".into(),
            nodes: 8,
            outcomes,
            run_segments,
            profile_stats: None,
            events: 0,
        }
    }

    #[test]
    fn valid_schedule_passes_audit() {
        let s = schedule(vec![outcome(0, 0, 100, 8, 0), outcome(1, 0, 50, 8, 100)]);
        assert!(s.validate().is_ok());
        assert_eq!(s.last_end(), SimTime::new(150));
    }

    #[test]
    fn oversubscribed_schedule_fails_audit() {
        let s = schedule(vec![outcome(0, 0, 100, 6, 0), outcome(1, 0, 100, 6, 50)]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn fingerprint_detects_start_time_differences() {
        let a = schedule(vec![outcome(0, 0, 100, 4, 0), outcome(1, 0, 100, 4, 0)]);
        let b = schedule(vec![outcome(0, 0, 100, 4, 0), outcome(1, 0, 100, 4, 0)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = schedule(vec![outcome(0, 0, 100, 4, 0), outcome(1, 0, 100, 4, 7)]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn empty_schedule() {
        let s = schedule(vec![]);
        assert!(s.validate().is_ok());
        assert_eq!(s.last_end(), SimTime::ZERO);
        let stats = s.stats(&CategoryCriteria::default());
        assert_eq!(stats.overall.count(), 0);
    }
}
