//! Replicated experiment campaigns with confidence intervals.
//!
//! A single simulated trace is one sample from the workload model; any
//! comparison of schedulers on it could be a seed artifact. A
//! [`Campaign`] runs the same scenario across many seeds and reports each
//! metric as **mean ± half-width of the 95 % confidence interval** over
//! seeds (Student's t), so "A beats B" claims carry their uncertainty.

use crate::config::{RunConfig, Scenario, TraceSource};
use crate::driver::SchedulerKind;
use crate::runner::run_all;
use sched::Policy;
use std::num::NonZeroUsize;
use workload::CategoryCriteria;

/// A replicated estimate: sample mean and 95 % CI half-width over seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Mean over seeds.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval (0 with one seed).
    pub ci95: f64,
    /// Number of replicates.
    pub replicates: usize,
}

impl Estimate {
    /// Compute from per-seed values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "estimate needs at least one sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Estimate {
                mean,
                ci95: 0.0,
                replicates: 1,
            };
        }
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        let se = (var / n as f64).sqrt();
        Estimate {
            mean,
            ci95: t_crit_95(n - 1) * se,
            replicates: n,
        }
    }

    /// True when the two estimates' CIs do not overlap — a conservative
    /// "significantly different" check.
    pub fn clearly_below(&self, other: &Estimate) -> bool {
        self.mean + self.ci95 < other.mean - other.ci95
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.replicates > 1 {
            write!(f, "{:.2} ± {:.2}", self.mean, self.ci95)
        } else {
            write!(f, "{:.2}", self.mean)
        }
    }
}

/// Two-sided 95 % Student-t critical value for `df` degrees of freedom
/// (table for small df, 1.96 asymptote beyond).
fn t_crit_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Per-(scheduler, policy) campaign results.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// The scheduler variant.
    pub kind: SchedulerKind,
    /// The priority policy.
    pub policy: Policy,
    /// Mean bounded slowdown, with CI over seeds.
    pub slowdown: Estimate,
    /// Mean turnaround (seconds), with CI over seeds.
    pub turnaround: Estimate,
    /// Mean utilization, with CI over seeds.
    pub utilization: Estimate,
}

/// A replicated comparison of scheduler configurations on one workload
/// model.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Scenario template; the trace-source seed is replaced per replicate.
    pub scenario: Scenario,
    /// Seeds to replicate over.
    pub seeds: Vec<u64>,
    /// The (scheduler, policy) grid to compare.
    pub grid: Vec<(SchedulerKind, Policy)>,
    /// Worker threads (`None` = all cores).
    pub threads: Option<NonZeroUsize>,
}

impl Campaign {
    /// Run the full campaign. Cells come back in grid order.
    pub fn run(&self) -> Vec<CampaignCell> {
        assert!(!self.seeds.is_empty(), "campaign needs seeds");
        assert!(!self.grid.is_empty(), "campaign needs a grid");
        let mut configs = Vec::new();
        for &(kind, policy) in &self.grid {
            for &seed in &self.seeds {
                let source = match self.scenario.source {
                    TraceSource::Ctc { jobs, .. } => TraceSource::Ctc { jobs, seed },
                    TraceSource::Sdsc { jobs, .. } => TraceSource::Sdsc { jobs, seed },
                };
                configs.push(RunConfig {
                    scenario: Scenario {
                        source,
                        ..self.scenario
                    },
                    kind,
                    policy,
                });
            }
        }
        let results = run_all(&configs, self.threads);
        let criteria = CategoryCriteria::default();
        let per_cell = self.seeds.len();
        self.grid
            .iter()
            .enumerate()
            .map(|(i, &(kind, policy))| {
                let cell = &results[i * per_cell..(i + 1) * per_cell];
                let stats: Vec<_> = cell.iter().map(|r| r.schedule.stats(&criteria)).collect();
                let collect = |f: &dyn Fn(&metrics::ScheduleStats) -> f64| -> Estimate {
                    Estimate::from_samples(&stats.iter().map(f).collect::<Vec<_>>())
                };
                CampaignCell {
                    kind,
                    policy,
                    slowdown: collect(&|s| s.overall.avg_slowdown()),
                    turnaround: collect(&|s| s.overall.avg_turnaround()),
                    utilization: collect(&|s| s.utilization),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::EstimateModel;

    #[test]
    fn estimate_from_samples() {
        let e = Estimate::from_samples(&[10.0, 12.0, 14.0]);
        assert!((e.mean - 12.0).abs() < 1e-12);
        // sd = 2, se = 2/sqrt(3), t(2) = 4.303.
        assert!((e.ci95 - 4.303 * 2.0 / 3f64.sqrt()).abs() < 1e-9);
        assert_eq!(e.replicates, 3);
    }

    #[test]
    fn single_sample_has_zero_ci() {
        let e = Estimate::from_samples(&[5.0]);
        assert_eq!(e.ci95, 0.0);
        assert_eq!(e.to_string(), "5.00");
    }

    #[test]
    fn display_includes_ci_for_replicates() {
        let e = Estimate::from_samples(&[1.0, 2.0]);
        assert!(e.to_string().contains('±'));
    }

    #[test]
    fn clearly_below_requires_separation() {
        let low = Estimate {
            mean: 5.0,
            ci95: 1.0,
            replicates: 3,
        };
        let high = Estimate {
            mean: 10.0,
            ci95: 2.0,
            replicates: 3,
        };
        assert!(low.clearly_below(&high));
        assert!(!high.clearly_below(&low));
        let wide = Estimate {
            mean: 7.0,
            ci95: 3.0,
            replicates: 3,
        };
        assert!(!low.clearly_below(&wide), "overlapping CIs are not 'clear'");
    }

    #[test]
    fn t_table_values() {
        assert!((t_crit_95(1) - 12.706).abs() < 1e-9);
        assert!((t_crit_95(30) - 2.042).abs() < 1e-9);
        assert!((t_crit_95(1000) - 1.96).abs() < 1e-9);
        assert!(t_crit_95(0).is_infinite());
    }

    #[test]
    fn campaign_replicates_and_orders() {
        let campaign = Campaign {
            scenario: Scenario {
                source: TraceSource::Ctc { jobs: 200, seed: 0 },
                estimate: EstimateModel::Exact,
                estimate_seed: 1,
                load: Some(0.9),
            },
            seeds: vec![1, 2, 3],
            grid: vec![
                (SchedulerKind::Conservative, Policy::Fcfs),
                (SchedulerKind::Easy, Policy::Sjf),
            ],
            threads: None,
        };
        let cells = campaign.run();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].kind, SchedulerKind::Conservative);
        assert_eq!(cells[0].slowdown.replicates, 3);
        assert!(cells[0].slowdown.mean >= 1.0);
        assert!(cells[1].utilization.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "needs seeds")]
    fn campaign_rejects_empty_seeds() {
        Campaign {
            scenario: Scenario::high_load(TraceSource::Ctc { jobs: 10, seed: 0 }),
            seeds: vec![],
            grid: vec![(SchedulerKind::Easy, Policy::Fcfs)],
            threads: None,
        }
        .run();
    }
}
