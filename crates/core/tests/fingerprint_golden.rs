//! Golden schedule fingerprints for every `SchedulerKind` × `Policy` cell.
//!
//! The values below were captured from the pre-optimization event loop
//! (full `Policy::sort` per event, per-event running-profile rebuilds).
//! The incremental queue and cached-profile fast paths must reproduce
//! every scheduling decision bit-for-bit, so this table must never
//! change: a diff here means an optimization altered a decision, not
//! that the golden values need re-blessing.
//!
//! On mismatch the test prints the full actual table in source form so
//! the offending cells are easy to spot.

use backfill_sim::prelude::*;

const POLICIES: [Policy; 5] = [
    Policy::Fcfs,
    Policy::Sjf,
    Policy::XFactor,
    Policy::Ljf,
    Policy::WidestFirst,
];

fn kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::NoBackfill,
        SchedulerKind::Conservative,
        SchedulerKind::ConservativeReanchor,
        SchedulerKind::ConservativeHeadStart,
        SchedulerKind::ConservativeNoCompress,
        SchedulerKind::Easy,
        SchedulerKind::Selective { threshold: 2.0 },
        SchedulerKind::Slack { slack_factor: 0.5 },
        SchedulerKind::Depth { depth: 4 },
        SchedulerKind::Preemptive { threshold: 5.0 },
    ]
}

/// One exact-estimate scenario and one noisy-overload scenario: exact
/// estimates exercise the never-compress paths, noisy estimates the
/// early-completion compression and backfill paths.
fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "exact",
            Scenario::high_load(TraceSource::Ctc { jobs: 300, seed: 5 }),
        ),
        (
            "noisy",
            Scenario {
                source: TraceSource::Sdsc { jobs: 300, seed: 9 },
                estimate: EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18))),
                estimate_seed: 3,
                load: Some(1.1),
            },
        ),
    ]
}

fn actual_table() -> Vec<(String, u64)> {
    let mut rows = Vec::new();
    for (tag, scenario) in scenarios() {
        let trace = scenario.materialize();
        for kind in kinds() {
            for policy in POLICIES {
                let config = RunConfig {
                    scenario,
                    kind,
                    policy,
                };
                let schedule = config.run_on(&trace);
                rows.push((format!("{tag} {}", config.label()), schedule.fingerprint()));
            }
        }
    }
    rows
}

#[test]
fn fingerprints_match_pre_optimization_golden() {
    let actual = actual_table();
    if GOLDEN.is_empty() {
        for (label, fp) in &actual {
            println!("    (\"{label}\", {fp}),");
        }
        panic!("golden table is empty — paste the rows printed above");
    }
    assert_eq!(actual.len(), GOLDEN.len(), "cell count changed");
    let mut bad = Vec::new();
    for ((label, fp), (glabel, gfp)) in actual.iter().zip(GOLDEN) {
        assert_eq!(label, glabel, "cell order changed");
        if fp != gfp {
            bad.push(format!("  {label}: got {fp}, golden {gfp}"));
        }
    }
    if !bad.is_empty() {
        println!("full actual table:");
        for (label, fp) in &actual {
            println!("    (\"{label}\", {fp}),");
        }
        panic!(
            "{} of {} cells diverged from the pre-optimization schedule:\n{}",
            bad.len(),
            GOLDEN.len(),
            bad.join("\n")
        );
    }
}

const GOLDEN: &[(&str, u64)] = &[
    ("exact CTC NoBF/FCFS", 14572893836041093586),
    ("exact CTC NoBF/SJF", 2431905914622153295),
    ("exact CTC NoBF/XF", 6062918610595642461),
    ("exact CTC NoBF/LJF", 7381628006867324499),
    ("exact CTC NoBF/WIDEST", 16666907027020700884),
    ("exact CTC Cons/FCFS", 17428217945964598284),
    ("exact CTC Cons/SJF", 17428217945964598284),
    ("exact CTC Cons/XF", 17428217945964598284),
    ("exact CTC Cons/LJF", 17428217945964598284),
    ("exact CTC Cons/WIDEST", 17428217945964598284),
    ("exact CTC Cons(re)/FCFS", 17428217945964598284),
    ("exact CTC Cons(re)/SJF", 17428217945964598284),
    ("exact CTC Cons(re)/XF", 17428217945964598284),
    ("exact CTC Cons(re)/LJF", 17428217945964598284),
    ("exact CTC Cons(re)/WIDEST", 17428217945964598284),
    ("exact CTC Cons(hs)/FCFS", 17428217945964598284),
    ("exact CTC Cons(hs)/SJF", 17428217945964598284),
    ("exact CTC Cons(hs)/XF", 17428217945964598284),
    ("exact CTC Cons(hs)/LJF", 17428217945964598284),
    ("exact CTC Cons(hs)/WIDEST", 17428217945964598284),
    ("exact CTC Cons(no)/FCFS", 17428217945964598284),
    ("exact CTC Cons(no)/SJF", 17428217945964598284),
    ("exact CTC Cons(no)/XF", 17428217945964598284),
    ("exact CTC Cons(no)/LJF", 17428217945964598284),
    ("exact CTC Cons(no)/WIDEST", 17428217945964598284),
    ("exact CTC EASY/FCFS", 12453254507105878430),
    ("exact CTC EASY/SJF", 15963640489262518397),
    ("exact CTC EASY/XF", 7697523494145941265),
    ("exact CTC EASY/LJF", 5948969204613486425),
    ("exact CTC EASY/WIDEST", 8367173258884333925),
    ("exact CTC Sel(2)/FCFS", 16383849689197242975),
    ("exact CTC Sel(2)/SJF", 10724913835157230569),
    ("exact CTC Sel(2)/XF", 16383849689197242975),
    ("exact CTC Sel(2)/LJF", 16095373227575525892),
    ("exact CTC Sel(2)/WIDEST", 12063517174197711595),
    ("exact CTC Slack(0.5)/FCFS", 4762206726195513327),
    ("exact CTC Slack(0.5)/SJF", 2252301783687434114),
    ("exact CTC Slack(0.5)/XF", 2252301783687434114),
    ("exact CTC Slack(0.5)/LJF", 4762206726195513327),
    ("exact CTC Slack(0.5)/WIDEST", 3534512671710638399),
    ("exact CTC Depth(4)/FCFS", 11535704480240077465),
    ("exact CTC Depth(4)/SJF", 913777337515257443),
    ("exact CTC Depth(4)/XF", 17262432390947622512),
    ("exact CTC Depth(4)/LJF", 4529460597779464790),
    ("exact CTC Depth(4)/WIDEST", 14997905031521538560),
    ("exact CTC Preempt(5)/FCFS", 1540923522517671935),
    ("exact CTC Preempt(5)/SJF", 5116580028284322922),
    ("exact CTC Preempt(5)/XF", 15560596587482679430),
    ("exact CTC Preempt(5)/LJF", 2813596589130617305),
    ("exact CTC Preempt(5)/WIDEST", 935080747828842513),
    ("noisy SDSC NoBF/FCFS", 4686240881350357340),
    ("noisy SDSC NoBF/SJF", 15246979278971562746),
    ("noisy SDSC NoBF/XF", 3901737552019926833),
    ("noisy SDSC NoBF/LJF", 15039344799029432035),
    ("noisy SDSC NoBF/WIDEST", 15480924378151153441),
    ("noisy SDSC Cons/FCFS", 3232953766975883382),
    ("noisy SDSC Cons/SJF", 5401407322745901090),
    ("noisy SDSC Cons/XF", 15064315141531066407),
    ("noisy SDSC Cons/LJF", 1165212110438201759),
    ("noisy SDSC Cons/WIDEST", 2861944411525347457),
    ("noisy SDSC Cons(re)/FCFS", 9265234261398896142),
    ("noisy SDSC Cons(re)/SJF", 8383749731337966891),
    ("noisy SDSC Cons(re)/XF", 12686015992643581963),
    ("noisy SDSC Cons(re)/LJF", 1534178432371590154),
    ("noisy SDSC Cons(re)/WIDEST", 8677616123800719708),
    ("noisy SDSC Cons(hs)/FCFS", 10957520886913647407),
    ("noisy SDSC Cons(hs)/SJF", 4133570787311464384),
    ("noisy SDSC Cons(hs)/XF", 724367135631776457),
    ("noisy SDSC Cons(hs)/LJF", 5024734439892265237),
    ("noisy SDSC Cons(hs)/WIDEST", 15455973790211826859),
    ("noisy SDSC Cons(no)/FCFS", 5448751844439637780),
    ("noisy SDSC Cons(no)/SJF", 5448751844439637780),
    ("noisy SDSC Cons(no)/XF", 5448751844439637780),
    ("noisy SDSC Cons(no)/LJF", 5448751844439637780),
    ("noisy SDSC Cons(no)/WIDEST", 5448751844439637780),
    ("noisy SDSC EASY/FCFS", 15801014315566170543),
    ("noisy SDSC EASY/SJF", 5980741259229826818),
    ("noisy SDSC EASY/XF", 12915602286428687474),
    ("noisy SDSC EASY/LJF", 6147462646879830791),
    ("noisy SDSC EASY/WIDEST", 13476995601855643856),
    ("noisy SDSC Sel(2)/FCFS", 6892403221189413360),
    ("noisy SDSC Sel(2)/SJF", 7153098841702556908),
    ("noisy SDSC Sel(2)/XF", 9837166503935901577),
    ("noisy SDSC Sel(2)/LJF", 12352522407722787040),
    ("noisy SDSC Sel(2)/WIDEST", 6773183116290088467),
    ("noisy SDSC Slack(0.5)/FCFS", 13318982954713007054),
    ("noisy SDSC Slack(0.5)/SJF", 3706418980289500281),
    ("noisy SDSC Slack(0.5)/XF", 11176871760965644253),
    ("noisy SDSC Slack(0.5)/LJF", 6613050545725556030),
    ("noisy SDSC Slack(0.5)/WIDEST", 2077882203341203967),
    ("noisy SDSC Depth(4)/FCFS", 6706763625356360268),
    ("noisy SDSC Depth(4)/SJF", 9239742780367278989),
    ("noisy SDSC Depth(4)/XF", 4287510870901087320),
    ("noisy SDSC Depth(4)/LJF", 5304010358122667683),
    ("noisy SDSC Depth(4)/WIDEST", 12581684299106949397),
    ("noisy SDSC Preempt(5)/FCFS", 9143460228816387288),
    ("noisy SDSC Preempt(5)/SJF", 13184087838091992996),
    ("noisy SDSC Preempt(5)/XF", 5996587946772766850),
    ("noisy SDSC Preempt(5)/LJF", 12107569167859854094),
    ("noisy SDSC Preempt(5)/WIDEST", 15990805453650440507),
];
