//! Property-based tests of whole-simulation invariants: every scheduler,
//! fed arbitrary (valid) workloads, must produce schedules that pass the
//! independent capacity audit and basic sanity laws.

use backfill_sim::prelude::*;
use proptest::prelude::*;

/// Strategy: a small random trace on an 8..64-processor machine.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (8u32..=64).prop_flat_map(|nodes| {
        let job = (
            0u64..20_000, // arrival
            1u64..5_000,  // runtime
            0u64..10_000, // estimate slack
            1u32..=nodes, // width
        );
        proptest::collection::vec(job, 1..60).prop_map(move |raw| {
            let jobs: Vec<Job> = raw
                .into_iter()
                .map(|(arrival, runtime, slack, width)| Job {
                    id: JobId(0),
                    arrival: SimTime::new(arrival),
                    runtime: SimSpan::new(runtime),
                    estimate: SimSpan::new(runtime + slack),
                    width,
                })
                .collect();
            Trace::new("prop", nodes, jobs).expect("constructed valid")
        })
    })
}

fn all_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::NoBackfill,
        SchedulerKind::Conservative,
        SchedulerKind::ConservativeReanchor,
        SchedulerKind::ConservativeHeadStart,
        SchedulerKind::ConservativeNoCompress,
        SchedulerKind::Easy,
        SchedulerKind::Selective { threshold: 2.0 },
        SchedulerKind::Selective {
            threshold: f64::INFINITY,
        },
        SchedulerKind::Slack { slack_factor: 0.0 },
        SchedulerKind::Slack { slack_factor: 2.0 },
        SchedulerKind::Depth { depth: 1 },
        SchedulerKind::Depth { depth: 4 },
        SchedulerKind::Preemptive { threshold: 2.0 },
        SchedulerKind::Preemptive {
            threshold: f64::INFINITY,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every scheduler schedules every job exactly once, within capacity,
    /// never before arrival — checked by the independent audit.
    #[test]
    fn schedules_always_validate(trace in arb_trace()) {
        for kind in all_kinds() {
            for policy in [Policy::Fcfs, Policy::Sjf, Policy::XFactor] {
                let s = simulate(&trace, kind, policy);
                prop_assert_eq!(s.outcomes.len(), trace.len());
                if let Err(e) = s.validate() {
                    return Err(TestCaseError::fail(format!("{}: {e}", s.scheduler)));
                }
            }
        }
    }

    /// Determinism: the same trace and config produce the same schedule.
    #[test]
    fn simulation_is_deterministic(trace in arb_trace()) {
        for kind in [SchedulerKind::Conservative, SchedulerKind::Easy] {
            let a = simulate(&trace, kind, Policy::XFactor);
            let b = simulate(&trace, kind, Policy::XFactor);
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    /// Section 4.1 as a law: with accurate estimates, conservative
    /// backfilling yields the identical schedule for every priority policy.
    #[test]
    fn conservative_priority_equivalence(trace in arb_trace()) {
        let exact = trace.map_estimates(|j| j.runtime).expect("estimates >= runtimes");
        let fps: Vec<u64> = [Policy::Fcfs, Policy::Sjf, Policy::XFactor, Policy::Ljf]
            .iter()
            .map(|&p| simulate(&exact, SchedulerKind::Conservative, p).fingerprint())
            .collect();
        for w in fps.windows(2) {
            prop_assert_eq!(w[0], w[1], "priority policies diverged under conservative");
        }
    }

    /// With accurate estimates the compression mode is irrelevant (no holes
    /// ever open): all conservative variants coincide.
    #[test]
    fn compression_modes_coincide_on_exact_estimates(trace in arb_trace()) {
        let exact = trace.map_estimates(|j| j.runtime).expect("estimates >= runtimes");
        let base = simulate(&exact, SchedulerKind::Conservative, Policy::Fcfs).fingerprint();
        for kind in [
            SchedulerKind::ConservativeReanchor,
            SchedulerKind::ConservativeHeadStart,
            SchedulerKind::ConservativeNoCompress,
        ] {
            prop_assert_eq!(simulate(&exact, kind, Policy::Fcfs).fingerprint(), base);
        }
    }

    /// On a single-processor machine with unit-width jobs and accurate
    /// estimates, there is nothing to backfill: conservative, EASY and the
    /// no-backfill baseline all agree.
    #[test]
    fn serial_machine_degenerates(
        raw in proptest::collection::vec((0u64..5_000, 1u64..500), 1..40),
    ) {
        let jobs: Vec<Job> = raw
            .into_iter()
            .map(|(arrival, runtime)| Job {
                id: JobId(0),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(runtime),
                width: 1,
            })
            .collect();
        let trace = Trace::new("serial", 1, jobs).expect("valid");
        let fps: Vec<u64> = [
            SchedulerKind::NoBackfill,
            SchedulerKind::Conservative,
            SchedulerKind::Easy,
        ]
        .iter()
        .map(|&k| simulate(&trace, k, Policy::Fcfs).fingerprint())
        .collect();
        prop_assert_eq!(fps[0], fps[1]);
        prop_assert_eq!(fps[1], fps[2]);
    }

    /// With an infinite preemption threshold the preemptive scheduler is
    /// EASY exactly (preemption never triggers, the phases coincide).
    #[test]
    fn infinite_threshold_preemptive_equals_easy(trace in arb_trace()) {
        let easy = simulate(&trace, SchedulerKind::Easy, Policy::Fcfs);
        let pre = simulate(
            &trace,
            SchedulerKind::Preemptive { threshold: f64::INFINITY },
            Policy::Fcfs,
        );
        prop_assert_eq!(easy.fingerprint(), pre.fingerprint());
        prop_assert!(pre.outcomes.iter().all(|o| !o.was_preempted()));
    }

    /// Depth-1 reservation backfilling is EASY, on any workload (not just
    /// exact estimates — the semantics coincide event for event).
    #[test]
    fn depth_one_equals_easy(trace in arb_trace()) {
        for policy in [Policy::Fcfs, Policy::Sjf] {
            let easy = simulate(&trace, SchedulerKind::Easy, policy);
            let depth = simulate(&trace, SchedulerKind::Depth { depth: 1 }, policy);
            prop_assert_eq!(easy.fingerprint(), depth.fingerprint());
        }
    }

    /// Zero-slack slack-based backfilling degenerates to conservative
    /// backfilling exactly when estimates are accurate (promises equal
    /// anchors and no holes ever open).
    #[test]
    fn zero_slack_equals_conservative_on_exact_estimates(trace in arb_trace()) {
        let exact = trace.map_estimates(|j| j.runtime).expect("estimates >= runtimes");
        let cons = simulate(&exact, SchedulerKind::Conservative, Policy::Fcfs);
        let slack = simulate(&exact, SchedulerKind::Slack { slack_factor: 0.0 }, Policy::Fcfs);
        prop_assert_eq!(cons.fingerprint(), slack.fingerprint());
    }

    /// Metric identities on arbitrary schedules: slowdown >= 1,
    /// turnaround = wait + runtime, starts >= arrivals.
    #[test]
    fn metric_identities(trace in arb_trace()) {
        let s = simulate(&trace, SchedulerKind::Easy, Policy::Sjf);
        for o in &s.outcomes {
            prop_assert!(o.bounded_slowdown() >= 1.0);
            prop_assert!(o.slowdown() >= 1.0);
            prop_assert_eq!(
                o.turnaround().as_secs(),
                o.wait().as_secs() + o.job.runtime.as_secs()
            );
            prop_assert!(o.start >= o.job.arrival);
        }
    }

    /// Work conservation under no-backfill FCFS on an always-backlogged
    /// machine: the machine is never idle while the queue head fits.
    /// Weaker universal check: total busy proc-seconds equals total work.
    #[test]
    fn utilization_accounts_for_all_work(trace in arb_trace()) {
        let s = simulate(&trace, SchedulerKind::Conservative, Policy::Fcfs);
        let stats = s.stats(&CategoryCriteria::default());
        let span = stats.makespan.as_secs_f64();
        if span > 0.0 {
            let busy = stats.utilization * trace.nodes() as f64 * span;
            let work: u128 = trace.jobs().iter().map(|j| j.area()).sum();
            prop_assert!((busy - work as f64).abs() < 1.0, "busy {busy} vs work {work}");
        }
    }
}
