//! Golden tests for config canonicalization and content hashing.
//!
//! The simulation service keys its result cache on the canonical JSON of
//! a [`RunConfig`] (with an FNV-1a hash as the compact label). These
//! tests pin the canonical text and hash of a representative config to
//! literal golden values, so any change to the serialization format, the
//! canonicalization rules, or the hash function — each of which would
//! silently invalidate or, worse, alias cache entries — fails loudly.

use backfill_sim::prelude::*;

fn representative() -> RunConfig {
    RunConfig {
        scenario: Scenario {
            source: TraceSource::Ctc {
                jobs: 300,
                seed: 11,
            },
            estimate: EstimateModel::systematic(2.0),
            estimate_seed: 7,
            load: Some(0.9),
        },
        kind: SchedulerKind::Selective { threshold: 2.5 },
        policy: Policy::Sjf,
    }
}

#[test]
fn canonical_json_matches_golden() {
    let expected = concat!(
        r#"{"kind":{"Selective":{"threshold":2.5}},"policy":"Sjf","#,
        r#""scenario":{"estimate":{"SystematicOver":{"factor":2.0}},"#,
        r#""estimate_seed":7,"load":0.9,"#,
        r#""source":{"Ctc":{"jobs":300,"seed":11}}}}"#
    );
    assert_eq!(representative().canonical_json(), expected);
}

#[test]
fn content_hash_matches_golden() {
    assert_eq!(representative().content_hash(), 0x3f88_876d_22cc_d370);
}

#[test]
fn canonical_form_is_stable_across_runs() {
    let a = representative();
    let b = representative();
    for _ in 0..8 {
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_eq!(a.content_hash(), b.content_hash());
    }
}

#[test]
fn field_value_equal_configs_share_a_key() {
    // Two configs built through different code paths but equal field by
    // field must canonicalize (and hash) identically.
    let direct = RunConfig {
        scenario: Scenario {
            source: TraceSource::Ctc {
                jobs: 200,
                seed: 42,
            },
            estimate: EstimateModel::Exact,
            estimate_seed: 1,
            load: Some(0.9),
        },
        kind: SchedulerKind::Easy,
        policy: Policy::Fcfs,
    };
    let via_helper = RunConfig {
        scenario: Scenario::high_load(TraceSource::Ctc {
            jobs: 200,
            seed: 42,
        }),
        kind: SchedulerKind::Easy,
        policy: Policy::Fcfs,
    };
    assert_eq!(direct, via_helper);
    assert_eq!(direct.canonical_json(), via_helper.canonical_json());
    assert_eq!(direct.content_hash(), via_helper.content_hash());
}

#[test]
fn distinct_configs_never_share_canonical_text() {
    // Vary every axis one at a time; every variant must get its own key.
    let base = representative();
    let variants = [
        RunConfig {
            scenario: Scenario {
                source: TraceSource::Ctc {
                    jobs: 301,
                    seed: 11,
                },
                ..base.scenario
            },
            ..base
        },
        RunConfig {
            scenario: Scenario {
                source: TraceSource::Sdsc {
                    jobs: 300,
                    seed: 11,
                },
                ..base.scenario
            },
            ..base
        },
        RunConfig {
            scenario: Scenario {
                estimate: EstimateModel::Exact,
                ..base.scenario
            },
            ..base
        },
        RunConfig {
            scenario: Scenario {
                estimate_seed: 8,
                ..base.scenario
            },
            ..base
        },
        RunConfig {
            scenario: Scenario {
                load: None,
                ..base.scenario
            },
            ..base
        },
        RunConfig {
            kind: SchedulerKind::Selective { threshold: 2.6 },
            ..base
        },
        RunConfig {
            kind: SchedulerKind::Easy,
            ..base
        },
        RunConfig {
            policy: Policy::Fcfs,
            ..base
        },
    ];
    let mut keys: Vec<String> = variants.iter().map(RunConfig::canonical_json).collect();
    keys.push(base.canonical_json());
    let unique: std::collections::BTreeSet<&String> = keys.iter().collect();
    assert_eq!(unique.len(), keys.len(), "canonical keys aliased");
}

#[test]
fn canonical_json_round_trips_to_the_same_config() {
    let cfg = representative();
    let back: RunConfig = serde_json::from_str(&cfg.canonical_json()).unwrap();
    assert_eq!(cfg, back);
    assert_eq!(back.canonical_json(), cfg.canonical_json());
}
