//! Property test for the incremental scheduler queue: under arbitrary
//! interleavings of arrivals, dequeues, and mid-queue removals (starts /
//! completions of backfilled jobs), [`SchedQueue`] must present exactly
//! the order a full [`Policy::sort`] of the same jobs would — for every
//! policy, at every observation instant.
//!
//! This is the differential harness the incremental maintenance rests on:
//! static-key policies insert by binary search and never re-sort, XFactor
//! re-keys once per instant; both must be indistinguishable from the
//! reference sort.

use proptest::prelude::*;
use sched::{JobMeta, Policy, SchedQueue};
use simcore::{JobId, SimSpan, SimTime};

const POLICIES: [Policy; 5] = [
    Policy::Fcfs,
    Policy::Sjf,
    Policy::Ljf,
    Policy::WidestFirst,
    Policy::XFactor,
];

/// One step of queue churn, as seen by a scheduler's event loop.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// A job arrives (estimate seconds, width) and is pushed.
    Arrive { estimate: u64, width: u32 },
    /// The head job starts: pop the front.
    PopFront,
    /// A mid-queue job starts via backfill (or leaves): remove index
    /// `slot % len`.
    Remove { slot: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // (selector, estimate, width, slot) → op; arrivals weighted 3:1:1 so
    // queues actually grow deep enough to exercise mid-queue removals.
    let op =
        (0u8..5, 1u64..50_000, 1u32..=64, 0usize..64).prop_map(|(which, estimate, width, slot)| {
            match which {
                0..=2 => Op::Arrive { estimate, width },
                3 => Op::PopFront,
                _ => Op::Remove { slot },
            }
        });
    proptest::collection::vec(op, 1..80)
}

/// The reference: clone the queue's jobs into a plain `Vec` and apply the
/// policy's full sort at `now`.
fn reference_order(queue: &SchedQueue, policy: Policy, now: SimTime) -> Vec<JobId> {
    let mut jobs: Vec<JobMeta> = queue.to_vec();
    policy.sort(&mut jobs, now);
    jobs.into_iter().map(|j| j.id).collect()
}

fn observed_order(queue: &mut SchedQueue, now: SimTime) -> Vec<JobId> {
    queue.prepare(now);
    queue.iter().map(|j| j.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drive the same op sequence through the incremental queue and the
    /// sort-everything reference; the visible order must match at every
    /// step, under advancing time (which changes XFactor keys).
    #[test]
    fn incremental_queue_matches_policy_sort(ops in arb_ops()) {
        for policy in POLICIES {
            let mut queue = SchedQueue::new(policy);
            let mut now = SimTime::ZERO;
            for (step, op) in ops.iter().enumerate() {
                now += SimSpan::new(60); // keys age between events
                match *op {
                    Op::Arrive { estimate, width } => {
                        queue.push(JobMeta {
                            id: JobId(step as u32),
                            arrival: now,
                            estimate: SimSpan::new(estimate),
                            width,
                        });
                    }
                    Op::PopFront => {
                        queue.prepare(now);
                        let expect = reference_order(&queue, policy, now);
                        let popped = queue.pop_front().map(|j| j.id);
                        prop_assert_eq!(popped, expect.first().copied(), "{policy} head");
                    }
                    Op::Remove { slot } => {
                        if !queue.is_empty() {
                            queue.prepare(now);
                            queue.remove(slot % queue.len());
                        }
                    }
                }
                prop_assert_eq!(
                    observed_order(&mut queue, now),
                    reference_order(&queue, policy, now),
                    "{} diverged after step {}",
                    policy,
                    step
                );
            }
            // Drain fully: pop order is the reference order to the end.
            queue.prepare(now);
            let expect = reference_order(&queue, policy, now);
            let mut drained = Vec::new();
            while let Some(job) = queue.pop_front() {
                drained.push(job.id);
            }
            prop_assert_eq!(drained, expect, "{} drain order", policy);
        }
    }

    /// Re-observing at the same instant (no pushes in between) must not
    /// change the order — the XFactor same-instant sort skip is exact.
    #[test]
    fn same_instant_reobservation_is_stable(ops in arb_ops()) {
        let mut queue = SchedQueue::new(Policy::XFactor);
        let mut now = SimTime::ZERO;
        for (step, op) in ops.iter().enumerate() {
            now += SimSpan::new(60);
            if let Op::Arrive { estimate, width } = *op {
                queue.push(JobMeta {
                    id: JobId(step as u32),
                    arrival: now,
                    estimate: SimSpan::new(estimate),
                    width,
                });
            }
            let first = observed_order(&mut queue, now);
            let second = observed_order(&mut queue, now);
            prop_assert_eq!(first, second, "same-instant order drifted");
        }
    }
}
