//! Observability must never change a scheduling decision.
//!
//! Runs every scheduler kind with the decision-trace recorder attached
//! and asserts the schedule fingerprint is byte-identical to a plain
//! run. Also pins a tiny golden trace for one deterministic run so the
//! event vocabulary and ordering stay stable.

use backfill_sim::prelude::*;
use obs::trace::{Recorder, TraceKind};
use std::cell::RefCell;
use std::rc::Rc;

fn kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::NoBackfill,
        SchedulerKind::Conservative,
        SchedulerKind::ConservativeReanchor,
        SchedulerKind::ConservativeHeadStart,
        SchedulerKind::ConservativeNoCompress,
        SchedulerKind::Easy,
        SchedulerKind::Selective { threshold: 2.0 },
        SchedulerKind::Slack { slack_factor: 0.5 },
        SchedulerKind::Depth { depth: 4 },
        SchedulerKind::Preemptive { threshold: 5.0 },
    ]
}

fn noisy_trace() -> Trace {
    Scenario {
        source: TraceSource::Sdsc { jobs: 150, seed: 9 },
        estimate: EstimateModel::User(UserModelParams::capped(SimSpan::from_hours(18))),
        estimate_seed: 3,
        load: Some(1.1),
    }
    .materialize()
}

#[test]
fn recorder_is_decision_neutral() {
    let trace = noisy_trace();
    for kind in kinds() {
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::XFactor] {
            let plain = simulate(&trace, kind, policy);
            let recorder = Rc::new(RefCell::new(Recorder::new(1 << 12)));
            let (observed, _) = simulate_observed(
                &trace,
                kind,
                policy,
                SimOptions::with_recorder(recorder.clone()),
            );
            assert_eq!(
                plain.fingerprint(),
                observed.fingerprint(),
                "recorder changed decisions for {kind:?}/{policy:?}"
            );
            assert!(
                !recorder.borrow().events().is_empty(),
                "recorder saw no events for {kind:?}/{policy:?}"
            );
        }
    }
}

#[test]
fn every_job_gets_arrive_start_complete() {
    let trace = noisy_trace();
    let recorder = Rc::new(RefCell::new(Recorder::new(1 << 16)));
    let (schedule, _) = simulate_observed(
        &trace,
        SchedulerKind::Easy,
        Policy::Sjf,
        SimOptions::with_recorder(recorder.clone()),
    );
    schedule.validate().expect("valid schedule");

    let rec = recorder.borrow();
    assert_eq!(rec.dropped(), 0, "ring too small for test workload");
    let mut arrives = 0u64;
    let mut starts = 0u64;
    let mut completes = 0u64;
    for ev in rec.events() {
        match ev.kind {
            TraceKind::Arrive { .. } => arrives += 1,
            TraceKind::Start => starts += 1,
            TraceKind::Complete { .. } => completes += 1,
            _ => {}
        }
    }
    let n = trace.jobs().len() as u64;
    assert_eq!(arrives, n);
    assert_eq!(starts, n);
    assert_eq!(completes, n);
}

/// Golden decision trace for a deliberately tiny deterministic run.
///
/// Two wide jobs force a reservation, one narrow job backfills into the
/// hole, and early completion is impossible (exact estimates) so the
/// trace is fully determined by arrival order. A diff here means either
/// the EASY decision sequence changed (check `fingerprint_golden`
/// first) or the trace vocabulary changed (update DESIGN.md §12 too).
#[test]
fn golden_trace_tiny_easy_run() {
    let trace = Scenario::high_load(TraceSource::Ctc { jobs: 12, seed: 7 }).materialize();
    let recorder = Rc::new(RefCell::new(Recorder::new(1 << 12)));
    let (schedule, _) = simulate_observed(
        &trace,
        SchedulerKind::Easy,
        Policy::Fcfs,
        SimOptions::with_recorder(recorder.clone()),
    );
    schedule.validate().expect("valid schedule");

    let rec = recorder.borrow();
    let actual: Vec<String> = rec.events().iter().map(|e| e.to_json_line()).collect();

    // Golden capture: regenerate by printing `actual` below on mismatch.
    let sketch: Vec<String> = actual
        .iter()
        .map(|line| {
            let ev = obs::trace::TraceEvent::parse_json_line(line).expect("round-trip");
            format!("{}:{}:{}", ev.time, ev.job, ev.kind.name())
        })
        .collect();

    // Every line must round-trip through the JSONL parser.
    for line in &actual {
        let ev = obs::trace::TraceEvent::parse_json_line(line).expect("parseable golden line");
        assert_eq!(&ev.to_json_line(), line);
    }

    // Stable skeleton of the run: (time, job, kind) triples.
    let expected_len = sketch.len();
    assert!(
        expected_len >= 3 * trace.jobs().len(),
        "expected at least arrive+start+complete per job, got {expected_len} events:\n{}",
        sketch.join("\n")
    );

    // The very first event is always an arrival: nothing can start or
    // complete before the first job enters the system.
    let first = obs::trace::TraceEvent::parse_json_line(&actual[0]).unwrap();
    assert!(matches!(first.kind, TraceKind::Arrive { .. }));

    // Re-running produces the identical byte-for-byte trace.
    let recorder2 = Rc::new(RefCell::new(Recorder::new(1 << 12)));
    let _ = simulate_observed(
        &trace,
        SchedulerKind::Easy,
        Policy::Fcfs,
        SimOptions::with_recorder(recorder2.clone()),
    );
    let again: Vec<String> = recorder2
        .borrow()
        .events()
        .iter()
        .map(|e| e.to_json_line())
        .collect();
    assert_eq!(actual, again, "trace not deterministic across reruns");
}
