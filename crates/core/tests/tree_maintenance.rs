//! Differential test of incremental segment-tree maintenance under full
//! simulations.
//!
//! The availability profile keeps its min/max segment tree synchronized
//! incrementally (leaf + ancestor-path updates for value-only mutations,
//! suffix re-derivation for structural ones). In debug builds every
//! mutation ends in `debug_assert!(invariants_ok())`, and `invariants_ok`
//! compares the tree's **per-node aggregates against a from-scratch
//! rebuild** — so simply driving whole simulations here exercises that
//! comparison after every reserve/release/trim of every event, for every
//! scheduler kind and policy. The explicit `invariants_ok` spot-checks
//! below keep the test meaningful even if debug assertions are off.

use backfill_sim::prelude::*;
use proptest::prelude::*;
use sched::Profile;
use simcore::SimSpan;

/// A small random trace on an 8..32-processor machine: tiny enough to run
/// 10 kinds × 3 policies per case, busy enough that compression passes,
/// backfills, and early completions all fire.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (8u32..=32).prop_flat_map(|nodes| {
        let job = (
            0u64..6_000,  // arrival
            1u64..2_000,  // runtime
            0u64..4_000,  // estimate slack (drives compression)
            1u32..=nodes, // width
        );
        proptest::collection::vec(job, 1..40).prop_map(move |raw| {
            let jobs: Vec<Job> = raw
                .into_iter()
                .map(|(arrival, runtime, slack, width)| Job {
                    id: JobId(0),
                    arrival: SimTime::new(arrival),
                    runtime: SimSpan::new(runtime),
                    estimate: SimSpan::new(runtime + slack),
                    width,
                })
                .collect();
            Trace::new("tree-maint", nodes, jobs).expect("constructed valid")
        })
    })
}

fn all_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::NoBackfill,
        SchedulerKind::Conservative,
        SchedulerKind::ConservativeReanchor,
        SchedulerKind::ConservativeHeadStart,
        SchedulerKind::ConservativeNoCompress,
        SchedulerKind::Easy,
        SchedulerKind::Selective { threshold: 2.0 },
        SchedulerKind::Slack { slack_factor: 1.0 },
        SchedulerKind::Depth { depth: 4 },
        SchedulerKind::Preemptive { threshold: 2.0 },
    ]
}

#[test]
fn debug_assertions_are_on_so_every_event_checks_the_tree() {
    // This suite's power comes from the per-mutation
    // `debug_assert!(invariants_ok())` inside the profile; make its
    // precondition explicit so a profile-config change that silently
    // disabled it would fail here instead of quietly weakening the test.
    let mut armed = false;
    debug_assert!({
        armed = true;
        true
    });
    assert!(armed, "tests must run with debug assertions enabled");
}

proptest! {
    // Each case runs 30 full simulations; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full simulations across all scheduler kinds and paper policies:
    /// every profile mutation re-verifies the tree against a rebuild
    /// (debug asserts), the audit validates the schedule, and the run is
    /// deterministic.
    #[test]
    fn tree_stays_synchronized_through_full_simulations(trace in arb_trace()) {
        for kind in all_kinds() {
            for policy in [Policy::Fcfs, Policy::Sjf, Policy::XFactor] {
                let s = simulate(&trace, kind, policy);
                prop_assert_eq!(s.outcomes.len(), trace.len());
                if let Err(e) = s.validate() {
                    return Err(TestCaseError::fail(format!("{}: {e}", s.scheduler)));
                }
                let again = simulate(&trace, kind, policy);
                prop_assert_eq!(s.fingerprint(), again.fingerprint());
            }
        }
    }

    /// The same maintenance story at the profile level, past the plain-scan
    /// cutoff: replay a long anchored-reservation history and spot-check
    /// the tree-vs-rebuild comparison explicitly (not only via the
    /// per-mutation debug asserts).
    #[test]
    fn large_profile_tree_matches_rebuild_at_every_checkpoint(
        rects in proptest::collection::vec((0u64..50_000, 1u64..800, 1u32..=16), 80..160),
    ) {
        let mut p = Profile::new(16);
        for (i, (earliest, dur, width)) in rects.into_iter().enumerate() {
            let dur = SimSpan::new(dur);
            let a = p.find_anchor(SimTime::new(earliest), dur, width);
            p.reserve(a, dur, width);
            if i % 16 == 0 {
                prop_assert!(p.invariants_ok(), "tree desynced after {} reserves", i + 1);
            }
        }
        prop_assert!(p.invariants_ok());
    }
}
