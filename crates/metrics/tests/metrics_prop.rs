//! Property-based tests of the metrics library: estimator laws that must
//! hold for arbitrary observation sets.

use metrics::{percent_change, JobOutcome, LogHistogram, Quantiles, Welford};
use proptest::prelude::*;
use simcore::{JobId, SimSpan, SimTime};
use workload::Job;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Welford mean/min/max agree with the naive computation.
    #[test]
    fn welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let naive_mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - naive_mean).abs() < 1e-6 * (1.0 + naive_mean.abs()));
        prop_assert_eq!(w.min().unwrap(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(w.max().unwrap(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        prop_assert!(w.variance() >= 0.0);
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn welford_merge_is_concat(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ys in proptest::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut a = Welford::new();
        for &x in &xs { a.push(x); }
        let mut b = Welford::new();
        for &y in &ys { b.push(y); }
        a.merge(&b);
        let mut all = Welford::new();
        for &v in xs.iter().chain(&ys) { all.push(v); }
        prop_assert_eq!(a.count(), all.count());
        if a.count() > 0 {
            prop_assert!((a.mean() - all.mean()).abs() < 1e-8);
            prop_assert!((a.variance() - all.variance()).abs() < 1e-6);
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut q = Quantiles::new();
        for &x in &xs { q.push(x); }
        let lo = q.quantile(0.0).unwrap();
        let med = q.quantile(0.5).unwrap();
        let hi = q.quantile(1.0).unwrap();
        prop_assert!(lo <= med && med <= hi);
        prop_assert_eq!(lo, xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(hi, xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        // Monotonicity across a grid.
        let grid = [0.1, 0.25, 0.5, 0.75, 0.9];
        let vals: Vec<f64> = grid.iter().map(|&g| q.quantile(g).unwrap()).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Histogram mass is conserved: bins + underflow + overflow = count.
    #[test]
    fn histogram_conserves_mass(
        xs in proptest::collection::vec(1e-3f64..1e9, 0..300),
        bins in 1usize..40,
    ) {
        let mut h = LogHistogram::new(1.0, 1e6, bins);
        for &x in &xs { h.push(x); }
        let total: u64 = h.bins().iter().sum::<u64>() + h.underflow() + h.overflow();
        prop_assert_eq!(total, xs.len() as u64);
        if !xs.is_empty() {
            prop_assert!((h.cdf_at_bin(bins - 1) - (1.0 - h.overflow() as f64 / xs.len() as f64)).abs() < 1e-9);
        }
    }

    /// Outcome metrics: identities hold for arbitrary valid outcomes.
    #[test]
    fn outcome_identities(
        arrival in 0u64..1_000_000,
        runtime in 1u64..500_000,
        wait in 0u64..1_000_000,
        width in 1u32..512,
        slack in 0u64..500_000,
    ) {
        let o = JobOutcome::new(
            Job {
                id: JobId(7),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(runtime + slack),
                width,
            },
            SimTime::new(arrival + wait),
        );
        prop_assert_eq!(o.wait().as_secs(), wait);
        prop_assert_eq!(o.turnaround().as_secs(), wait + runtime);
        prop_assert!(o.bounded_slowdown() >= 1.0);
        prop_assert!(o.slowdown() >= 1.0);
        // Bounded slowdown never exceeds raw slowdown.
        prop_assert!(o.bounded_slowdown() <= o.slowdown() + 1e-9);
        // Zero wait means both slowdowns are exactly 1.
        if wait == 0 {
            prop_assert!((o.bounded_slowdown() - 1.0).abs() < 1e-12);
        }
    }

    /// percent_change is antisymmetric around its fixed point and
    /// recovers the ratio.
    #[test]
    fn percent_change_laws(base in 0.001f64..1e6, ratio in 0.01f64..100.0) {
        let new = base * ratio;
        let pc = percent_change(new, base);
        prop_assert!((pc - (ratio - 1.0) * 100.0).abs() < 1e-6 * ratio.max(1.0));
        prop_assert!((percent_change(base, base)).abs() < 1e-9);
    }
}
