//! Plain-text table rendering for experiment reports.
//!
//! The `repro` harness prints every paper table and figure as an aligned
//! text table plus machine-readable CSV; this module is the shared
//! formatter.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table (first column left-aligned, the
    /// rest right-aligned, as is conventional for numeric tables).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Render as a GitHub-flavored Markdown table (first column
    /// left-aligned, the rest right-aligned).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("**{}**\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        let aligns: Vec<&str> = (0..self.headers.len())
            .map(|i| if i == 0 { ":--" } else { "--:" })
            .collect();
        out.push_str(&format!("| {} |\n", aligns.join(" | ")));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as CSV (headers + rows, comma-separated, quotes around cells
    /// containing commas).
    pub fn to_csv(&self) -> String {
        let escape = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(escape)
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(escape).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with sensible precision for reports.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a percentage with a sign.
pub fn fpct(x: f64) -> String {
    format!("{x:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["scheme", "slowdown"]);
        t.row(vec!["EASY".into(), "3.20".into()]);
        t.row(vec!["Conservative".into(), "4.15".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("scheme"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows (plus title).
        assert_eq!(lines.len(), 5);
        // Right-aligned numeric column: both rows end at the same column.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "hello, world".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,\"hello, world\"\n");
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "a\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new("x", &["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn markdown_output() {
        let mut t = Table::new("Demo", &["scheme", "slowdown"]);
        t.row(vec!["EASY".into(), "3.20".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("**Demo**"));
        assert!(md.contains("| scheme | slowdown |"));
        assert!(md.contains("| :-- | --: |"));
        assert!(md.contains("| EASY | 3.20 |"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(3.17159), "3.17");
        assert_eq!(fnum(42.42), "42.4");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fpct(-12.34), "-12.3%");
        assert_eq!(fpct(5.0), "+5.0%");
    }
}
