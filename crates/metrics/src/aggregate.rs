//! Aggregation of per-job outcomes into the paper's reported statistics.
//!
//! The paper's central methodological move is reporting metrics **per job
//! category** (SN/SW/LN/LW, and well/poorly estimated) rather than only as
//! trace-wide averages. [`ScheduleStats`] computes all of it in one pass.

use crate::outcome::JobOutcome;
use crate::welford::Welford;
use serde::{Deserialize, Serialize};
use simcore::{SimSpan, SimTime};
use workload::{Category, CategoryCriteria, EstimateQuality};

/// Summary of one group of jobs: bounded slowdown, turnaround, wait.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Bounded slowdown (dimensionless, ≥ 1).
    pub slowdown: Welford,
    /// Turnaround time in seconds.
    pub turnaround: Welford,
    /// Wait time in seconds.
    pub wait: Welford,
}

impl MetricSummary {
    /// Record one job.
    pub fn push(&mut self, o: &JobOutcome) {
        self.slowdown.push(o.bounded_slowdown());
        self.turnaround.push(o.turnaround().as_secs_f64());
        self.wait.push(o.wait().as_secs_f64());
    }

    /// Number of jobs in the group.
    pub fn count(&self) -> u64 {
        self.slowdown.count()
    }

    /// Mean bounded slowdown (the paper's headline metric).
    pub fn avg_slowdown(&self) -> f64 {
        self.slowdown.mean()
    }

    /// Mean turnaround in seconds.
    pub fn avg_turnaround(&self) -> f64 {
        self.turnaround.mean()
    }

    /// Worst-case turnaround in seconds (paper Tables 4 and 7).
    pub fn worst_turnaround(&self) -> f64 {
        self.turnaround.max().unwrap_or(0.0)
    }

    /// Mean wait in seconds.
    pub fn avg_wait(&self) -> f64 {
        self.wait.mean()
    }

    /// Merge another group into this one.
    pub fn merge(&mut self, other: &MetricSummary) {
        self.slowdown.merge(&other.slowdown);
        self.turnaround.merge(&other.turnaround);
        self.wait.merge(&other.wait);
    }
}

/// Full statistics of one simulated schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// All jobs together.
    pub overall: MetricSummary,
    /// Per SN/SW/LN/LW category, indexed by `Category as usize`.
    pub by_category: [MetricSummary; 4],
    /// Per estimate-quality class: `[well, poor]`.
    pub by_quality: [MetricSummary; 2],
    /// Machine utilization over the busy window (first arrival → last end).
    pub utilization: f64,
    /// Last completion − first arrival.
    pub makespan: SimSpan,
}

impl ScheduleStats {
    /// Aggregate a schedule's outcomes. `nodes` is the machine size the
    /// schedule ran on (for utilization).
    pub fn from_outcomes(outcomes: &[JobOutcome], nodes: u32, criteria: &CategoryCriteria) -> Self {
        assert!(nodes > 0, "machine size must be positive");
        let mut stats = ScheduleStats {
            overall: MetricSummary::default(),
            by_category: Default::default(),
            by_quality: Default::default(),
            utilization: 0.0,
            makespan: SimSpan::ZERO,
        };
        if outcomes.is_empty() {
            return stats;
        }
        let mut first_arrival = SimTime::FAR_FUTURE;
        let mut last_end = SimTime::ZERO;
        let mut busy: u128 = 0;
        for o in outcomes {
            stats.overall.push(o);
            stats.by_category[criteria.categorize(&o.job) as usize].push(o);
            let quality = match EstimateQuality::of(&o.job) {
                EstimateQuality::Well => 0,
                EstimateQuality::Poor => 1,
            };
            stats.by_quality[quality].push(o);
            first_arrival = first_arrival.min(o.job.arrival);
            last_end = last_end.max(o.end());
            busy += o.job.area();
        }
        stats.makespan = last_end.since(first_arrival);
        let window = stats.makespan.as_secs();
        if window > 0 {
            stats.utilization = busy as f64 / (nodes as f64 * window as f64);
        }
        stats
    }

    /// Aggregate with warm-up/cool-down trimming: jobs arriving within the
    /// first `warmup` or last `cooldown` fraction of the arrival span are
    /// excluded from the *metrics* (they still shaped the schedule). The
    /// standard guard against boundary effects — an empty machine at the
    /// start and a draining queue at the end bias steady-state averages.
    pub fn from_outcomes_trimmed(
        outcomes: &[JobOutcome],
        nodes: u32,
        criteria: &CategoryCriteria,
        warmup: f64,
        cooldown: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&warmup) && (0.0..1.0).contains(&cooldown),
            "trim fractions must be in [0, 1)"
        );
        assert!(warmup + cooldown < 1.0, "trims must leave a window");
        if outcomes.is_empty() {
            return Self::from_outcomes(outcomes, nodes, criteria);
        }
        let first = outcomes
            .iter()
            .map(|o| o.job.arrival)
            .min()
            .expect("non-empty");
        let last = outcomes
            .iter()
            .map(|o| o.job.arrival)
            .max()
            .expect("non-empty");
        let span = last.since(first).as_secs() as f64;
        let lo = first + simcore::SimSpan::new((span * warmup) as u64);
        let hi = first + simcore::SimSpan::new((span * (1.0 - cooldown)) as u64);
        let kept: Vec<JobOutcome> = outcomes
            .iter()
            .filter(|o| o.job.arrival >= lo && o.job.arrival <= hi)
            .copied()
            .collect();
        Self::from_outcomes(&kept, nodes, criteria)
    }

    /// Summary for one category.
    pub fn category(&self, cat: Category) -> &MetricSummary {
        &self.by_category[cat as usize]
    }

    /// Summary for one estimate-quality class.
    pub fn quality(&self, q: EstimateQuality) -> &MetricSummary {
        match q {
            EstimateQuality::Well => &self.by_quality[0],
            EstimateQuality::Poor => &self.by_quality[1],
        }
    }
}

/// Relative change of `new` versus `base`, in percent — the quantity
/// Figure 2 plots (negative = improvement when the metric is a cost).
/// Returns 0 when the baseline is 0.
pub fn percent_change(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::JobId;
    use workload::Job;

    fn outcome(arrival: u64, runtime: u64, estimate: u64, width: u32, start: u64) -> JobOutcome {
        JobOutcome::new(
            Job {
                id: JobId(0),
                arrival: SimTime::new(arrival),
                runtime: SimSpan::new(runtime),
                estimate: SimSpan::new(estimate),
                width,
            },
            SimTime::new(start),
        )
    }

    #[test]
    fn overall_averages() {
        let outcomes = vec![
            outcome(0, 100, 100, 4, 0),   // slowdown 1, turnaround 100
            outcome(0, 100, 100, 4, 100), // slowdown 2, turnaround 200
        ];
        let s = ScheduleStats::from_outcomes(&outcomes, 8, &CategoryCriteria::default());
        assert_eq!(s.overall.count(), 2);
        assert!((s.overall.avg_slowdown() - 1.5).abs() < 1e-12);
        assert!((s.overall.avg_turnaround() - 150.0).abs() < 1e-12);
        assert_eq!(s.overall.worst_turnaround(), 200.0);
    }

    #[test]
    fn category_split() {
        let outcomes = vec![
            outcome(0, 100, 100, 1, 0),    // SN
            outcome(0, 100, 100, 64, 0),   // SW
            outcome(0, 7200, 7200, 1, 0),  // LN
            outcome(0, 7200, 7200, 64, 0), // LW
        ];
        let s = ScheduleStats::from_outcomes(&outcomes, 128, &CategoryCriteria::default());
        for cat in Category::ALL {
            assert_eq!(s.category(cat).count(), 1, "{cat}");
        }
    }

    #[test]
    fn quality_split() {
        let outcomes = vec![
            outcome(0, 100, 150, 1, 0), // well (1.5x)
            outcome(0, 100, 500, 1, 0), // poor (5x)
            outcome(0, 100, 100, 1, 0), // well (exact)
        ];
        let s = ScheduleStats::from_outcomes(&outcomes, 8, &CategoryCriteria::default());
        assert_eq!(s.quality(EstimateQuality::Well).count(), 2);
        assert_eq!(s.quality(EstimateQuality::Poor).count(), 1);
    }

    #[test]
    fn utilization_and_makespan() {
        // One job: 8 procs x 100 s on an 8-proc machine, arrival 0,
        // start 0: utilization 1 over makespan 100.
        let outcomes = vec![outcome(0, 100, 100, 8, 0)];
        let s = ScheduleStats::from_outcomes(&outcomes, 8, &CategoryCriteria::default());
        assert_eq!(s.makespan, SimSpan::new(100));
        assert!((s.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule() {
        let s = ScheduleStats::from_outcomes(&[], 8, &CategoryCriteria::default());
        assert_eq!(s.overall.count(), 0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.makespan, SimSpan::ZERO);
    }

    #[test]
    fn merge_summaries() {
        let mut a = MetricSummary::default();
        a.push(&outcome(0, 100, 100, 1, 0));
        let mut b = MetricSummary::default();
        b.push(&outcome(0, 100, 100, 1, 100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.avg_slowdown() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trimming_excludes_boundary_jobs() {
        // Arrivals at 0, 250, 500, 750, 1000: 10% trims drop 0 and 1000.
        let outcomes: Vec<JobOutcome> = (0..5)
            .map(|i| outcome(i * 250, 100, 100, 1, i * 250))
            .collect();
        let full = ScheduleStats::from_outcomes(&outcomes, 8, &CategoryCriteria::default());
        let trimmed = ScheduleStats::from_outcomes_trimmed(
            &outcomes,
            8,
            &CategoryCriteria::default(),
            0.1,
            0.1,
        );
        assert_eq!(full.overall.count(), 5);
        assert_eq!(trimmed.overall.count(), 3);
    }

    #[test]
    fn zero_trims_equal_untrimmed() {
        let outcomes: Vec<JobOutcome> = (0..5)
            .map(|i| outcome(i * 100, 50, 50, 2, i * 100 + 10))
            .collect();
        let a = ScheduleStats::from_outcomes(&outcomes, 8, &CategoryCriteria::default());
        let b = ScheduleStats::from_outcomes_trimmed(
            &outcomes,
            8,
            &CategoryCriteria::default(),
            0.0,
            0.0,
        );
        assert_eq!(a.overall.count(), b.overall.count());
        assert_eq!(a.overall.avg_slowdown(), b.overall.avg_slowdown());
    }

    #[test]
    #[should_panic(expected = "leave a window")]
    fn rejects_total_trim() {
        ScheduleStats::from_outcomes_trimmed(&[], 8, &CategoryCriteria::default(), 0.6, 0.6);
    }

    #[test]
    fn percent_change_signs() {
        assert!((percent_change(50.0, 100.0) + 50.0).abs() < 1e-12);
        assert!((percent_change(150.0, 100.0) - 50.0).abs() < 1e-12);
        assert_eq!(percent_change(5.0, 0.0), 0.0);
    }
}
