//! Exact quantile computation.
//!
//! Workload metric distributions are wildly skewed, so reports include
//! medians and tail percentiles alongside means. At simulation scale
//! (≤ a few hundred thousand jobs) exact quantiles are affordable:
//! [`Quantiles`] buffers observations and sorts lazily. Exactness keeps
//! reports bit-reproducible, which approximate sketches would forfeit.

use serde::{Deserialize, Serialize};

/// An exact quantile estimator over buffered observations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Quantiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// An empty estimator.
    pub fn new() -> Self {
        Quantiles::default()
    }

    /// Record one observation (must be finite).
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation {x}");
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`), with linear interpolation between
    /// order statistics (the "type 7" definition used by R and NumPy).
    /// Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        self.ensure_sorted();
        let n = self.values.len();
        if n == 0 {
            return None;
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: several quantiles at once.
    pub fn quantiles(&mut self, qs: &[f64]) -> Vec<Option<f64>> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }

    /// Merge another estimator's observations into this one.
    pub fn merge(&mut self, other: &Quantiles) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_counts() {
        let mut q = Quantiles::new();
        for x in [3.0, 1.0, 2.0] {
            q.push(x);
        }
        assert_eq!(q.median(), Some(2.0));
        q.push(4.0);
        assert_eq!(q.median(), Some(2.5));
    }

    #[test]
    fn extremes_are_min_and_max() {
        let mut q = Quantiles::new();
        for x in [5.0, 9.0, 1.0, 7.0] {
            q.push(x);
        }
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(9.0));
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        let mut q = Quantiles::new();
        for x in [10.0, 20.0, 30.0, 40.0] {
            q.push(x);
        }
        // numpy.percentile([10,20,30,40], 25) == 17.5
        assert_eq!(q.quantile(0.25), Some(17.5));
        assert_eq!(q.quantile(0.75), Some(32.5));
    }

    #[test]
    fn empty_returns_none() {
        let mut q = Quantiles::new();
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.count(), 0);
    }

    #[test]
    fn push_after_query_resorts() {
        let mut q = Quantiles::new();
        q.push(10.0);
        assert_eq!(q.median(), Some(10.0));
        q.push(0.0);
        assert_eq!(q.median(), Some(5.0));
    }

    #[test]
    fn merge_combines_observations() {
        let mut a = Quantiles::new();
        a.push(1.0);
        let mut b = Quantiles::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.median(), Some(2.0));
    }

    #[test]
    fn batch_quantiles() {
        let mut q = Quantiles::new();
        for i in 1..=100 {
            q.push(i as f64);
        }
        let v = q.quantiles(&[0.5, 0.9, 0.99]);
        assert_eq!(v[0], Some(50.5));
        assert!((v[1].unwrap() - 90.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_q() {
        let mut q = Quantiles::new();
        q.push(1.0);
        q.quantile(1.5);
    }

    // Boundary audit (pinned behaviors; see also DESIGN.md §12 on the
    // histogram quantiles these are contrasted against).

    #[test]
    fn single_sample_answers_every_q() {
        // n = 1 makes pos = q·0 = 0 for every q: lo == hi == 0, no
        // interpolation, no out-of-bounds at q = 1.
        let mut q = Quantiles::new();
        q.push(42.0);
        for probe in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(q.quantile(probe), Some(42.0), "q = {probe}");
        }
    }

    #[test]
    fn q_one_hits_the_last_index_exactly() {
        // q = 1 must produce pos = n − 1 exactly (no float excess that
        // would push `ceil` past the last element) for awkward sizes.
        for n in [1usize, 2, 3, 7, 10, 1000] {
            let mut q = Quantiles::new();
            for i in 0..n {
                q.push(i as f64);
            }
            assert_eq!(q.quantile(1.0), Some((n - 1) as f64), "n = {n}");
            assert_eq!(q.quantile(0.0), Some(0.0), "n = {n}");
        }
    }

    #[test]
    fn q_zero_and_one_are_exact_not_interpolated() {
        // With values that would expose any interpolation at the edges.
        let mut q = Quantiles::new();
        for x in [-5.5, 0.0, 1e12] {
            q.push(x);
        }
        assert_eq!(q.quantile(0.0), Some(-5.5));
        assert_eq!(q.quantile(1.0), Some(1e12));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_observation() {
        Quantiles::new().push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_infinite_observation() {
        Quantiles::new().push(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_nan_q() {
        // NaN fails the `(0.0..=1.0).contains` check, so a NaN probe
        // panics instead of silently indexing with a garbage position.
        let mut q = Quantiles::new();
        q.push(1.0);
        q.quantile(f64::NAN);
    }

    #[test]
    fn negative_zero_q_behaves_as_zero() {
        let mut q = Quantiles::new();
        q.push(3.0);
        q.push(9.0);
        assert_eq!(q.quantile(-0.0), Some(3.0));
    }
}
